#!/usr/bin/env bash
# Tier-1 verify + experiment smoke, the single entry point CI uses.
#
#   scripts/check.sh [build-dir]
#
# 1. configure + build (warnings-as-errors, Release; ccache-launched when
#    ccache is on PATH, so cached CI runs rebuild in seconds)
# 2. run the full ctest suite
# 3. smoke the `safelight` CLI end to end at tiny scale: `list` must show
#    the five registered experiments, `run-all` must complete in one
#    process (per-experiment timing on stdout), write every CSV + JSON
#    document and the result stores, and resume instantly from cache.
# 4. cross-check the legacy wrapper: `bench/fig7_susceptibility` must emit
#    a CSV byte-identical to run-all's (fresh zoo, so the equality is
#    computational, not cache reuse).
# 5. distributed smoke: `run --workers 2` (clean, then with --chaos plug
#    pulls inside the workers) must emit bytes identical to a
#    single-process run from a fresh zoo — the coordinator/worker/merge
#    stack proves itself end to end on every CI run.
# 6. telemetry smoke: the same 2-worker run armed with --trace/--metrics
#    must stay byte-identical, produce a parseable merged Chrome trace
#    with coordinator + worker tracks, and a schema-valid metrics JSON;
#    both land in the CI artifact bundle.
# 7. serve smoke: `safelight list --json` schema check, then a daemon on
#    an ephemeral port driven with curl — submit, NDJSON event stream,
#    GET /result byte-identical to the run-all JSON document, 400 on an
#    unknown spec field, cooperative DELETE, SIGTERM -> exit 130 — plus
#    the bench_serve --smoke concurrent-client storm.
# Ends with a per-phase wall-time summary. CI uploads $SMOKE_DIR/out as
# the experiment artifact bundle (see .github/workflows/ci.yml).
#
# SAFELIGHT_SANITIZE=ON builds with ASan+UBSan and runs the unit,
# integration, fault, dist and serve ctest shards only: the sweep-smoke shard and
# the CLI/bench smokes re-cover the same code paths at ~10x sanitizer
# cost, and the fault/dist harnesses' child processes inherit the
# instrumentation.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SANITIZE="${SAFELIGHT_SANITIZE:-OFF}"

TIMING_NAMES=()
TIMING_SECS=()
PHASE_START=0
phase_start() {
  echo "== $1 =="
  TIMING_NAMES+=("$1")
  PHASE_START=$(date +%s)
}
phase_end() {
  TIMING_SECS+=("$(( $(date +%s) - PHASE_START ))")
}

CMAKE_LAUNCHER_ARGS=()
if command -v ccache >/dev/null; then
  CMAKE_LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

phase_start "configure"
cmake -B "$BUILD_DIR" -S . "${CMAKE_LAUNCHER_ARGS[@]}" \
      -DSAFELIGHT_SANITIZE="$SANITIZE" >/dev/null
phase_end

phase_start "build"
cmake --build "$BUILD_DIR" -j "$(nproc)"
phase_end

# The suite runs as labelled shards (labels assigned per test binary in
# tests/CMakeLists.txt) so the timing summary shows where test time goes
# and cheap shards fail fast before the sweep-driving ones start. The
# fault shard pulls the plug on child `safelight` processes and proves the
# crash-resume contract (docs/testing.md).
SHARDS=(unit integration sweep-smoke fault dist serve)
if [[ "$SANITIZE" == "ON" ]]; then
  SHARDS=(unit integration fault dist serve)
fi
for shard in "${SHARDS[@]}"; do
  phase_start "ctest ($shard)"
  ctest --test-dir "$BUILD_DIR" -L "^${shard}$" --output-on-failure -j "$(nproc)"
  phase_end
done
# Every test must belong to exactly one shard; an unlabelled test would
# silently never run above.
UNLABELLED=$(ctest --test-dir "$BUILD_DIR" -LE '^(unit|integration|sweep-smoke|fault|dist|serve)$' -N | grep -E '^Total Tests:' | awk '{print $3}')
if [[ "$UNLABELLED" != "0" ]]; then
  echo "error: $UNLABELLED ctest case(s) carry no shard label" >&2
  exit 1
fi

if [[ "$SANITIZE" == "ON" ]]; then
  echo "== sanitize mode: skipping sweep-smoke shard and CLI/bench smokes =="
  echo "== all checks passed =="
  echo
  echo "== timing summary =="
  for i in "${!TIMING_NAMES[@]}"; do
    printf '  %-32s %4ss\n' "${TIMING_NAMES[$i]}" "${TIMING_SECS[$i]}"
  done
  exit 0
fi

phase_start "safelight list"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SAFELIGHT="$(cd "$BUILD_DIR" && pwd)/src/safelight"
"$SAFELIGHT" list | tee "$SMOKE_DIR/list.log"
for experiment in susceptibility mitigation robust_compare detection campaign; do
  grep -q "^${experiment} " "$SMOKE_DIR/list.log"
done
# Unknown names must fail loudly (exit 2), listing what is registered.
if "$SAFELIGHT" run not_an_experiment 2>"$SMOKE_DIR/unknown.log"; then
  echo "error: unknown experiment name did not fail" >&2
  exit 1
fi
grep -q "registered:" "$SMOKE_DIR/unknown.log"
phase_end

phase_start "safelight run-all (tiny scale)"
export SAFELIGHT_SCALE=tiny
export SAFELIGHT_SEEDS=2
export SAFELIGHT_ZOO="$SMOKE_DIR/zoo"
export SAFELIGHT_OUT="$SMOKE_DIR/out"
# One process, five experiments, shared zoo; stdout carries the
# per-experiment timing summary CI surfaces in the log.
"$SAFELIGHT" run-all --json >"$SMOKE_DIR/run_all.log"
sed -n '/run summary/,$p' "$SMOKE_DIR/run_all.log"
for csv in fig7_susceptibility fig8_mitigation fig9_robust fig_detection \
           fig_detection_roc fig_campaign fig_campaign_phases; do
  test -s "$SMOKE_DIR/out/${csv}.csv"
done
for experiment in susceptibility mitigation robust_compare detection campaign; do
  for model in cnn1 resnet18 vgg16v; do
    test -s "$SMOKE_DIR/out/${experiment}_${model}.json"
  done
done
ls "$SMOKE_DIR/zoo/"*.sweep.csv >/dev/null     # pipeline stores written
ls "$SMOKE_DIR/zoo/"*.detect.csv >/dev/null    # detection stores written
ls "$SMOKE_DIR/zoo/"*.campaign.csv >/dev/null  # campaign stores written

# Second run must be served from the result stores (no re-evaluation):
# a full cached re-run of all five experiments finishes in a few seconds.
start=$(date +%s)
SAFELIGHT_OUT="$SMOKE_DIR/out_cached" "$SAFELIGHT" run-all >"$SMOKE_DIR/run_all_cached.log"
echo "cached run-all re-run: $(( $(date +%s) - start ))s"
cmp "$SMOKE_DIR/out/fig7_susceptibility.csv" \
    "$SMOKE_DIR/out_cached/fig7_susceptibility.csv"
phase_end

phase_start "legacy wrapper byte-identity (fig7)"
# The per-figure binary must produce the same bytes as `safelight run-all`
# — from a fresh zoo, so the equality is computational, not cache reuse.
FIG7="$(cd "$BUILD_DIR" && pwd)/bench/fig7_susceptibility"
SAFELIGHT_ZOO="$SMOKE_DIR/zoo_wrapper" SAFELIGHT_OUT="$SMOKE_DIR/out_wrapper" \
  "$FIG7" >"$SMOKE_DIR/fig7_wrapper.log"
cmp "$SMOKE_DIR/out/fig7_susceptibility.csv" \
    "$SMOKE_DIR/out_wrapper/fig7_susceptibility.csv"
echo "wrapper CSV byte-identical to run-all"
phase_end

phase_start "distributed smoke (2 workers, clean + chaos)"
# The coordinator shards the sweep across 2 worker subprocesses from a
# fresh zoo; the merged result must be byte-identical to a single-process
# run (also fresh, so the equality is computational). cnn1-only keeps the
# phase cheap; the dist ctest shard covers the full semantics.
SAFELIGHT_ZOO="$SMOKE_DIR/zoo_dist_ref" SAFELIGHT_OUT="$SMOKE_DIR/out_dist_ref" \
  "$SAFELIGHT" run susceptibility --model cnn1 >"$SMOKE_DIR/dist_ref.log"
SAFELIGHT_ZOO="$SMOKE_DIR/zoo_dist" SAFELIGHT_OUT="$SMOKE_DIR/out_dist" \
  "$SAFELIGHT" run susceptibility --model cnn1 --workers 2 \
  >"$SMOKE_DIR/dist.log"
grep '\[dist\] summary:' "$SMOKE_DIR/dist.log"
cmp "$SMOKE_DIR/out_dist_ref/fig7_susceptibility.csv" \
    "$SMOKE_DIR/out_dist/fig7_susceptibility.csv"
# Forced-scalar leg: --backend scalar pins the whole fleet (coordinator
# and workers) to the portable kernel variant; the numerics contract says
# backend choice can never change a CSV byte, so the result must match
# the auto-dispatched reference exactly.
SAFELIGHT_ZOO="$SMOKE_DIR/zoo_dist_scalar" SAFELIGHT_OUT="$SMOKE_DIR/out_dist_scalar" \
  "$SAFELIGHT" run susceptibility --model cnn1 --workers 2 --backend scalar \
  >"$SMOKE_DIR/dist_scalar.log"
cmp "$SMOKE_DIR/out_dist_ref/fig7_susceptibility.csv" \
    "$SMOKE_DIR/out_dist_scalar/fig7_susceptibility.csv"
# Chaos leg: PR 6 plug pulls armed inside the workers (crash on ~20% of
# durable writes); retries must still converge on the same bytes.
SAFELIGHT_ZOO="$SMOKE_DIR/zoo_dist_chaos" SAFELIGHT_OUT="$SMOKE_DIR/out_dist_chaos" \
  "$SAFELIGHT" run susceptibility --model cnn1 --workers 2 --chaos 0.2 \
  --max-task-retries 1000 >"$SMOKE_DIR/dist_chaos.log"
grep '\[dist\] summary:' "$SMOKE_DIR/dist_chaos.log"
cmp "$SMOKE_DIR/out_dist_ref/fig7_susceptibility.csv" \
    "$SMOKE_DIR/out_dist_chaos/fig7_susceptibility.csv"
echo "distributed CSVs byte-identical to single-process reference"
phase_end

phase_start "telemetry smoke (2 workers, --trace/--metrics)"
# Armed observability must never perturb experiment output: the traced
# 2-worker run's CSV matches the single-process reference byte for byte,
# and the merged fleet trace + metrics JSON parse with the expected shape.
SAFELIGHT_ZOO="$SMOKE_DIR/zoo_dist_traced" SAFELIGHT_OUT="$SMOKE_DIR/out_dist_traced" \
  "$SAFELIGHT" run susceptibility --model cnn1 --workers 2 \
  --trace "$SMOKE_DIR/trace.json" --metrics "$SMOKE_DIR/metrics.json" \
  >"$SMOKE_DIR/dist_traced.log"
cmp "$SMOKE_DIR/out_dist_ref/fig7_susceptibility.csv" \
    "$SMOKE_DIR/out_dist_traced/fig7_susceptibility.csv"
echo "traced distributed CSV byte-identical to single-process reference"
if command -v python3 >/dev/null; then
  python3 - "$SMOKE_DIR/trace.json" "$SMOKE_DIR/metrics.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
tracks = {e["pid"]: e["args"]["name"]
          for e in trace["traceEvents"] if e["ph"] == "M"}
names = {e["name"] for e in spans}
assert tracks.get(1) == "coordinator", tracks
assert any(n.startswith("worker w") for p, n in tracks.items() if p >= 2), tracks
assert {"dist.dispatch", "dist.merge", "worker.task"} <= names, sorted(names)
metrics = json.load(open(sys.argv[2]))
assert metrics["schema"] == "safelight.metrics.v1", metrics.get("schema")
assert metrics["counters"]["dist.dispatches"] > 0, metrics["counters"]
print(f"merged trace: {len(spans)} spans on {len(tracks)} tracks; "
      f"{len(metrics['counters'])} fleet counters")
EOF
else
  echo "python3 missing: trace/metrics JSON shape check skipped"
fi
phase_end

phase_start "serve smoke (daemon, curl, byte-identity)"
# The machine-readable listing `safelight serve` clients script against.
"$SAFELIGHT" list --json >"$SMOKE_DIR/list.json"
if command -v python3 >/dev/null; then
  python3 - "$SMOKE_DIR/list.json" <<'EOF'
import json, sys
listing = json.load(open(sys.argv[1]))
names = [e["name"] for e in listing["experiments"]]
assert names == ["susceptibility", "mitigation", "robust_compare",
                 "detection", "campaign"], names
assert "experiment" in listing["spec_fields"], listing["spec_fields"]
assert "cache_dir" not in listing["spec_fields"], listing["spec_fields"]
print(f"list --json: {len(names)} experiments, "
      f"{len(listing['spec_fields'])} spec fields")
EOF
fi
if command -v curl >/dev/null; then
  # Daemon on an ephemeral port against the warm smoke zoo; the serving
  # contract under test: HTTP result bytes == the run-all JSON document
  # already produced above for the same spec under the same environment.
  "$SAFELIGHT" serve --port 0 --slots 2 >"$SMOKE_DIR/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 100); do
    grep -q "listening on" "$SMOKE_DIR/serve.log" 2>/dev/null && break
    sleep 0.1
  done
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/serve.log")"
  BASE="http://127.0.0.1:$PORT"
  curl -fsS "$BASE/healthz" | grep -q '"status": "ok"'

  # Bad specs answer 400 with the actionable unknown-field message.
  CODE=$(curl -s -o "$SMOKE_DIR/serve_bad.json" -w '%{http_code}' \
         -X POST "$BASE/v1/jobs" -d '{"experiment":"susceptibility","seedz":3}')
  [[ "$CODE" == "400" ]]
  grep -q "unknown field 'seedz'" "$SMOKE_DIR/serve_bad.json"

  # Submit, follow the NDJSON stream to the terminal event, fetch result.
  JOB=$(curl -fsS -X POST "$BASE/v1/jobs" \
        -d '{"experiment":"susceptibility","model":"cnn1"}' \
        | tr -d '\n' | sed -n 's/.*"job": "\([^"]*\)".*/\1/p')
  [[ -n "$JOB" ]]
  curl -fsS "$BASE/v1/jobs/$JOB/events" >"$SMOKE_DIR/serve_events.ndjson"
  head -1 "$SMOKE_DIR/serve_events.ndjson" | grep -q '"type":"queued"'
  tail -1 "$SMOKE_DIR/serve_events.ndjson" | grep -q '"type":"result"'
  curl -fsS "$BASE/v1/jobs/$JOB/result" >"$SMOKE_DIR/serve_result.json"
  cmp "$SMOKE_DIR/serve_result.json" "$SMOKE_DIR/out/susceptibility_cnn1.json"
  echo "serve result byte-identical to run --json output"

  # Second tenant: submit + cooperative DELETE must terminalize the job.
  JOB2=$(curl -fsS -X POST "$BASE/v1/jobs" -d '{"experiment":"campaign"}' \
         | tr -d '\n' | sed -n 's/.*"job": "\([^"]*\)".*/\1/p')
  curl -fsS -X DELETE "$BASE/v1/jobs/$JOB2" >/dev/null
  for _ in $(seq 100); do
    STATE=$(curl -fsS "$BASE/v1/jobs/$JOB2" | tr -d '\n' \
            | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    [[ "$STATE" == "cancelled" || "$STATE" == "done" ]] && break
    sleep 0.1
  done
  [[ "$STATE" == "cancelled" || "$STATE" == "done" ]]
  curl -fsS "$BASE/metrics" | grep -q '"serve.jobs.submitted": 2'

  # Graceful drain: SIGTERM -> cancel running slots, flush stores, exit 130.
  kill -TERM "$SERVE_PID"
  SERVE_RC=0
  wait "$SERVE_PID" || SERVE_RC=$?
  [[ "$SERVE_RC" == "130" ]]
  grep -q '\[serve\] stopped' "$SMOKE_DIR/serve.log"
  echo "daemon drained on SIGTERM (exit $SERVE_RC)"
else
  echo "curl missing: serve HTTP smoke skipped"
fi
if command -v python3 >/dev/null; then
  # The concurrent-client storm (8 mixed-experiment tenants) end to end.
  scripts/bench_serve.sh --smoke "$BUILD_DIR"
  test -s "$BUILD_DIR/bench_serve_smoke.json"
fi
phase_end

# Preserve the artifact bundle for CI upload (the EXIT trap removes
# $SMOKE_DIR; CI points SAFELIGHT_ARTIFACT_DIR somewhere persistent).
if [[ -n "${SAFELIGHT_ARTIFACT_DIR:-}" ]]; then
  mkdir -p "$SAFELIGHT_ARTIFACT_DIR"
  cp "$SMOKE_DIR/out/"*.csv "$SMOKE_DIR/out/"*.json "$SAFELIGHT_ARTIFACT_DIR/"
  # Merged canonical stores from the chaos'd distributed run: the artifact
  # a reviewer diffs against the clean run's stores to audit the merge.
  mkdir -p "$SAFELIGHT_ARTIFACT_DIR/dist_store"
  cp "$SMOKE_DIR/zoo_dist_chaos/"*.sweep.csv "$SAFELIGHT_ARTIFACT_DIR/dist_store/"
  cp "$SMOKE_DIR/dist.log" "$SMOKE_DIR/dist_chaos.log" "$SAFELIGHT_ARTIFACT_DIR/dist_store/"
  # Merged fleet trace + metrics from the telemetry smoke: load trace.json
  # in https://ui.perfetto.dev to inspect the CI run.
  cp "$SMOKE_DIR/trace.json" "$SMOKE_DIR/metrics.json" "$SAFELIGHT_ARTIFACT_DIR/"
  # Serving smoke evidence: daemon log (startup, drain), the NDJSON event
  # stream, the byte-identity result document, and the client-storm report.
  mkdir -p "$SAFELIGHT_ARTIFACT_DIR/serve"
  cp "$SMOKE_DIR/serve.log" "$SMOKE_DIR/serve_events.ndjson" \
     "$SMOKE_DIR/serve_result.json" "$SAFELIGHT_ARTIFACT_DIR/serve/" 2>/dev/null || true
  cp "$BUILD_DIR/bench_serve_smoke.json" "$SAFELIGHT_ARTIFACT_DIR/serve/" 2>/dev/null || true
  cp BENCH_pr10.json "$SAFELIGHT_ARTIFACT_DIR/serve/" 2>/dev/null || true
fi

# Bench smoke: microbench (kernel + reference GEMM) and a timed sweep with
# the prefix cache A/B, exercised end to end when the bench stack is built.
if [[ -x "$BUILD_DIR/bench/microbench" ]] && command -v python3 >/dev/null; then
  phase_start "bench report smoke"
  unset SAFELIGHT_SCALE SAFELIGHT_SEEDS SAFELIGHT_ZOO SAFELIGHT_OUT
  scripts/bench_report.sh --smoke "$BUILD_DIR"
  test -s "$BUILD_DIR/bench_report_smoke.json"
  phase_end
else
  echo "== bench report smoke skipped (microbench or python3 missing) =="
fi

echo "== all checks passed =="
echo
echo "== timing summary =="
for i in "${!TIMING_NAMES[@]}"; do
  printf '  %-32s %4ss\n' "${TIMING_NAMES[$i]}" "${TIMING_SECS[$i]}"
done
if command -v ccache >/dev/null; then
  echo "  ccache: $(ccache -s | grep -E 'Hits|hit rate' | head -2 | tr -s ' ' | tr '\n' ' ' || true)"
fi
