#!/usr/bin/env bash
# Tier-1 verify + pipeline smoke, the single entry point CI uses.
#
#   scripts/check.sh [build-dir]
#
# 1. configure + build (warnings-as-errors, Release)
# 2. run the full ctest suite
# 3. smoke the scenario pipeline end to end at tiny scale: a fig7 sweep
#    must complete, write its CSV, and resume instantly from cache.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== pipeline smoke (tiny scale) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
export SAFELIGHT_SCALE=tiny
export SAFELIGHT_SEEDS=2
export SAFELIGHT_ZOO="$SMOKE_DIR/zoo"
export SAFELIGHT_OUT="$SMOKE_DIR/out"
FIG7="$(cd "$BUILD_DIR" && pwd)/bench/fig7_susceptibility"
"$FIG7" >"$SMOKE_DIR/fig7.log"
test -s "$SMOKE_DIR/out/fig7_susceptibility.csv"
ls "$SMOKE_DIR/zoo/"*.sweep.csv >/dev/null  # result stores were written

# Second run must be served from the result store (no re-evaluation):
# a full cached re-run of all three models finishes in a few seconds.
start=$(date +%s)
"$FIG7" >"$SMOKE_DIR/fig7_cached.log"
elapsed=$(( $(date +%s) - start ))
echo "cached fig7 re-run: ${elapsed}s"

# Bench smoke: microbench (kernel + reference GEMM) and a timed sweep with
# the prefix cache A/B, exercised end to end when the bench stack is built.
if [[ -x "$BUILD_DIR/bench/microbench" ]] && command -v python3 >/dev/null; then
  echo "== bench report smoke =="
  unset SAFELIGHT_SCALE SAFELIGHT_SEEDS SAFELIGHT_ZOO SAFELIGHT_OUT
  scripts/bench_report.sh --smoke "$BUILD_DIR"
  test -s "$BUILD_DIR/bench_report_smoke.json"
else
  echo "== bench report smoke skipped (microbench or python3 missing) =="
fi

echo "== all checks passed =="
