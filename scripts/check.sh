#!/usr/bin/env bash
# Tier-1 verify + pipeline smoke, the single entry point CI uses.
#
#   scripts/check.sh [build-dir]
#
# 1. configure + build (warnings-as-errors, Release; ccache-launched when
#    ccache is on PATH, so cached CI runs rebuild in seconds)
# 2. run the full ctest suite
# 3. smoke the scenario pipeline end to end at tiny scale: a fig7 sweep
#    must complete, write its CSV, and resume instantly from cache.
# 4. smoke the detection sweep: fig_detection must run and write its CSVs.
# Ends with a per-phase wall-time summary.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIMING_NAMES=()
TIMING_SECS=()
PHASE_START=0
phase_start() {
  echo "== $1 =="
  TIMING_NAMES+=("$1")
  PHASE_START=$(date +%s)
}
phase_end() {
  TIMING_SECS+=("$(( $(date +%s) - PHASE_START ))")
}

CMAKE_LAUNCHER_ARGS=()
if command -v ccache >/dev/null; then
  CMAKE_LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

phase_start "configure"
cmake -B "$BUILD_DIR" -S . "${CMAKE_LAUNCHER_ARGS[@]}" >/dev/null
phase_end

phase_start "build"
cmake --build "$BUILD_DIR" -j "$(nproc)"
phase_end

# The suite runs as three labelled shards (labels assigned per test binary
# in tests/CMakeLists.txt) so the timing summary shows where test time goes
# and cheap shards fail fast before the sweep-driving ones start.
for shard in unit integration sweep-smoke; do
  phase_start "ctest ($shard)"
  ctest --test-dir "$BUILD_DIR" -L "^${shard}$" --output-on-failure -j "$(nproc)"
  phase_end
done
# Every test must belong to exactly one shard; an unlabelled test would
# silently never run above.
UNLABELLED=$(ctest --test-dir "$BUILD_DIR" -LE '^(unit|integration|sweep-smoke)$' -N | grep -E '^Total Tests:' | awk '{print $3}')
if [[ "$UNLABELLED" != "0" ]]; then
  echo "error: $UNLABELLED ctest case(s) carry no shard label" >&2
  exit 1
fi

phase_start "pipeline smoke (tiny scale)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
export SAFELIGHT_SCALE=tiny
export SAFELIGHT_SEEDS=2
export SAFELIGHT_ZOO="$SMOKE_DIR/zoo"
export SAFELIGHT_OUT="$SMOKE_DIR/out"
FIG7="$(cd "$BUILD_DIR" && pwd)/bench/fig7_susceptibility"
"$FIG7" >"$SMOKE_DIR/fig7.log"
test -s "$SMOKE_DIR/out/fig7_susceptibility.csv"
ls "$SMOKE_DIR/zoo/"*.sweep.csv >/dev/null  # result stores were written

# Second run must be served from the result store (no re-evaluation):
# a full cached re-run of all three models finishes in a few seconds.
start=$(date +%s)
"$FIG7" >"$SMOKE_DIR/fig7_cached.log"
elapsed=$(( $(date +%s) - start ))
echo "cached fig7 re-run: ${elapsed}s"
phase_end

phase_start "detection smoke (tiny scale)"
FIG_DETECT="$(cd "$BUILD_DIR" && pwd)/bench/fig_detection"
"$FIG_DETECT" >"$SMOKE_DIR/fig_detection.log"
test -s "$SMOKE_DIR/out/fig_detection.csv"
test -s "$SMOKE_DIR/out/fig_detection_roc.csv"
ls "$SMOKE_DIR/zoo/"*.detect.csv >/dev/null  # detection stores were written
phase_end

phase_start "campaign smoke (tiny scale)"
FIG_CAMPAIGN="$(cd "$BUILD_DIR" && pwd)/bench/fig_campaign"
"$FIG_CAMPAIGN" >"$SMOKE_DIR/fig_campaign.log"
test -s "$SMOKE_DIR/out/fig_campaign.csv"
test -s "$SMOKE_DIR/out/fig_campaign_phases.csv"
ls "$SMOKE_DIR/zoo/"*.campaign.csv >/dev/null  # campaign stores were written
# Second run must resume from the result stores in a few seconds.
start=$(date +%s)
"$FIG_CAMPAIGN" >"$SMOKE_DIR/fig_campaign_cached.log"
echo "cached fig_campaign re-run: $(( $(date +%s) - start ))s"
phase_end

# Bench smoke: microbench (kernel + reference GEMM) and a timed sweep with
# the prefix cache A/B, exercised end to end when the bench stack is built.
if [[ -x "$BUILD_DIR/bench/microbench" ]] && command -v python3 >/dev/null; then
  phase_start "bench report smoke"
  unset SAFELIGHT_SCALE SAFELIGHT_SEEDS SAFELIGHT_ZOO SAFELIGHT_OUT
  scripts/bench_report.sh --smoke "$BUILD_DIR"
  test -s "$BUILD_DIR/bench_report_smoke.json"
  phase_end
else
  echo "== bench report smoke skipped (microbench or python3 missing) =="
fi

echo "== all checks passed =="
echo
echo "== timing summary =="
for i in "${!TIMING_NAMES[@]}"; do
  printf '  %-32s %4ss\n' "${TIMING_NAMES[$i]}" "${TIMING_SECS[$i]}"
done
if command -v ccache >/dev/null; then
  echo "  ccache: $(ccache -s | grep -E 'Hits|hit rate' | head -2 | tr -s ' ' | tr '\n' ' ' || true)"
fi
