#!/usr/bin/env bash
# Performance report: microbench kernels + a timed fig7 sweep, as JSON.
#
#   scripts/bench_report.sh [--smoke] [build-dir]
#
# Full mode (default) writes BENCH_pr2.json at the repo root — the perf
# trajectory data point for this PR:
#   * GEMM GFLOP/s at 64/128/256 (packed kernel and naive reference, plus
#     the packed/naive speedup ratio),
#   * Conv2d forward time,
#   * end-to-end fig7_susceptibility sweep wall-clock at default scale,
#     cold scenario cache, with the prefix-activation cache ON and OFF
#     (SAFELIGHT_PREFIX_CACHE) on a pre-trained zoo.
#
# --smoke (used by scripts/check.sh and CI) runs the same pipeline at tiny
# scale with minimal benchmark repetitions and writes the report into the
# build directory instead, leaving the committed data point untouched.
#
# Requires the microbench binary (Google Benchmark) and python3 (JSON
# assembly). Both are checked up front.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

MICROBENCH="$BUILD_DIR/bench/microbench"
FIG7="$BUILD_DIR/bench/fig7_susceptibility"
if [[ ! -x "$MICROBENCH" ]]; then
  echo "bench_report: $MICROBENCH not built (Google Benchmark missing?)" >&2
  exit 1
fi
if [[ ! -x "$FIG7" ]]; then
  echo "bench_report: $FIG7 not built" >&2
  exit 1
fi
command -v python3 >/dev/null || { echo "bench_report: python3 required" >&2; exit 1; }

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

if [[ "$SMOKE" == "1" ]]; then
  SCALE=tiny
  SEEDS=2
  # Plain-double form: accepted by every google-benchmark (the "0.05s"
  # suffix form only exists from v1.8).
  BENCH_ARGS=(--benchmark_min_time=0.05)
  OUT_JSON="$BUILD_DIR/bench_report_smoke.json"
else
  SCALE=default
  SEEDS=2
  BENCH_ARGS=()
  OUT_JSON="BENCH_pr2.json"
fi

echo "== microbench (json) =="
"$MICROBENCH" --benchmark_filter='BM_Gemm|BM_GemmRef|BM_Conv2dForward|BM_ThreadPoolDispatch' \
  --benchmark_format=json "${BENCH_ARGS[@]}" >"$WORK_DIR/micro.json"

echo "== fig7 sweep ($SCALE scale, $SEEDS seeds) =="
export SAFELIGHT_SCALE="$SCALE"
export SAFELIGHT_SEEDS="$SEEDS"
export SAFELIGHT_ZOO="$WORK_DIR/zoo"
export SAFELIGHT_OUT="$WORK_DIR/out"

# Train once so the timed runs measure the sweep, not model training.
"$FIG7" >"$WORK_DIR/fig7_train.log"

run_sweep() {  # $1 = SAFELIGHT_PREFIX_CACHE value; prints wall seconds
  rm -f "$SAFELIGHT_ZOO"/*.sweep.csv "$SAFELIGHT_ZOO"/*.sweep.jsonl
  local start end
  start=$(python3 -c 'import time; print(time.monotonic())')
  SAFELIGHT_PREFIX_CACHE="$1" "$FIG7" >"$WORK_DIR/fig7_run.log"
  end=$(python3 -c 'import time; print(time.monotonic())')
  python3 -c "print(f'{$end - $start:.3f}')"
}

SWEEP_CACHED="$(run_sweep 1)"
SWEEP_UNCACHED="$(run_sweep 0)"
echo "sweep wall-clock: ${SWEEP_CACHED}s (prefix cache on), ${SWEEP_UNCACHED}s (off)"

python3 - "$WORK_DIR/micro.json" "$OUT_JSON" "$SCALE" "$SEEDS" \
    "$SWEEP_CACHED" "$SWEEP_UNCACHED" <<'PY'
import json, platform, subprocess, sys

micro_path, out_path, scale, seeds, cached, uncached = sys.argv[1:7]
with open(micro_path) as f:
    micro = json.load(f)

def bench(name):
    for b in micro.get("benchmarks", []):
        if b["name"] == name:
            return b
    return None

def gflops(name):
    b = bench(name)
    return round(b["items_per_second"] / 1e9, 2) if b else None

def micros(name):
    b = bench(name)
    return round(b["real_time"] / 1e3, 1) if b else None  # ns -> us

def ratio(a, b):
    return round(a / b, 2) if a and b else None

gemm = {n: gflops(f"BM_Gemm/{n}") for n in (64, 128, 256)}
ref = {n: gflops(f"BM_GemmRef/{n}") for n in (64, 128, 256)}
report = {
    "pr": 2,
    "host": {
        "machine": platform.machine(),
        "cpus": micro.get("context", {}).get("num_cpus"),
    },
    "gemm_gflops": {str(n): gemm[n] for n in gemm},
    "gemm_ref_gflops": {str(n): ref[n] for n in ref},
    "gemm_speedup_vs_ref": {str(n): ratio(gemm[n], ref[n]) for n in gemm},
    "conv2d_forward_us": {
        "c8": micros("BM_Conv2dForward/8"),
        "c32": micros("BM_Conv2dForward/32"),
    },
    "thread_pool_dispatch_us": micros("BM_ThreadPoolDispatch"),
    "fig7_sweep": {
        "scale": scale,
        "seeds": int(seeds),
        "wall_seconds_prefix_cache_on": float(cached),
        "wall_seconds_prefix_cache_off": float(uncached),
        "prefix_cache_speedup": ratio(float(uncached), float(cached)),
    },
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY
