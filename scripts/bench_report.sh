#!/usr/bin/env bash
# Performance report: microbench kernels + timed fig7 sweeps, as JSON.
#
#   scripts/bench_report.sh [--smoke] [build-dir]
#
# Full mode (default) writes BENCH_pr9.json at the repo root — the perf
# trajectory data point for this PR:
#   * GEMM GFLOP/s at 64/128/256 (packed kernel and naive reference, plus
#     the packed/naive speedup ratio),
#   * the same sizes per compute backend (SAFELIGHT_BACKEND forced to each
#     registered variant plus auto), proving runtime dispatch costs nothing
#     and the best variant matches the old -march=native build,
#   * Conv2d forward time,
#   * end-to-end fig7_susceptibility sweep wall-clock at default scale,
#     cold scenario cache, with the prefix-activation cache ON and OFF
#     (SAFELIGHT_PREFIX_CACHE) on a pre-trained zoo,
#   * telemetry overhead: the same sweep through the `safelight` CLI,
#     untraced vs armed with --trace/--metrics (warm zoo, fresh stores,
#     interleaved best-of-3) — the observability layer's contract is <2%
#     overhead and byte-identical CSV output, both recorded in the
#     report.
#
# --smoke (used by scripts/check.sh and CI) runs the same pipeline at tiny
# scale with minimal benchmark repetitions and writes the report into the
# build directory instead, leaving the committed data point untouched.
#
# Requires the microbench binary (Google Benchmark) and python3 (JSON
# assembly). Both are checked up front.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

MICROBENCH="$BUILD_DIR/bench/microbench"
FIG7="$BUILD_DIR/bench/fig7_susceptibility"
SAFELIGHT="$BUILD_DIR/src/safelight"
if [[ ! -x "$MICROBENCH" ]]; then
  echo "bench_report: $MICROBENCH not built (Google Benchmark missing?)" >&2
  exit 1
fi
if [[ ! -x "$FIG7" ]]; then
  echo "bench_report: $FIG7 not built" >&2
  exit 1
fi
if [[ ! -x "$SAFELIGHT" ]]; then
  echo "bench_report: $SAFELIGHT not built" >&2
  exit 1
fi
command -v python3 >/dev/null || { echo "bench_report: python3 required" >&2; exit 1; }

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

if [[ "$SMOKE" == "1" ]]; then
  SCALE=tiny
  SEEDS=2
  # Plain-double form: accepted by every google-benchmark (the "0.05s"
  # suffix form only exists from v1.8).
  BENCH_ARGS=(--benchmark_min_time=0.05)
  OUT_JSON="$BUILD_DIR/bench_report_smoke.json"
else
  SCALE=default
  SEEDS=2
  BENCH_ARGS=()
  OUT_JSON="BENCH_pr9.json"
fi

echo "== microbench (json) =="
"$MICROBENCH" --benchmark_filter='BM_Gemm|BM_GemmRef|BM_Conv2dForward|BM_ThreadPoolDispatch' \
  --benchmark_format=json "${BENCH_ARGS[@]}" >"$WORK_DIR/micro.json"

echo "== per-backend BM_Gemm (runtime dispatch matrix) =="
# Force each compiled-in variant in turn; a variant this CPU cannot run
# makes the process exit nonzero (loud resolve error) and is skipped.
BACKEND_RESULTS=()
for b in auto scalar avx2 avx512; do
  if SAFELIGHT_BACKEND="$b" "$MICROBENCH" --benchmark_filter='^BM_Gemm/' \
      --benchmark_format=json "${BENCH_ARGS[@]}" \
      >"$WORK_DIR/gemm_$b.json" 2>"$WORK_DIR/gemm_$b.err"; then
    BACKEND_RESULTS+=("$b=$WORK_DIR/gemm_$b.json")
  else
    echo "backend $b unavailable on this host; skipped"
  fi
done

echo "== fig7 sweep ($SCALE scale, $SEEDS seeds) =="
export SAFELIGHT_SCALE="$SCALE"
export SAFELIGHT_SEEDS="$SEEDS"
export SAFELIGHT_ZOO="$WORK_DIR/zoo"
export SAFELIGHT_OUT="$WORK_DIR/out"

# Train once so the timed runs measure the sweep, not model training.
"$FIG7" >"$WORK_DIR/fig7_train.log"

run_sweep() {  # $1 = SAFELIGHT_PREFIX_CACHE value; prints wall seconds
  rm -f "$SAFELIGHT_ZOO"/*.sweep.csv "$SAFELIGHT_ZOO"/*.sweep.jsonl
  local start end
  start=$(python3 -c 'import time; print(time.monotonic())')
  SAFELIGHT_PREFIX_CACHE="$1" "$FIG7" >"$WORK_DIR/fig7_run.log"
  end=$(python3 -c 'import time; print(time.monotonic())')
  python3 -c "print(f'{$end - $start:.3f}')"
}

SWEEP_CACHED="$(run_sweep 1)"
SWEEP_UNCACHED="$(run_sweep 0)"
echo "sweep wall-clock: ${SWEEP_CACHED}s (prefix cache on), ${SWEEP_UNCACHED}s (off)"

echo "== telemetry overhead (traced vs untraced CLI sweep) =="
run_cli_sweep() {  # $@ = extra CLI flags; prints wall seconds
  rm -f "$SAFELIGHT_ZOO"/*.sweep.csv "$SAFELIGHT_ZOO"/*.sweep.jsonl
  local start end
  start=$(python3 -c 'import time; print(time.monotonic())')
  "$SAFELIGHT" run susceptibility "$@" >"$WORK_DIR/cli_run.log"
  end=$(python3 -c 'import time; print(time.monotonic())')
  python3 -c "print(f'{$end - $start:.3f}')"
}

# Same warm zoo, fresh scenario stores each run; interleaved best-of-N so
# one scheduler hiccup cannot fake (or mask) the <2% overhead contract —
# the per-run spread on a small host exceeds the overhead being measured,
# and the minimum is the estimator least sensitive to that noise.
TELEMETRY_FLAGS=(--trace "$WORK_DIR/trace.json" --metrics "$WORK_DIR/metrics.json")
REPS=3
[[ "$SMOKE" == "1" ]] && REPS=2
UNTRACED_RUNS=()
TRACED_RUNS=()
for (( i = 0; i < REPS; i++ )); do
  UNTRACED_RUNS+=("$(run_cli_sweep)")
  if [[ "$i" == "0" ]]; then
    cp "$SAFELIGHT_OUT/fig7_susceptibility.csv" "$WORK_DIR/untraced.csv"
  fi
  TRACED_RUNS+=("$(run_cli_sweep "${TELEMETRY_FLAGS[@]}")")
  if [[ "$i" == "0" ]]; then
    cp "$SAFELIGHT_OUT/fig7_susceptibility.csv" "$WORK_DIR/traced.csv"
  fi
done
CSV_IDENTICAL=false
cmp -s "$WORK_DIR/untraced.csv" "$WORK_DIR/traced.csv" && CSV_IDENTICAL=true
echo "untraced: ${UNTRACED_RUNS[*]}s  traced: ${TRACED_RUNS[*]}s  csv_identical=$CSV_IDENTICAL"

python3 - "$WORK_DIR/micro.json" "$OUT_JSON" "$SCALE" "$SEEDS" \
    "$SWEEP_CACHED" "$SWEEP_UNCACHED" "${UNTRACED_RUNS[*]}" \
    "${TRACED_RUNS[*]}" "$CSV_IDENTICAL" "$WORK_DIR/trace.json" \
    "$WORK_DIR/metrics.json" "${BACKEND_RESULTS[*]}" <<'PY'
import json, platform, subprocess, sys

micro_path, out_path, scale, seeds, cached, uncached = sys.argv[1:7]
untraced_runs = [float(v) for v in sys.argv[7].split()]
traced_runs = [float(v) for v in sys.argv[8].split()]
csv_identical = sys.argv[9] == "true"
trace_path, metrics_path = sys.argv[10:12]
backend_specs = sys.argv[12].split() if len(sys.argv) > 12 else []
with open(micro_path) as f:
    micro = json.load(f)

def bench(name):
    for b in micro.get("benchmarks", []):
        if b["name"] == name:
            return b
    return None

def gflops(name):
    b = bench(name)
    return round(b["items_per_second"] / 1e9, 2) if b else None

def micros(name):
    b = bench(name)
    return round(b["real_time"] / 1e3, 1) if b else None  # ns -> us

def ratio(a, b):
    return round(a / b, 2) if a and b else None

with open(trace_path) as f:
    trace = json.load(f)
span_count = sum(1 for e in trace["traceEvents"] if e["ph"] == "X")
with open(metrics_path) as f:
    metrics = json.load(f)
gemm_hist = metrics["histograms"].get("gemm.gflops", {})

untraced = min(untraced_runs)
traced = min(traced_runs)
overhead_pct = round((traced - untraced) / untraced * 100, 2)

gemm = {n: gflops(f"BM_Gemm/{n}") for n in (64, 128, 256)}
ref = {n: gflops(f"BM_GemmRef/{n}") for n in (64, 128, 256)}

# Per-backend matrix: "name=path" specs from the forced-variant runs.
backend_gflops = {}
for spec in backend_specs:
    name, _, path = spec.partition("=")
    with open(path) as f:
        per = json.load(f)
    def per_gflops(bench_name, doc=per):
        for b in doc.get("benchmarks", []):
            if b["name"] == bench_name:
                return round(b["items_per_second"] / 1e9, 2)
        return None
    backend_gflops[name] = {
        str(n): per_gflops(f"BM_Gemm/{n}") for n in (64, 128, 256)
    }

# BM_Gemm/256 of the single-TU -march=native kernel this PR replaced,
# measured on this host at the pre-registry commit (PR 8 tree). The
# acceptance bar: the best dispatched variant stays within 2% of it.
OLD_NATIVE_GFLOPS_256 = 49.098
variants = {k: v for k, v in backend_gflops.items() if k != "auto"}
best_backend, best_256 = None, None
for name, sizes in variants.items():
    value = sizes.get("256")
    if value is not None and (best_256 is None or value > best_256):
        best_backend, best_256 = name, value
auto_256 = backend_gflops.get("auto", {}).get("256")
backend_summary = {
    "old_native_build_gflops_256": OLD_NATIVE_GFLOPS_256,
    "best_backend": best_backend,
    "best_gflops_256": best_256,
    "auto_gflops_256": auto_256,
    # Negative = faster than the old -march=native build.
    "vs_old_native_pct": round((OLD_NATIVE_GFLOPS_256 - best_256)
                               / OLD_NATIVE_GFLOPS_256 * 100, 2)
                         if best_256 else None,
    # auto vs the best forced variant: the cost of runtime dispatch.
    "dispatch_overhead_pct": round((best_256 - auto_256) / best_256 * 100, 2)
                             if best_256 and auto_256 else None,
}

report = {
    "pr": 9,
    "host": {
        "machine": platform.machine(),
        "cpus": micro.get("context", {}).get("num_cpus"),
    },
    "gemm_gflops": {str(n): gemm[n] for n in gemm},
    "gemm_ref_gflops": {str(n): ref[n] for n in ref},
    "gemm_speedup_vs_ref": {str(n): ratio(gemm[n], ref[n]) for n in gemm},
    "gemm_backend_gflops": backend_gflops,
    "backend_dispatch": backend_summary,
    "conv2d_forward_us": {
        "c8": micros("BM_Conv2dForward/8"),
        "c32": micros("BM_Conv2dForward/32"),
    },
    "thread_pool_dispatch_us": micros("BM_ThreadPoolDispatch"),
    "fig7_sweep": {
        "scale": scale,
        "seeds": int(seeds),
        "wall_seconds_prefix_cache_on": float(cached),
        "wall_seconds_prefix_cache_off": float(uncached),
        "prefix_cache_speedup": ratio(float(uncached), float(cached)),
    },
    "telemetry": {
        # Contract: <2% overhead, byte-identical CSV. min over interleaved
        # repetitions; the per-run lists record the observed spread.
        "wall_seconds_untraced": untraced,
        "wall_seconds_traced": traced,
        "untraced_runs": untraced_runs,
        "traced_runs": traced_runs,
        "overhead_pct": overhead_pct,
        "csv_identical": csv_identical,
        "trace_span_count": span_count,
        "gemm_gflops_p50": gemm_hist.get("p50"),
        "gemm_gflops_p99": gemm_hist.get("p99"),
    },
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY
