#!/usr/bin/env bash
# Serving throughput bench: concurrent clients against `safelight serve`.
#
#   scripts/bench_serve.sh [--smoke] [build-dir]
#
# Full mode (default) writes BENCH_pr10.json at the repo root — the serving
# data point for this PR: a daemon with 4 slots takes 8 concurrent clients
# submitting a mixed experiment workload (susceptibility / detection /
# campaign, all tiny scale on a pre-warmed zoo), each client submitting,
# following the NDJSON event stream to the terminal event and fetching the
# result document. Recorded per run:
#   * jobs/sec and HTTP requests/sec over the whole storm,
#   * p50/p90/p99/max end-to-end job latency (submit -> result bytes),
#   * the daemon's own /metrics counters (jobs submitted/completed,
#     queue/slot gauges, zoo trainings),
#   * graceful-shutdown proof: SIGTERM must end the daemon with exit 130.
#
# --smoke (used by scripts/check.sh and CI) runs the same pipeline with a
# smaller storm and writes the report into the build directory instead,
# leaving the committed data point untouched.
#
# Requires python3 (concurrent client driver + JSON assembly).
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

SAFELIGHT="$BUILD_DIR/src/safelight"
if [[ ! -x "$SAFELIGHT" ]]; then
  echo "bench_serve: $SAFELIGHT not built" >&2
  exit 1
fi
command -v python3 >/dev/null || { echo "bench_serve: python3 required" >&2; exit 1; }

WORK_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -KILL "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

if [[ "$SMOKE" == "1" ]]; then
  SLOTS=2
  QUEUE=32
  CLIENTS=8
  JOBS_PER_CLIENT=1
  OUT_JSON="$BUILD_DIR/bench_serve_smoke.json"
else
  SLOTS=4
  QUEUE=64
  CLIENTS=8
  JOBS_PER_CLIENT=3
  OUT_JSON="BENCH_pr10.json"
fi

# The serving bench measures the daemon (admission, streaming, slot
# scheduling), not sweep depth: tiny scale, shared pre-warmed zoo so no
# client pays one-time model training.
export SAFELIGHT_SCALE=tiny
export SAFELIGHT_SEEDS=2
export SAFELIGHT_ZOO="$WORK_DIR/zoo"
export SAFELIGHT_OUT="$WORK_DIR/out"

echo "== warm the zoo (train each workload's models once) =="
for experiment in susceptibility detection campaign; do
  "$SAFELIGHT" run "$experiment" --model cnn1 >"$WORK_DIR/warm_$experiment.log"
done

echo "== start daemon (slots=$SLOTS queue=$QUEUE) =="
"$SAFELIGHT" serve --port 0 --slots "$SLOTS" --queue-depth "$QUEUE" \
  >"$WORK_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 100); do
  grep -q "listening on" "$WORK_DIR/serve.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK_DIR/serve.log")"
if [[ -z "$PORT" ]]; then
  echo "bench_serve: daemon did not come up" >&2
  cat "$WORK_DIR/serve.log" >&2
  exit 1
fi
echo "daemon on port $PORT (pid $SERVE_PID)"

echo "== client storm ($CLIENTS clients x $JOBS_PER_CLIENT jobs) =="
python3 - "$PORT" "$CLIENTS" "$JOBS_PER_CLIENT" "$WORK_DIR/storm.json" <<'PY'
import http.client, json, sys, threading, time

port, clients, jobs_per_client = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
out_path = sys.argv[4]
EXPERIMENTS = ["susceptibility", "detection", "campaign"]

lock = threading.Lock()
latencies = []          # end-to-end seconds per job (submit -> result bytes)
per_experiment = {}     # experiment -> completed count
http_requests = [0]
errors = []

def request(method, target, body=None):
    with lock:
        http_requests[0] += 1
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    headers = {"Connection": "close"}
    conn.request(method, target, body=body, headers=headers)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, data

def client(index):
    for j in range(jobs_per_client):
        experiment = EXPERIMENTS[(index + j) % len(EXPERIMENTS)]
        spec = json.dumps({"experiment": experiment, "model": "cnn1"})
        start = time.monotonic()
        status, body = request("POST", "/v1/jobs", spec)
        if status != 202:
            with lock:
                errors.append(f"submit {experiment}: {status} {body[:200]!r}")
            continue
        job = json.loads(body)["job"]
        # Follow the NDJSON stream to the terminal event (blocks until the
        # job ends; every line must be a standalone JSON object).
        status, stream = request("GET", f"/v1/jobs/{job}/events")
        terminal = None
        for line in stream.decode().splitlines():
            event = json.loads(line)
            if event["type"] in ("result", "failed", "cancelled"):
                terminal = event["type"]
        if terminal != "result":
            with lock:
                errors.append(f"job {job} ({experiment}): terminal={terminal}")
            continue
        status, result = request("GET", f"/v1/jobs/{job}/result")
        elapsed = time.monotonic() - start
        if status != 200 or not result:
            with lock:
                errors.append(f"result {job}: {status}")
            continue
        with lock:
            latencies.append(elapsed)
            per_experiment[experiment] = per_experiment.get(experiment, 0) + 1

wall_start = time.monotonic()
threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
for t in threads:
    t.start()
for t in threads:
    t.join()
wall = time.monotonic() - wall_start

status, metrics_body = request("GET", "/metrics")
metrics = json.loads(metrics_body) if status == 200 else {}

def percentile(values, q):
    if not values:
        return None
    ordered = sorted(values)
    return round(ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))], 3)

counters = metrics.get("counters", {})
report = {
    "clients": clients,
    "jobs_per_client": jobs_per_client,
    "jobs_completed": len(latencies),
    "errors": errors,
    "wall_seconds": round(wall, 3),
    "jobs_per_sec": round(len(latencies) / wall, 3) if wall else None,
    "http_requests": http_requests[0],
    "requests_per_sec": round(http_requests[0] / wall, 3) if wall else None,
    "job_latency_seconds": {
        "p50": percentile(latencies, 0.50),
        "p90": percentile(latencies, 0.90),
        "p99": percentile(latencies, 0.99),
        "max": percentile(latencies, 1.0),
    },
    "per_experiment": per_experiment,
    "daemon_counters": {
        name: counters.get(name)
        for name in ("serve.http.requests", "serve.jobs.submitted",
                     "serve.jobs.completed", "serve.jobs.rejected",
                     "zoo.trainings")
    },
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
if errors:
    print("storm errors:", *errors, sep="\n  ", file=sys.stderr)
    sys.exit(1)
print(f"{len(latencies)} jobs in {wall:.1f}s "
      f"({report['jobs_per_sec']} jobs/s, {report['requests_per_sec']} req/s), "
      f"p50={report['job_latency_seconds']['p50']}s "
      f"p99={report['job_latency_seconds']['p99']}s")
PY

echo "== graceful shutdown (SIGTERM -> 130) =="
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
SERVE_PID=""
if [[ "$SERVE_RC" != "130" ]]; then
  echo "bench_serve: daemon exit code $SERVE_RC, expected 130" >&2
  cat "$WORK_DIR/serve.log" >&2
  exit 1
fi
grep -q "\[serve\] stopped" "$WORK_DIR/serve.log"
echo "daemon drained and exited 130"

python3 - "$WORK_DIR/storm.json" "$OUT_JSON" "$SLOTS" "$QUEUE" "$SERVE_RC" <<'PY'
import json, platform, sys

storm_path, out_path, slots, queue, rc = sys.argv[1:6]
with open(storm_path) as f:
    storm = json.load(f)
report = {
    "schema": "safelight.bench_serve.v1",
    "pr": 10,
    "host": {"machine": platform.machine()},
    "daemon": {
        "slots": int(slots),
        "queue_depth": int(queue),
        "scale": "tiny",
        "seeds": 2,
        "graceful_exit_code": int(rc),
    },
    "storm": storm,
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY
