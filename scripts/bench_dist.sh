#!/usr/bin/env bash
# Distributed-sweep scaling + recovery bench -> BENCH_pr7.json.
#
#   scripts/bench_dist.sh [build-dir] [out-json]
#
# Times `safelight run susceptibility --model cnn1 --scale tiny` from a
# fresh zoo at --workers 0 (single-process reference), 1, 2 and 4, plus a
# 2-worker chaos leg (--chaos 0.2: workers crash on ~20% of durable
# writes) whose extra wall time over the clean 2-worker run is the
# recovery overhead. Every leg's CSV is compared byte-for-byte against
# the --workers 0 reference before its timing is trusted.
#
# Workers run --threads 1 so the bench measures process-level sharding,
# not thread-pool fan-out. On a single-core host (CI, this container)
# worker processes time-share one CPU, so wall-clock speedup > 1 is
# physically unattainable there — the interesting numbers are the
# sharding overhead (workers=1 vs workers=0) and the chaos recovery
# overhead. The JSON records cpu count so readers can judge.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pr7.json}"
SAFELIGHT="$(cd "$BUILD_DIR" && pwd)/src/safelight"
SEEDS="${SAFELIGHT_BENCH_SEEDS:-6}"

BENCH_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_DIR"' EXIT

# now_ms: monotonic-enough millisecond timestamp for wall deltas.
now_ms() { date +%s%3N; }

run_leg() {  # name, extra flags...
  local name="$1"; shift
  local zoo="$BENCH_DIR/zoo_$name" out="$BENCH_DIR/out_$name"
  local t0 t1
  t0=$(now_ms)
  "$SAFELIGHT" run susceptibility --model cnn1 --scale tiny \
      --seeds "$SEEDS" --threads 1 --zoo "$zoo" --out "$out" "$@" \
      >"$BENCH_DIR/$name.log"
  t1=$(now_ms)
  echo "$(( t1 - t0 ))" >"$BENCH_DIR/$name.ms"
  grep '\[dist\] summary:' "$BENCH_DIR/$name.log" \
      >"$BENCH_DIR/$name.summary" || true
  echo "  $name: $(( (t1 - t0) / 1000 )).$(printf '%03d' $(( (t1 - t0) % 1000 )))s"
}

echo "== distributed sweep bench (cnn1/tiny, $SEEDS seeds, fresh zoo per leg) =="
run_leg w0
run_leg w1 --workers 1
run_leg w2 --workers 2
run_leg w4 --workers 4
run_leg w2_chaos --workers 2 --chaos 0.2 --max-task-retries 1000

for leg in w1 w2 w4 w2_chaos; do
  cmp "$BENCH_DIR/out_w0/fig7_susceptibility.csv" \
      "$BENCH_DIR/out_$leg/fig7_susceptibility.csv"
done
echo "all distributed CSVs byte-identical to the single-process reference"

run_all_leg() {  # name, extra flags...
  local name="$1"; shift
  local zoo="$BENCH_DIR/zoo_$name" out="$BENCH_DIR/out_$name"
  local t0 t1
  t0=$(now_ms)
  "$SAFELIGHT" run-all --scale tiny --seeds 2 --threads 1 \
      --zoo "$zoo" --out "$out" "$@" >"$BENCH_DIR/$name.log"
  t1=$(now_ms)
  echo "$(( t1 - t0 ))" >"$BENCH_DIR/$name.ms"
  echo "  $name: $(( (t1 - t0) / 1000 )).$(printf '%03d' $(( (t1 - t0) % 1000 )))s"
}

echo "== run-all scaling (tiny, 2 seeds, all 5 experiments, fresh zoo per leg) =="
run_all_leg ra0
run_all_leg ra1 --workers 1
run_all_leg ra2 --workers 2
run_all_leg ra4 --workers 4
for leg in ra1 ra2 ra4; do
  for csv in "$BENCH_DIR/out_ra0/"*.csv; do
    cmp "$csv" "$BENCH_DIR/out_$leg/$(basename "$csv")"
  done
done
echo "all run-all CSVs byte-identical across worker counts"

summary_field() {  # leg, key -> value (0 when absent)
  grep -o "$2=[0-9]*" "$BENCH_DIR/$1.summary" 2>/dev/null | head -1 \
      | cut -d= -f2 || true
}

ms() { cat "$BENCH_DIR/$1.ms"; }

W0=$(ms w0); W1=$(ms w1); W2=$(ms w2); W4=$(ms w4); WC=$(ms w2_chaos)
RA0=$(ms ra0); RA1=$(ms ra1); RA2=$(ms ra2); RA4=$(ms ra4)
CRASHES=$(summary_field w2_chaos crashes)
RETRIES=$(summary_field w2_chaos retries)

python3 - "$OUT_JSON" <<EOF
import json, os, platform, sys

def s(ms): return round(ms / 1000.0, 3)
w0, w1, w2, w4, wc = $W0, $W1, $W2, $W4, $WC
doc = {
    "pr": 7,
    "bench": "distributed sweep sharding (src/dist)",
    "host": {
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "note": "workers run --threads 1; on a 1-cpu host the worker "
                "processes time-share one core, so speedup > 1 is "
                "physically unattainable here — measured numbers are "
                "sharding + recovery overhead, not parallel speedup",
    },
    "workload": {
        "experiment": "susceptibility", "model": "cnn1", "scale": "tiny",
        "seeds": $SEEDS, "threads_per_worker": 1,
        "fresh_zoo_per_leg": True,
        "csv_byte_identical_across_all_legs": True,
    },
    "wall_seconds": {
        "workers_0_single_process": s(w0),
        "workers_1": s(w1),
        "workers_2": s(w2),
        "workers_4": s(w4),
        "workers_2_chaos_p0.2": s(wc),
    },
    "run_all_wall_seconds": {
        "note": "run-all, tiny scale, 2 seeds, all 5 experiments, fresh "
                "zoo per leg; detection/campaign are not shardable and "
                "run in-process at every worker count",
        "workers_0_single_process": $RA0 / 1000.0,
        "workers_1": $RA1 / 1000.0,
        "workers_2": $RA2 / 1000.0,
        "workers_4": $RA4 / 1000.0,
        "speedup_w2_vs_w0": round($RA0 / $RA2, 2),
        "speedup_w4_vs_w0": round($RA0 / $RA4, 2),
    },
    "sharding_overhead_w1_vs_w0": round(s(w1) - s(w0), 3),
    "speedup_w2_vs_w0": round(w0 / w2, 2),
    "speedup_w4_vs_w0": round(w0 / w4, 2),
    "chaos_recovery": {
        "crash_probability_per_durable_write": 0.2,
        "worker_crashes": ${CRASHES:-0},
        "task_retries": ${RETRIES:-0},
        "overhead_seconds_vs_clean_w2": round(s(wc) - s(w2), 3),
        "overhead_ratio_vs_clean_w2": round(wc / w2, 2),
    },
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote", sys.argv[1])
EOF
