// Substrate micro-benchmarks (google-benchmark): GEMM, convolution,
// MR-bank transmission model, thermal solver, mapping and attack planning.
// These size the simulator itself, not the paper's results.

#include <benchmark/benchmark.h>

#include <atomic>

#include "accel/mapping.hpp"
#include "attacks/actuation.hpp"
#include "attacks/hotspot.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "nn/gemm_ref.hpp"
#include "nn/models.hpp"
#include "photonics/mr_bank.hpp"
#include "thermal/solver.hpp"

namespace sl = safelight;

namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sl::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    sl::nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// The kept naive reference kernel (nn/gemm_ref.hpp): the denominator of the
// packed-kernel speedup ratio scripts/bench_report.sh records. It matches
// the pre-PR-2 scalar kernel's structure, so BM_Gemm / BM_GemmRef tracks
// the kernel rewrite's win on whatever host runs the report.
void BM_GemmRef(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sl::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    sl::nn::gemm_ref(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmRef)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sl::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    sl::nn::gemm_bt(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmBt)->Arg(64)->Arg(256);

// Cost of dispatching a (tiny) job to the persistent pool — the fixed
// overhead every parallel_for pays, formerly a thread spawn + join.
void BM_ThreadPoolDispatch(benchmark::State& state) {
  sl::ThreadPool& pool = sl::ThreadPool::global();
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    pool.run(sl::worker_count(), [&](std::size_t c) {
      benchmark::DoNotOptimize(sink += c);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ThreadPoolDispatch);

void BM_Conv2dForward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  sl::Rng rng(2);
  sl::nn::Conv2d conv(channels, channels, 3, 1, 1, rng);
  sl::nn::Tensor x({8, channels, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  for (auto _ : state) {
    auto out = conv.forward(x, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(32);

void BM_MrBankEffectiveWeights(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  sl::phot::MrGeometry geometry;
  if (channels > 20) geometry.q_factor = sl::phot::kHighQ;
  const sl::phot::Microring reference(geometry, 1550.0);
  const sl::phot::WdmGrid grid(channels, 1550.0, reference.fsr_nm());
  sl::phot::MrBank bank(geometry, grid);
  sl::Rng rng(3);
  std::vector<double> weights(channels);
  for (auto& w : weights) w = rng.uniform(-0.9, 0.9);
  bank.set_weights(weights);
  for (std::size_t i = 0; i < channels; ++i) {
    bank.set_temperature_delta(i, 10.0);
  }
  for (auto _ : state) {
    auto effective = bank.effective_weights();
    benchmark::DoNotOptimize(effective.data());
  }
}
BENCHMARK(BM_MrBankEffectiveWeights)->Arg(20)->Arg(150);

void BM_ThermalSolve(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sl::thermal::GridConfig config;
  config.rows = side;
  config.cols = side;
  for (auto _ : state) {
    sl::thermal::ThermalGrid grid(config);
    grid.add_power_mw(side / 2, side / 2, 45.0);
    grid.add_power_mw(side / 4, side / 4, 45.0);
    auto result = sl::thermal::solve_steady_state(grid);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_ThermalSolve)->Arg(40)->Arg(90);

void BM_MappingConstruction(benchmark::State& state) {
  sl::nn::ModelConfig config;
  auto model = sl::nn::make_cnn1(config);
  const auto accel = sl::accel::AcceleratorConfig::crosslight();
  for (auto _ : state) {
    sl::accel::WeightStationaryMapping mapping(*model, accel);
    benchmark::DoNotOptimize(mapping.weight_count(sl::accel::BlockKind::kFc));
  }
}
BENCHMARK(BM_MappingConstruction);

void BM_ActuationPlanning(benchmark::State& state) {
  const auto accel = sl::accel::AcceleratorConfig::crosslight();
  sl::attack::AttackScenario scenario;
  scenario.vector = sl::attack::AttackVector::kActuation;
  scenario.target = sl::attack::AttackTarget::kBothBlocks;
  scenario.fraction = static_cast<double>(state.range(0)) / 100.0;
  scenario.seed = 7;
  for (auto _ : state) {
    auto trojans = sl::attack::plan_actuation_attack(accel, scenario);
    benchmark::DoNotOptimize(trojans.size());
  }
}
BENCHMARK(BM_ActuationPlanning)->Arg(1)->Arg(10);

void BM_HotspotPlanning(benchmark::State& state) {
  const auto accel = sl::accel::AcceleratorConfig::crosslight();
  sl::attack::AttackScenario scenario;
  scenario.vector = sl::attack::AttackVector::kHotspot;
  scenario.target = sl::attack::AttackTarget::kConvBlock;
  scenario.fraction = static_cast<double>(state.range(0)) / 100.0;
  scenario.seed = 7;
  for (auto _ : state) {
    auto plan = sl::attack::plan_hotspot_attack(accel, scenario);
    benchmark::DoNotOptimize(plan.trojans.size());
  }
}
BENCHMARK(BM_HotspotPlanning)->Arg(1)->Arg(5);

}  // namespace
