// Fig. 6 reproduction: heatmap of the CONV MR bank arrays under hotspot
// attacks ("two MR banks have multiple compromised heaters").
//
// Prints the solved steady-state field as ASCII art, writes the full
// temperature matrix to CSV, and summarizes the Eq. 2 resonance shifts the
// field induces on victim and neighbor banks.

#include <algorithm>
#include <cstdio>

#include "attacks/hotspot.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/report.hpp"
#include "thermal/heatmap.hpp"

namespace sl = safelight;

int main() {
  sl::bench::banner("Fig. 6: CONV-block hotspot heatmap");

  const sl::accel::AcceleratorConfig config =
      sl::accel::AcceleratorConfig::crosslight();
  sl::attack::AttackScenario scenario;
  scenario.vector = sl::attack::AttackVector::kHotspot;
  scenario.target = sl::attack::AttackTarget::kConvBlock;
  // Two victim banks out of 2000 (matching the paper's illustration).
  scenario.fraction = 2.0 * 20.0 / 40000.0;
  scenario.seed = 2025;

  sl::attack::HotspotConfig attack;
  const sl::attack::HotspotPlan plan =
      sl::attack::plan_hotspot_attack(config, scenario, attack);

  const auto* state = plan.state_for(sl::accel::BlockKind::kConv);
  if (state == nullptr) {
    std::printf("no thermal state produced\n");
    return 1;
  }
  std::printf("victim banks: %zu, heater overdrive %.0f mW each\n\n",
              plan.trojans.size(), attack.heater_overdrive_mw);
  std::printf("%s\n", sl::thermal::render_ascii_heatmap(state->grid).c_str());

  const std::string csv_path = sl::bench::out_dir() + "/fig6_heatmap.csv";
  sl::thermal::write_heatmap_csv(state->grid, csv_path);

  // Eq. 2 consequences at bank granularity.
  const sl::phot::Microring ring(config.conv_mr, config.center_wavelength_nm);
  const double spacing =
      ring.fsr_nm() / static_cast<double>(config.conv.mrs_per_bank);
  std::vector<double> rises = state->bank_delta_t;
  std::sort(rises.rbegin(), rises.rend());

  sl::core::TextTable table(
      {"bank rank", "delta-T (K)", "Eq.2 shift (nm)", "channel spacings"});
  for (std::size_t rank : {0u, 1u, 2u, 5u, 10u, 50u}) {
    if (rank >= rises.size()) continue;
    const double dt = std::max(
        0.0, rises[rank] - sl::attack::HotspotConfig{}.tuning_compensation_k);
    const double shift = ring.thermal_shift_nm(dt);
    table.add_row({std::to_string(rank + 1), sl::fmt_double(rises[rank], 2),
                   sl::fmt_double(shift, 3),
                   sl::fmt_double(shift / spacing, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "peak rise %.1f K; >= 1 channel spacing of shift needs %.1f K\n"
      "heatmap CSV written to %s\n",
      state->grid.max_temperature_k() - state->grid.config().ambient_k,
      spacing / ring.thermal_shift_nm(1.0), csv_path.c_str());
  return 0;
}
