// Ablation benches for the design choices called out in DESIGN.md:
//   A1. actuation payload: park distance sweep (stuck-at-zero .. stuck-at-max)
//   A2. hotspot heater overdrive power sweep
//   A3. tuning-circuit compensation capacity sweep
//   A4. DAC resolution sweep (deployment quantization)
// All on CNN_1 (fast, full CrossLight-sized blocks). The scenario sweeps
// (A1/A2/A3/A5/A7) run through the scenario pipeline with the ablated
// CorruptionConfig — the pipeline fingerprints the config into its result
// store, so every knob setting caches separately and re-runs are instant.

#include <cstdio>

#include "attacks/adc_attack.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/zoo.hpp"

namespace sl = safelight;

int main() {
  const sl::Scale scale = sl::bench::bench_scale();
  sl::bench::banner("Ablations (CNN_1, " + sl::to_string(scale) + " scale)");
  sl::core::ModelZoo zoo;
  const auto setup = sl::core::experiment_setup(sl::nn::ModelId::kCnn1, scale);
  // Train up front (verbose) so the pipeline sweeps below only load.
  zoo.get_or_train(setup, sl::core::variant_by_name("Original"),
                   /*verbose=*/true);
  const std::size_t seeds = sl::bench::seed_count(3);

  // Mean accuracy across placements for one ablated corruption config,
  // evaluated through the parallel pipeline on the CONV+FC target.
  const auto sweep_mean = [&](const std::string& variant,
                              sl::attack::AttackVector vector, double fraction,
                              std::uint64_t base_seed,
                              const sl::attack::CorruptionConfig& corruption) {
    sl::core::PipelineOptions options;
    options.cache_dir = zoo.directory();
    options.corruption = corruption;
    sl::core::ScenarioPipeline pipeline(setup, zoo, options);
    const sl::core::SweepResult sweep = pipeline.run(
        sl::core::variant_by_name(variant),
        sl::attack::scenario_grid({vector},
                                  {sl::attack::AttackTarget::kBothBlocks},
                                  {fraction}, seeds, base_seed));
    return sl::mean_of(sweep.accuracies());
  };

  sl::CsvWriter csv(sl::bench::out_dir() + "/ablation_attacks.csv",
                    {"ablation", "knob", "value", "mean_accuracy"});

  // ---- A1: actuation park distance ---------------------------------
  {
    std::printf("\nA1: actuation park distance (fraction of channel spacing)\n");
    sl::core::TextTable table(
        {"park fraction", "stuck |w| (CONV)", "mean acc @10% CONV+FC"});
    for (double park : {0.02, 0.1, 0.25, 0.5, 1.0}) {
      sl::attack::CorruptionConfig corruption;
      corruption.actuation.park_spacing_fraction = park;
      const double acc = sweep_mean("Original",
                                    sl::attack::AttackVector::kActuation, 0.10,
                                    3000, corruption);
      const double stuck = sl::attack::stuck_weight_magnitude(
          setup.accelerator, sl::accel::BlockKind::kConv, park);
      table.add_row({sl::fmt_double(park, 2), sl::fmt_double(stuck, 3),
                     sl::core::pct(acc)});
      csv.row({"A1_park_fraction", "park", sl::fmt_double(park, 2),
               sl::fmt_double(acc, 4)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "small park ~= stuck-at-zero (ring stays near resonance), large park\n"
        "~= stuck-at-max: both corrupt, stuck-at-max is the harsher payload.\n");
  }

  // ---- A2: heater overdrive power -----------------------------------
  {
    std::printf("\nA2: hotspot heater overdrive power\n");
    sl::core::TextTable table({"overdrive (mW)", "mean acc @5% CONV+FC"});
    for (double mw : {10.0, 25.0, 45.0, 80.0}) {
      sl::attack::CorruptionConfig corruption;
      corruption.hotspot.heater_overdrive_mw = mw;
      const double acc = sweep_mean("Original",
                                    sl::attack::AttackVector::kHotspot, 0.05,
                                    4000, corruption);
      table.add_row({sl::fmt_double(mw, 0), sl::core::pct(acc)});
      csv.row({"A2_overdrive_mw", "mw", sl::fmt_double(mw, 0),
               sl::fmt_double(acc, 4)});
    }
    std::printf("%s", table.render().c_str());
  }

  // ---- A3: tuning compensation capacity -----------------------------
  {
    std::printf("\nA3: tuning-circuit compensation capacity\n");
    sl::core::TextTable table({"compensation (K)", "mean acc @5% CONV+FC"});
    for (double comp : {0.0, 3.0, 10.0, 25.0, 60.0}) {
      sl::attack::CorruptionConfig corruption;
      corruption.hotspot.tuning_compensation_k = comp;
      const double acc = sweep_mean("Original",
                                    sl::attack::AttackVector::kHotspot, 0.05,
                                    5000, corruption);
      table.add_row({sl::fmt_double(comp, 1), sl::core::pct(acc)});
      csv.row({"A3_compensation_k", "kelvin", sl::fmt_double(comp, 1),
               sl::fmt_double(acc, 4)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "a hardware counter-measure would need tens of Kelvin of extra\n"
        "compensation range to neutralize hotspot HTs (cf. paper SV: costly).\n");
  }

  // ---- A4: DAC resolution --------------------------------------------
  {
    std::printf("\nA4: DAC resolution (clean deployment, no attack)\n");
    sl::core::TextTable table({"DAC bits", "clean accuracy"});
    for (unsigned bits : {2u, 4u, 6u, 8u, 10u}) {
      auto fresh = zoo.get_or_train(setup, sl::core::variant_by_name("Original"));
      sl::core::ExperimentSetup variant_setup = setup;
      variant_setup.accelerator.dac_bits = bits;
      sl::accel::OnnExecutor executor(variant_setup.accelerator);
      executor.condition_weights(*fresh);
      const double acc = executor.evaluate(
          *fresh, sl::core::make_test_data(setup).take(setup.eval_count));
      table.add_row({std::to_string(bits), sl::core::pct(acc)});
      csv.row({"A4_dac_bits", "bits", std::to_string(bits),
               sl::fmt_double(acc, 4)});
    }
    std::printf("%s", table.render().c_str());
  }

  // ---- A5: trigger probability (partially triggered HT population) ---
  {
    std::printf("\nA5: trigger probability of the implanted HT population\n");
    sl::core::TextTable table(
        {"trigger prob", "mean acc @10% actuation CONV+FC"});
    for (double prob : {0.1, 0.3, 0.6, 1.0}) {
      sl::attack::CorruptionConfig corruption;
      corruption.actuation.trigger.trigger_probability = prob;
      const double acc = sweep_mean("Original",
                                    sl::attack::AttackVector::kActuation, 0.10,
                                    6000, corruption);
      table.add_row({sl::fmt_double(prob, 1), sl::core::pct(acc)});
      csv.row({"A5_trigger_prob", "prob", sl::fmt_double(prob, 1),
               sl::fmt_double(acc, 4)});
    }
    std::printf("%s", table.render().c_str());
  }

  // ---- A6: ADC read-out attack (paper SII.C attack surface) -----------
  {
    std::printf("\nA6: compromised-ADC read-out attack\n");
    sl::core::TextTable table({"payload", "victim ADC fraction",
                               "accuracy"});
    const sl::nn::Dataset eval_data =
        sl::core::make_test_data(setup).take(setup.eval_count);
    for (auto payload : {sl::attack::AdcPayload::kStuckFullScale,
                         sl::attack::AdcPayload::kSignFlip,
                         sl::attack::AdcPayload::kMsbFlip}) {
      for (double fraction : {0.01, 0.05}) {
        auto fresh =
            zoo.get_or_train(setup, sl::core::variant_by_name("Original"));
        sl::accel::OnnExecutor executor(setup.accelerator);
        executor.condition_weights(*fresh);
        sl::attack::AdcAttackConfig adc;
        adc.fraction = fraction;
        adc.payload = payload;
        adc.seed = 77;
        const sl::attack::AdcAttackPlan plan =
            sl::attack::plan_adc_attack(setup.accelerator, adc);
        executor.set_readout_hook(
            [&plan, &setup](sl::nn::Tensor& t, sl::accel::BlockKind kind,
                            float full_scale) {
              const std::size_t rows =
                  setup.accelerator.block(kind).bank_count();
              sl::attack::apply_adc_payload(t, plan, kind, rows, full_scale);
            });
        const double acc = executor.evaluate(*fresh, eval_data);
        table.add_row({sl::attack::to_string(payload),
                       sl::core::pct(fraction), sl::core::pct(acc)});
        csv.row({"A6_adc_" + sl::attack::to_string(payload), "fraction",
                 sl::fmt_double(fraction, 2), sl::fmt_double(acc, 4)});
      }
    }
    std::printf("%s", table.render().c_str());
  }

  // ---- A7: software + lightweight hardware mitigation (paper SVII) ----
  {
    std::printf(
        "\nA7: thermal-sentinel quarantine (hardware) on top of software\n"
        "    mitigation, 5%% hotspot CONV+FC\n");
    sl::core::TextTable table(
        {"spare banks", "Original model", "robust (l2+n3) model"});
    // Train the robust variant up front (verbose) before the sweeps load it.
    zoo.get_or_train(setup, sl::core::variant_by_name("l2+n3"), true);
    for (double spare : {0.0, 0.02, 0.05, 0.10}) {
      sl::attack::CorruptionConfig corruption;
      corruption.quarantine.enabled = spare > 0.0;
      corruption.quarantine.spare_bank_fraction = spare;
      const double acc_orig = sweep_mean(
          "Original", sl::attack::AttackVector::kHotspot, 0.05, 7000,
          corruption);
      const double acc_robust = sweep_mean(
          "l2+n3", sl::attack::AttackVector::kHotspot, 0.05, 7000, corruption);
      table.add_row({sl::core::pct(spare), sl::core::pct(acc_orig),
                     sl::core::pct(acc_robust)});
      csv.row({"A7_quarantine", "spare_fraction", sl::fmt_double(spare, 2),
               sl::fmt_double(acc_robust, 4)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "combining noise-aware training with a few %% of spare banks\n"
        "recovers most of the hotspot damage (paper SVII ongoing work).\n");
  }

  std::printf("\nCSV written to %s/ablation_attacks.csv\n",
              sl::bench::out_dir().c_str());
  return 0;
}
