// Fig. 7 reproduction: susceptibility of the three CNN models to actuation
// and hotspot attacks on 1/5/10 % of the MRs in the CONV block, FC block and
// the whole accelerator, with N random trojan placements per case.
//
// Thin wrapper: equivalent to `safelight run susceptibility` (the unified
// experiment CLI, src/cli/cli.hpp); kept so the historical per-figure
// binary name keeps working. All knobs come from the SAFELIGHT_* env vars.
#include "cli/cli.hpp"

int main() { return safelight::cli::run({"run", "susceptibility"}); }
