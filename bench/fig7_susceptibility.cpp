// Fig. 7 reproduction: susceptibility of the three CNN models to actuation
// and hotspot attacks on 1/5/10 % of the MRs in the CONV block, FC block and
// the whole accelerator, with N random trojan placements per case.
//
// The full grid (2 vectors x 3 targets x 3 intensities x N placements) runs
// through the scenario pipeline: evaluations fan out over SAFELIGHT_THREADS
// workers and results persist in the zoo directory, so an interrupted run
// resumes and a re-run is instant. Prints one table per model (the data
// behind Fig. 7(a)-(c)) plus the paper's §IV headline numbers (worst-case
// drops at 10 % hotspot CONV+FC).

#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/report.hpp"
#include "core/susceptibility.hpp"

namespace sl = safelight;

int main() {
  const sl::Scale scale = sl::bench::bench_scale();
  const std::size_t seeds = sl::bench::seed_count(10);
  sl::bench::banner("Fig. 7: attack susceptibility analysis (" +
                    sl::to_string(scale) + " scale, " +
                    std::to_string(seeds) + " placements)");

  sl::core::ModelZoo zoo;
  sl::CsvWriter csv(sl::bench::out_dir() + "/fig7_susceptibility.csv",
                    {"model", "vector", "target", "fraction", "seed",
                     "accuracy", "baseline"});

  struct Headline {
    std::string model;
    double baseline;
    double worst_drop_10pct_hotspot;
  };
  std::vector<Headline> headlines;

  for (sl::nn::ModelId id : sl::bench::paper_models()) {
    const auto setup = sl::core::experiment_setup(id, scale);
    sl::core::SusceptibilityOptions options;
    options.seed_count = seeds;
    options.cache_dir = zoo.directory();
    options.verbose = false;

    std::printf("\n--- %s (%s on %s) ---\n", sl::nn::to_string(id).c_str(),
                sl::to_string(scale).c_str(), setup.dataset_family.c_str());
    std::fflush(stdout);
    const sl::bench::Stopwatch watch;
    const sl::core::SusceptibilityReport report =
        sl::core::run_susceptibility(setup, zoo, options);
    sl::bench::report_timing(report.rows.size(), watch.seconds());

    std::printf("baseline accuracy: %s\n\n",
                sl::core::pct(report.baseline_accuracy).c_str());
    sl::core::TextTable table({"attack", "target", "fraction", "min",
                               "median", "max", "mean", "worst drop"});
    for (const auto& group : report.groups) {
      table.add_row({sl::attack::to_string(group.vector),
                     sl::attack::to_string(group.target),
                     sl::core::pct(group.fraction),
                     sl::core::pct(group.accuracy.min),
                     sl::core::pct(group.accuracy.median),
                     sl::core::pct(group.accuracy.max),
                     sl::core::pct(group.accuracy.mean),
                     sl::core::pct(report.baseline_accuracy -
                                   group.accuracy.min)});
    }
    std::printf("%s", table.render().c_str());

    for (const auto& row : report.rows) {
      csv.row({sl::nn::to_string(id), sl::attack::to_string(row.scenario.vector),
               sl::attack::to_string(row.scenario.target),
               sl::fmt_double(row.scenario.fraction, 2),
               std::to_string(row.scenario.seed),
               sl::fmt_double(row.accuracy, 4),
               sl::fmt_double(report.baseline_accuracy, 4)});
    }
    headlines.push_back(
        {sl::nn::to_string(id), report.baseline_accuracy,
         report.worst_drop(sl::attack::AttackVector::kHotspot,
                           sl::attack::AttackTarget::kBothBlocks, 0.10)});
  }

  sl::bench::banner("Headline (paper SIV: 7.49% / 26.4% / 80.46% drops)");
  sl::core::TextTable headline_table(
      {"model", "baseline", "worst drop @ 10% hotspot CONV+FC"});
  for (const auto& h : headlines) {
    headline_table.add_row({h.model, sl::core::pct(h.baseline),
                            sl::core::pct(h.worst_drop_10pct_hotspot)});
  }
  std::printf("%s\n", headline_table.render().c_str());
  std::printf("CSV written to %s/fig7_susceptibility.csv\n",
              sl::bench::out_dir().c_str());
  return 0;
}
