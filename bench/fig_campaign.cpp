// Campaign sweep: composite & adaptive attack campaigns vs. the defense
// suite (beyond the paper's static §IV grid).
//
// For each paper model the sweep deploys the Original variant, calibrates
// the detector suite on the clean deployment, and runs the standard
// red-team campaign set (attacks/campaign.hpp): an evasive intensity ramp,
// a stealth-then-burst composite and a cross-block disjoint composite ramp.
// Prints one table per model (per-campaign/per-detector evasion rate and
// detection latency, worst phase accuracy drop) and writes two CSVs: the
// per-phase accuracies and the raw per-(phase, check, detector) scores.
//
// Runs on the shared sweep infrastructure: phases fan out over
// SAFELIGHT_THREADS workers and per-cell scores persist in the zoo
// directory, so interrupted sweeps resume and re-runs are instant.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/campaign_eval.hpp"
#include "core/report.hpp"

namespace sl = safelight;

namespace {

std::string latency_cell(const sl::core::CampaignResult& result,
                         const std::string& detector) {
  const std::size_t latency = result.detection_latency_checks(detector);
  return latency == 0 ? "-" : std::to_string(latency) + " checks";
}

}  // namespace

int main() {
  const sl::Scale scale = sl::bench::bench_scale();
  sl::bench::banner("Campaign sweep: adaptive attacks vs. the defense suite (" +
                    sl::to_string(scale) + " scale)");

  sl::core::ModelZoo zoo;
  sl::CsvWriter phase_csv(
      sl::bench::out_dir() + "/fig_campaign_phases.csv",
      {"model", "campaign", "phase", "name", "active", "checks", "accuracy",
       "baseline", "drop"});
  sl::CsvWriter cell_csv(sl::bench::out_dir() + "/fig_campaign.csv",
                         {"model", "campaign", "phase", "check", "detector",
                          "score", "flagged"});

  const auto campaigns = sl::attack::standard_campaigns();
  for (sl::nn::ModelId id : sl::bench::paper_models()) {
    const auto setup = sl::core::experiment_setup(id, scale);
    sl::core::CampaignOptions options;
    options.cache_dir = zoo.directory();

    std::printf("\n--- %s (%s on %s) ---\n", sl::nn::to_string(id).c_str(),
                sl::to_string(scale).c_str(), setup.dataset_family.c_str());
    std::fflush(stdout);
    const sl::bench::Stopwatch watch;
    const sl::core::CampaignSweepReport report = sl::core::run_campaign_sweep(
        setup, zoo, sl::core::variant_by_name("Original"), campaigns,
        options);
    std::size_t phase_count = 0;
    for (const auto& c : report.campaigns) phase_count += c.phases.size();
    sl::bench::report_timing(phase_count, watch.seconds());

    sl::core::TextTable table({"campaign", "detector", "evasion rate",
                               "latency", "worst drop"});
    for (const auto& result : report.campaigns) {
      double worst_drop = 0.0;
      bool has_active = false;
      for (std::size_t pi = 0; pi < result.phases.size(); ++pi) {
        worst_drop = std::max(worst_drop, result.accuracy_drop(pi));
        has_active = has_active || result.phases[pi].active;
      }
      for (const std::string& detector : result.detectors) {
        // A dormant-only campaign (pure false-positive measurement) has no
        // active phase to evade.
        table.add_row({result.campaign, detector,
                       has_active ? sl::core::pct(result.evasion_rate(detector))
                                  : "-",
                       latency_cell(result, detector),
                       sl::core::pct(worst_drop)});
      }
    }
    std::printf("%s", table.render().c_str());

    for (const auto& result : report.campaigns) {
      for (std::size_t pi = 0; pi < result.phases.size(); ++pi) {
        const auto& phase = result.phases[pi];
        phase_csv.row({sl::nn::to_string(id), result.campaign,
                       std::to_string(pi), phase.name,
                       phase.active ? "1" : "0", std::to_string(phase.checks),
                       sl::fmt_double(phase.accuracy, 4),
                       sl::fmt_double(result.baseline_accuracy, 4),
                       sl::fmt_double(result.accuracy_drop(pi), 4)});
      }
      for (const auto& cell : result.cells) {
        cell_csv.row({sl::nn::to_string(id), result.campaign,
                      std::to_string(cell.phase), std::to_string(cell.check),
                      cell.detector, sl::fmt_double(cell.score, 6),
                      cell.flagged ? "1" : "0"});
      }
    }
  }

  std::printf("\nCSV written to %s/fig_campaign.csv and "
              "%s/fig_campaign_phases.csv\n",
              sl::bench::out_dir().c_str(), sl::bench::out_dir().c_str());
  return 0;
}
