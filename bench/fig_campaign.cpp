// Campaign sweep: composite & adaptive attack campaigns vs. the defense
// suite (per-campaign evasion rates, detection latency, per-phase accuracy
// drops, plus the phase and per-check score CSVs).
//
// Thin wrapper: equivalent to `safelight run campaign` (the unified
// experiment CLI, src/cli/cli.hpp); kept so the historical per-figure
// binary name keeps working. All knobs come from the SAFELIGHT_* env vars.
#include "cli/cli.hpp"

int main() { return safelight::cli::run({"run", "campaign"}); }
