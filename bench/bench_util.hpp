// Shared helpers for the figure/table bench binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/parallel.hpp"
#include "core/report.hpp"
#include "nn/models.hpp"

namespace safelight::bench {

/// Output directory for bench CSVs (created on demand). Resolution and
/// precedence live in common/config.hpp.
inline std::string out_dir() { return config::out_dir(); }

/// Experiment scale for benches: common/config precedence.
inline Scale bench_scale() { return config::scale(); }

/// Seed-count with a per-bench default: common/config precedence.
inline std::size_t seed_count(std::size_t fallback) {
  return config::seed_count(fallback);
}

inline void banner(const std::string& title) { core::banner(title); }

/// The paper's three CNN models, in figure order.
inline std::vector<nn::ModelId> paper_models() { return nn::paper_models(); }

/// Wall-clock stopwatch for sweep timing reports.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One-line sweep timing summary ("N scenarios in S s on W threads").
inline void report_timing(std::size_t scenarios, double seconds) {
  std::printf("[%zu scenario(s) in %.1f s on %zu worker thread(s)]\n",
              scenarios, seconds, worker_count());
  std::fflush(stdout);
}

}  // namespace safelight::bench
