// Shared helpers for the figure/table bench binaries.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/env.hpp"

namespace safelight::bench {

/// Output directory for bench CSVs (created on demand).
inline std::string out_dir() {
  const std::string dir = env_string("SAFELIGHT_OUT", "safelight_out");
  std::filesystem::create_directories(dir);
  return dir;
}

/// Experiment scale for benches: default preset unless overridden.
inline Scale bench_scale() { return env_scale(); }

/// Seed-count override (SAFELIGHT_SEEDS), with a per-bench default.
inline std::size_t seed_count(std::size_t fallback) {
  const auto v = env_int("SAFELIGHT_SEEDS", static_cast<std::int64_t>(fallback));
  return v < 1 ? 1 : static_cast<std::size_t>(v);
}

inline void banner(const std::string& title) {
  std::printf("\n================ %s ================\n", title.c_str());
  std::fflush(stdout);
}

}  // namespace safelight::bench
