// Shared helpers for the figure/table bench binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "nn/models.hpp"

namespace safelight::bench {

/// Output directory for bench CSVs (created on demand).
inline std::string out_dir() {
  const std::string dir = env_string("SAFELIGHT_OUT", "safelight_out");
  std::filesystem::create_directories(dir);
  return dir;
}

/// Experiment scale for benches: default preset unless overridden.
inline Scale bench_scale() { return env_scale(); }

/// Seed-count override (SAFELIGHT_SEEDS), with a per-bench default.
inline std::size_t seed_count(std::size_t fallback) {
  const auto v = env_int("SAFELIGHT_SEEDS", static_cast<std::int64_t>(fallback));
  return v < 1 ? 1 : static_cast<std::size_t>(v);
}

inline void banner(const std::string& title) {
  std::printf("\n================ %s ================\n", title.c_str());
  std::fflush(stdout);
}

/// The paper's three CNN models, in figure order.
inline std::vector<nn::ModelId> paper_models() {
  return {nn::ModelId::kCnn1, nn::ModelId::kResNet18, nn::ModelId::kVgg16v};
}

/// Wall-clock stopwatch for sweep timing reports.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One-line sweep timing summary ("N scenarios in S s on W threads").
inline void report_timing(std::size_t scenarios, double seconds) {
  std::printf("[%zu scenario(s) in %.1f s on %zu worker thread(s)]\n",
              scenarios, seconds, worker_count());
  std::fflush(stdout);
}

}  // namespace safelight::bench
