// Table I reproduction: CNN model parameters.
//
// Prints the paper's Table I rows next to the counts computed from our
// analytic model specs (full scale, no allocation) and the reduced
// experiment-scale instances actually trained on this host.

#include <cstdio>

#include "accel/mapping.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/experiment_scale.hpp"
#include "core/report.hpp"
#include "nn/model_spec.hpp"

namespace sl = safelight;

namespace {

std::string fmt_count(std::size_t n) {
  if (n >= 10'000'000) {
    return sl::fmt_double(static_cast<double>(n) / 1e6, 1) + "M";
  }
  if (n >= 1'000'000) {
    return sl::fmt_double(static_cast<double>(n) / 1e6, 2) + "M";
  }
  if (n >= 1'000) {
    return sl::fmt_double(static_cast<double>(n) / 1e3, 1) + "K";
  }
  return std::to_string(n);
}

struct PaperRow {
  const char* conv_layers;
  const char* conv_params;
  const char* fc_layers;
  const char* fc_params;
  const char* total;
};

}  // namespace

int main() {
  sl::bench::banner("Table I: CNN model parameters");

  const sl::nn::ModelSpec specs[] = {sl::nn::spec_cnn1(),
                                     sl::nn::spec_resnet18(),
                                     sl::nn::spec_vgg16v()};
  const PaperRow paper[] = {
      {"2", "2.6K", "3", "41.6K", "44.2K"},
      {"17", "4.7M", "1", "5.1K", "4.7M"},
      {"6", "3.9M", "3", "119.6M", "123.5M"},
  };

  sl::core::TextTable table({"model", "dataset", "conv layers",
                             "conv params (paper)", "conv params (ours)",
                             "fc layers", "fc params (paper)",
                             "fc params (ours)", "total (paper)",
                             "total (ours)"});
  sl::CsvWriter csv(sl::bench::out_dir() + "/table1_models.csv",
                    {"model", "dataset", "conv_layers", "conv_params",
                     "fc_layers", "fc_params", "total_params"});
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& spec = specs[i];
    table.add_row({spec.name, spec.dataset,
                   std::to_string(spec.conv_layer_count()),
                   paper[i].conv_params, fmt_count(spec.conv_params()),
                   std::to_string(spec.fc_layer_count()),
                   paper[i].fc_params, fmt_count(spec.fc_params()),
                   paper[i].total, fmt_count(spec.total_params())});
    csv.row({spec.name, spec.dataset, std::to_string(spec.conv_layer_count()),
             std::to_string(spec.conv_params()),
             std::to_string(spec.fc_layer_count()),
             std::to_string(spec.fc_params()),
             std::to_string(spec.total_params())});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "notes:\n"
      "  * CNN_1 and VGG16_v match the paper's counts (LeNet-5 layout; VGG\n"
      "    classifier 25088->4096->4096->10 = 119.6M exactly).\n"
      "  * ResNet18 with option-A shortcuts (17 conv layers, FC 5.1K exact)\n"
      "    has 11.0M conv params at width 64; the paper's 4.7M corresponds\n"
      "    to width ~42 (printed below). See EXPERIMENTS.md.\n\n");

  const sl::nn::ModelSpec slim = sl::nn::spec_resnet18(42);
  std::printf("ResNet18 @ width 42: conv %s, fc %s, total %s\n",
              fmt_count(slim.conv_params()).c_str(),
              fmt_count(slim.fc_params()).c_str(),
              fmt_count(slim.total_params()).c_str());

  sl::bench::banner("Experiment-scale instances (this host)");
  sl::core::TextTable reduced({"model", "scale", "image", "params",
                               "conv passes", "fc passes"});
  for (sl::nn::ModelId id : {sl::nn::ModelId::kCnn1,
                             sl::nn::ModelId::kResNet18,
                             sl::nn::ModelId::kVgg16v}) {
    const auto setup = sl::core::experiment_setup(id, sl::bench::bench_scale());
    auto model = sl::nn::make_model(id, setup.model_config);
    sl::accel::WeightStationaryMapping mapping(*model, setup.accelerator);
    reduced.add_row(
        {sl::nn::to_string(id), sl::to_string(setup.scale),
         std::to_string(setup.model_config.image_size),
         fmt_count(model->num_parameters()),
         std::to_string(mapping.passes(sl::accel::BlockKind::kConv)),
         std::to_string(mapping.passes(sl::accel::BlockKind::kFc))});
  }
  std::printf("%s\n", reduced.render().c_str());
  std::printf("CSV written to %s/table1_models.csv\n",
              sl::bench::out_dir().c_str());
  return 0;
}
