// Fig. 9 reproduction: accuracy intervals of the most robust variant vs the
// original model under actuation and hotspot attacks on 1/5/10 % of the
// total MRs (CONV+FC), plus the recovered-accuracy numbers of paper §VI.
//
// Thin wrapper: equivalent to `safelight run robust_compare` (the unified
// experiment CLI, src/cli/cli.hpp); kept so the historical per-figure
// binary name keeps working. All knobs come from the SAFELIGHT_* env vars.
#include "cli/cli.hpp"

int main() { return safelight::cli::run({"run", "robust_compare"}); }
