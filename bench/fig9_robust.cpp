// Fig. 9 reproduction: accuracy intervals of the most robust variant vs the
// original model under actuation and hotspot attacks on 1/5/10 % of the
// total MRs (CONV+FC), plus the recovered-accuracy numbers of paper §VI.

#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/report.hpp"
#include "core/robust_compare.hpp"

namespace sl = safelight;

int main() {
  const sl::Scale scale = sl::bench::bench_scale();
  const std::size_t seeds = sl::bench::seed_count(5);
  sl::bench::banner("Fig. 9: robust vs original models (" +
                    sl::to_string(scale) + " scale, " +
                    std::to_string(seeds) + " placements)");

  sl::core::ModelZoo zoo;
  sl::CsvWriter csv(sl::bench::out_dir() + "/fig9_robust.csv",
                    {"model", "robust_variant", "vector", "fraction",
                     "orig_min", "orig_max", "robust_min", "robust_max",
                     "recovered_worst_case"});

  for (sl::nn::ModelId id : sl::bench::paper_models()) {
    const auto setup = sl::core::experiment_setup(id, scale);
    sl::core::RobustCompareOptions options;
    options.seed_count = seeds;
    options.cache_dir = zoo.directory();
    options.verbose = true;

    std::printf("\n--- %s ---\n", sl::nn::to_string(id).c_str());
    std::fflush(stdout);
    const sl::bench::Stopwatch watch;
    const sl::core::RobustComparisonReport report =
        sl::core::run_robust_compare(setup, zoo, options);
    // The window includes the internal run_mitigation sweep that selects
    // the robust variant (dominant on a cold cache), so no per-scenario
    // count is claimed here.
    std::printf("[comparison + variant selection in %.1f s on %zu worker "
                "thread(s)]\n",
                watch.seconds(), sl::worker_count());
    std::fflush(stdout);

    std::printf("robust variant: %s | baselines: original %s, robust %s\n\n",
                report.robust_variant_name.c_str(),
                sl::core::pct(report.original_baseline).c_str(),
                sl::core::pct(report.robust_baseline).c_str());

    sl::core::TextTable table({"attack", "fraction", "original [min..max]",
                               "robust [min..max]", "orig worst drop",
                               "recovered"});
    for (const auto& cell : report.cells) {
      table.add_row(
          {sl::attack::to_string(cell.vector), sl::core::pct(cell.fraction),
           sl::core::pct(cell.original.min) + ".." +
               sl::core::pct(cell.original.max),
           sl::core::pct(cell.robust.min) + ".." +
               sl::core::pct(cell.robust.max),
           sl::core::pct(cell.original_drop(report.original_baseline)),
           sl::core::signed_pct(cell.recovered())});
      csv.row({sl::nn::to_string(id), report.robust_variant_name,
               sl::attack::to_string(cell.vector),
               sl::fmt_double(cell.fraction, 2),
               sl::fmt_double(cell.original.min, 4),
               sl::fmt_double(cell.original.max, 4),
               sl::fmt_double(cell.robust.min, 4),
               sl::fmt_double(cell.robust.max, 4),
               sl::fmt_double(cell.recovered(), 4)});
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf(
      "\npaper reference: recoveries up to 5.4%% / 21.2%% / 30.7%% at 10%%,\n"
      "2.09%% / 7.07%% / 35.54%% at 5%%, 1.1%% / 6.64%% / 9.07%% at 1%%\n"
      "CSV written to %s/fig9_robust.csv\n",
      sl::bench::out_dir().c_str());
  return 0;
}
