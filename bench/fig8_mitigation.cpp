// Fig. 8 reproduction: box-whisker accuracy of the mitigation variants
// (Original, L2_reg, l2+n1..l2+n9) across all attack scenarios for each of
// the three CNN models. Also reports the most robust configuration per
// model (the paper found l2+n3 / l2+n5 / l2+n2).

#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/mitigation.hpp"
#include "core/report.hpp"

namespace sl = safelight;

int main() {
  const sl::Scale scale = sl::bench::bench_scale();
  const std::size_t seeds = sl::bench::seed_count(3);
  sl::bench::banner("Fig. 8: mitigation variants under attack (" +
                    sl::to_string(scale) + " scale, " +
                    std::to_string(seeds) + " placements per cell)");

  sl::core::ModelZoo zoo;
  sl::CsvWriter csv(sl::bench::out_dir() + "/fig8_mitigation.csv",
                    {"model", "variant", "baseline", "min", "q1", "median",
                     "q3", "max", "mean"});

  for (sl::nn::ModelId id : sl::bench::paper_models()) {
    const auto setup = sl::core::experiment_setup(id, scale);
    sl::core::MitigationOptions options;
    options.seed_count = seeds;
    options.cache_dir = zoo.directory();
    options.verbose = true;

    std::printf("\n--- %s ---\n", sl::nn::to_string(id).c_str());
    std::fflush(stdout);
    const sl::bench::Stopwatch watch;
    const sl::core::MitigationReport report =
        sl::core::run_mitigation(setup, zoo, options);
    sl::bench::report_timing(
        report.outcomes.size() * sl::attack::paper_scenario_grid(seeds).size(),
        watch.seconds());

    sl::core::TextTable table({"variant", "clean acc", "min", "q1", "median",
                               "q3", "max"});
    for (const auto& outcome : report.outcomes) {
      table.add_row({outcome.variant.name,
                     sl::core::pct(outcome.baseline_accuracy),
                     sl::core::pct(outcome.under_attack.min),
                     sl::core::pct(outcome.under_attack.q1),
                     sl::core::pct(outcome.under_attack.median),
                     sl::core::pct(outcome.under_attack.q3),
                     sl::core::pct(outcome.under_attack.max)});
      csv.row({sl::nn::to_string(id), outcome.variant.name,
               sl::fmt_double(outcome.baseline_accuracy, 4),
               sl::fmt_double(outcome.under_attack.min, 4),
               sl::fmt_double(outcome.under_attack.q1, 4),
               sl::fmt_double(outcome.under_attack.median, 4),
               sl::fmt_double(outcome.under_attack.q3, 4),
               sl::fmt_double(outcome.under_attack.max, 4),
               sl::fmt_double(outcome.under_attack.mean, 4)});
    }
    std::printf("%s", table.render().c_str());
    const auto& best = report.best_robust();
    std::printf(
        "most robust variant: %s (median %s under attack; Original median "
        "%s)\n",
        best.variant.name.c_str(),
        sl::core::pct(best.under_attack.median).c_str(),
        sl::core::pct(report.outcome("Original").under_attack.median)
            .c_str());
  }
  std::printf("\nCSV written to %s/fig8_mitigation.csv\n",
              sl::bench::out_dir().c_str());
  return 0;
}
