// Fig. 8 reproduction: box-whisker accuracy of the mitigation variants
// (Original, L2_reg, l2+n1..l2+n9) across all attack scenarios for each of
// the three CNN models, plus the most robust configuration per model.
//
// Thin wrapper: equivalent to `safelight run mitigation` (the unified
// experiment CLI, src/cli/cli.hpp); kept so the historical per-figure
// binary name keeps working. All knobs come from the SAFELIGHT_* env vars.
#include "cli/cli.hpp"

int main() { return safelight::cli::run({"run", "mitigation"}); }
