// Detection-evaluation sweep: ROC quality of the runtime defense subsystem
// (per-detector FPR/TPR/AUC tables plus the raw score and ROC-curve CSVs).
//
// Thin wrapper: equivalent to `safelight run detection` (the unified
// experiment CLI, src/cli/cli.hpp); kept so the historical per-figure
// binary name keeps working. All knobs come from the SAFELIGHT_* env vars.
#include "cli/cli.hpp"

int main() { return safelight::cli::run({"run", "detection"}); }
