// Detection-evaluation sweep: ROC quality of the runtime defense subsystem.
//
// For each paper model the sweep deploys the Original variant, calibrates
// the detector suite (canary probes, read-out range monitor, thermal
// sentinels) on the clean deployment, and checks every detector against
// clean runs plus the full attack scenario grid. Prints one table per
// model (per-detector FPR at the default threshold, per-intensity TPR,
// per-vector AUC, detection latency) and writes two CSVs: the raw
// per-(run, detector) scores and the full ROC curves.
//
// Runs on the shared sweep infrastructure: checks fan out over
// SAFELIGHT_THREADS workers and per-run scores persist in the zoo
// directory, so interrupted sweeps resume and re-runs are instant.

#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/detection.hpp"
#include "core/report.hpp"

namespace sl = safelight;

namespace {

/// TPR over the attack runs at exactly intensity `fraction`.
double tpr_at(const sl::core::DetectionReport& report,
              const std::string& detector, double fraction) {
  std::size_t total = 0;
  std::size_t flagged = 0;
  for (const auto& row : report.rows) {
    if (row.clean || row.detector != detector) continue;
    if (row.scenario.fraction != fraction) continue;
    ++total;
    if (row.flagged) ++flagged;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(flagged) / static_cast<double>(total);
}

std::string latency_cell(const sl::core::DetectionReport& report,
                         const std::string& detector) {
  try {
    const sl::BoxStats latency = report.detection_latency(detector);
    return sl::fmt_double(latency.median, 1) + " probes";
  } catch (const std::invalid_argument&) {
    return "-";  // the detector flagged no attack run
  }
}

}  // namespace

int main() {
  const sl::Scale scale = sl::bench::bench_scale();
  const std::size_t seeds = sl::bench::seed_count(3);
  sl::bench::banner("Detection sweep: runtime defense ROC analysis (" +
                    sl::to_string(scale) + " scale, " +
                    std::to_string(seeds) + " placements)");

  sl::core::ModelZoo zoo;
  sl::CsvWriter csv(sl::bench::out_dir() + "/fig_detection.csv",
                    {"model", "run", "clean", "vector", "target", "fraction",
                     "seed", "detector", "score", "flagged", "probes",
                     "first_flag_probe"});
  sl::CsvWriter roc_csv(sl::bench::out_dir() + "/fig_detection_roc.csv",
                        {"model", "detector", "threshold", "tpr", "fpr"});

  for (sl::nn::ModelId id : sl::bench::paper_models()) {
    const auto setup = sl::core::experiment_setup(id, scale);
    sl::core::DetectionOptions options;
    options.seed_count = seeds;
    options.cache_dir = zoo.directory();

    std::printf("\n--- %s (%s on %s) ---\n", sl::nn::to_string(id).c_str(),
                sl::to_string(scale).c_str(), setup.dataset_family.c_str());
    std::fflush(stdout);
    const sl::bench::Stopwatch watch;
    const sl::core::DetectionReport report = sl::core::run_detection_sweep(
        setup, zoo, sl::core::variant_by_name("Original"), options);
    sl::bench::report_timing(report.rows.size() / report.detectors.size(),
                             watch.seconds());

    sl::core::TextTable table({"detector", "FPR", "TPR@1%", "TPR@5%",
                               "TPR@10%", "AUC actuation", "AUC hotspot",
                               "AUC all", "median latency"});
    for (const std::string& detector : report.detectors) {
      table.add_row(
          {detector, sl::core::pct(report.false_positive_rate(detector)),
           sl::core::pct(tpr_at(report, detector, 0.01)),
           sl::core::pct(tpr_at(report, detector, 0.05)),
           sl::core::pct(tpr_at(report, detector, 0.10)),
           sl::fmt_double(
               report.auc(detector, sl::attack::AttackVector::kActuation), 3),
           sl::fmt_double(
               report.auc(detector, sl::attack::AttackVector::kHotspot), 3),
           sl::fmt_double(report.auc(detector), 3),
           latency_cell(report, detector)});
    }
    std::printf("%s", table.render().c_str());

    for (const auto& row : report.rows) {
      csv.row({sl::nn::to_string(id), row.run_id,
               row.clean ? "1" : "0",
               row.clean ? "" : sl::attack::to_string(row.scenario.vector),
               row.clean ? "" : sl::attack::to_string(row.scenario.target),
               row.clean ? "0" : sl::fmt_double(row.scenario.fraction, 2),
               row.clean ? "" : std::to_string(row.scenario.seed),
               row.detector, sl::fmt_double(row.score, 6),
               row.flagged ? "1" : "0", std::to_string(row.probes),
               std::to_string(row.first_flag_probe)});
    }
    for (const std::string& detector : report.detectors) {
      const sl::core::RocCurve curve = report.roc(detector);
      for (const auto& point : curve.points) {
        roc_csv.row({sl::nn::to_string(id), detector,
                     sl::fmt_double(point.threshold, 6),
                     sl::fmt_double(point.tpr, 4),
                     sl::fmt_double(point.fpr, 4)});
      }
    }
  }

  std::printf("\nCSV written to %s/fig_detection.csv and "
              "%s/fig_detection_roc.csv\n",
              sl::bench::out_dir().c_str(), sl::bench::out_dir().c_str());
  return 0;
}
