// Accelerator performance table (CrossLight-style efficiency accounting).
//
// Not a numbered figure in SafeLight, but the substrate the paper builds on
// is motivated by performance-per-watt; this bench reports per-inference
// MACs, latency and the energy breakdown for the three paper models on the
// paper-scale accelerator, and shows that the software mitigations carry
// zero hardware energy overhead (identical accelerator, identical mapping).

#include <cstdio>

#include "accel/energy.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/report.hpp"
#include "nn/models.hpp"

namespace sl = safelight;

namespace {

struct ModelCase {
  sl::nn::ModelId id;
  sl::nn::ModelConfig config;
  sl::nn::Shape input;
};

}  // namespace

int main() {
  sl::bench::banner("Accelerator energy/latency accounting (paper-scale)");

  // Full-scale model shapes; VGG16_v uses a reduced classifier width to
  // avoid allocating 119.6M parameters just for MAC counting (the conv MACs
  // dominate and the FC MACs are computed from layer dims regardless).
  sl::nn::ModelConfig cnn1_config;
  sl::nn::ModelConfig resnet_config;
  resnet_config.in_channels = 3;
  resnet_config.image_size = 32;
  resnet_config.width = 64;
  sl::nn::ModelConfig vgg_config;
  vgg_config.in_channels = 3;
  vgg_config.image_size = 64;  // reduced from 224 for host memory
  vgg_config.width = 64;
  vgg_config.fc_dim = 512;

  const ModelCase cases[] = {
      {sl::nn::ModelId::kCnn1, cnn1_config, {1, 1, 28, 28}},
      {sl::nn::ModelId::kResNet18, resnet_config, {1, 3, 32, 32}},
      {sl::nn::ModelId::kVgg16v, vgg_config, {1, 3, 64, 64}},
  };

  const auto accel = sl::accel::AcceleratorConfig::crosslight();
  sl::core::TextTable table({"model", "input", "MACs (M)", "latency (us)",
                             "laser (uJ)", "tuning (uJ)", "converters (uJ)",
                             "total (uJ)", "MACs/nJ"});
  sl::CsvWriter csv(sl::bench::out_dir() + "/energy_table.csv",
                    {"model", "macs", "latency_us", "laser_uj", "tuning_uj",
                     "converter_uj", "detector_uj", "total_uj"});

  for (const auto& c : cases) {
    auto model = sl::nn::make_model(c.id, c.config);
    const sl::accel::MacCounts macs = sl::accel::count_macs(*model, c.input);
    const sl::accel::EnergyReport report =
        sl::accel::estimate_inference(macs, accel);
    table.add_row(
        {sl::nn::to_string(c.id), sl::nn::shape_to_string(c.input),
         sl::fmt_double(static_cast<double>(macs.total()) / 1e6, 2),
         sl::fmt_double(report.latency_us, 2),
         sl::fmt_double(report.laser_uj, 3),
         sl::fmt_double(report.tuning_uj, 3),
         sl::fmt_double(report.converter_uj, 3),
         sl::fmt_double(report.total_uj(), 3),
         sl::fmt_double(report.macs_per_nj(macs.total()), 1)});
    csv.row({sl::nn::to_string(c.id), std::to_string(macs.total()),
             sl::fmt_double(report.latency_us, 4),
             sl::fmt_double(report.laser_uj, 4),
             sl::fmt_double(report.tuning_uj, 4),
             sl::fmt_double(report.converter_uj, 4),
             sl::fmt_double(report.detector_uj, 4),
             sl::fmt_double(report.total_uj(), 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "software mitigations (L2, noise-aware training) change only the\n"
      "trained weights: accelerator energy/latency above is identical for\n"
      "Original and robust variants, unlike hardware countermeasures.\n"
      "CSV written to %s/energy_table.csv\n",
      sl::bench::out_dir().c_str());
  return 0;
}
