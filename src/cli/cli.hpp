// The `safelight` command-line interface.
//
// One binary fronts every registered experiment (core/experiment.hpp):
//
//   safelight list                     registered experiments
//   safelight run <experiment> [...]   one experiment, paper models
//   safelight run-all [...]            every experiment, one process,
//                                      shared zoo/caches
//   safelight worker [...]             internal: distributed sweep worker
//                                      (spawned by 'run --workers N')
//
// Flags (CLI flag > SAFELIGHT_* env > default; see common/config.hpp):
//   --model <cnn1|resnet18|vgg16v>   restrict to one model (default: all 3)
//   --scale <tiny|default|full>      experiment scale
//   --seeds <N>                      placements per grid cell
//   --base-seed <N>                  base placement seed
//   --out <dir>                      CSV/JSON output directory
//   --zoo <dir>                      trained-model + result-store cache
//   --threads <N>                    worker threads
//   --json                           also write per-(experiment, model)
//                                    JSON documents
//   --verbose                        per-scenario progress output
//   --workers <N>                    shard sweeps across N worker
//                                    subprocesses (0 = in-process)
//   --heartbeat-timeout <s>          worker silence before kill + retry
//   --max-task-retries <N>           failures before a task is quarantined
//   --chaos <p>                      arm fault injection inside workers
//                                    with per-write crash probability p
//   --fault-mode <m>                 fault injection: none | independent |
//                                    run_length | uniform_over_run
//   --fault-point <name>             restrict injection to one named point
//   --fault-n <N>                    run length for run_length /
//                                    uniform_over_run
//
// The per-figure bench binaries (bench/fig7_susceptibility, ...) are thin
// wrappers over run(); the CSVs they emit are byte-identical to a
// `safelight run` of the same experiment.
#pragma once

#include <string>
#include <vector>

namespace safelight::cli {

/// Runs the CLI on `args` (argv without the program name). Returns the
/// process exit code: 0 on success, 2 on a usage error, 1 on a runtime
/// failure, 3 when a distributed sweep completed minus quarantined tasks,
/// 130 when the run was cancelled (SIGINT/SIGTERM or request_cancel).
/// A fault-armed run that pulls the plug _Exits with
/// fault::kPlugPulledExitCode (42) instead of returning. Installs config
/// overrides from flags; errors go to stderr. SIGINT and SIGTERM request
/// cooperative cancellation for the duration of the call (handlers
/// restored on return).
int run(const std::vector<std::string>& args);

/// Test seam: flags the next (or current) run() for cooperative
/// cancellation, exactly as SIGINT would. run() clears the flag on return.
void request_cancel();

}  // namespace safelight::cli
