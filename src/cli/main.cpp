// Entry point of the `safelight` binary (see cli/cli.hpp for the command
// surface). Kept out of the library so tests and the per-figure bench
// wrappers can link cli::run without a second main.
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  return safelight::cli::run(std::vector<std::string>(argv + 1, argv + argc));
}
