#include "cli/cli.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "dist/coordinator.hpp"
#include "dist/plan.hpp"
#include "dist/worker.hpp"
#include "nn/backend.hpp"
#include "serve/server.hpp"

namespace safelight::cli {

namespace {

constexpr const char* kUsage =
    "usage: safelight <command> [flags]\n"
    "\n"
    "commands:\n"
    "  list [--json]        registered experiments (--json: machine-readable\n"
    "                       listing with the accepted spec fields)\n"
    "  run <experiment>     run one experiment over the paper models\n"
    "  run-all              run every registered experiment in one process\n"
    "  serve                long-running multi-tenant daemon: submit\n"
    "                       ExperimentSpec JSON over HTTP, stream NDJSON\n"
    "                       progress (docs/architecture.md \"Serving\")\n"
    "  worker               internal: distributed sweep worker (spawned by\n"
    "                       'run --workers N', speaks NDJSON on stdin/stdout)\n"
    "  help                 this text\n"
    "\n"
    "flags (precedence: flag > SAFELIGHT_* env > default):\n"
    "  --model <name>       cnn1 | resnet18 | vgg16v (default: all three)\n"
    "  --scale <name>       tiny | default | full\n"
    "  --seeds <N>          placements per grid cell\n"
    "  --base-seed <N>      base placement seed\n"
    "  --out <dir>          CSV/JSON output directory\n"
    "  --zoo <dir>          trained-model and result-store cache directory\n"
    "  --threads <N>        worker threads\n"
    "  --backend <name>     gemm compute backend: auto (default; best\n"
    "                       variant this CPU supports) | scalar | avx2 |\n"
    "                       avx512 — results are bitwise-identical either\n"
    "                       way, only speed changes\n"
    "  --json               also write per-(experiment, model) JSON\n"
    "  --verbose            per-scenario progress output\n"
    "\n"
    "serving (safelight serve):\n"
    "  --port <N>           TCP port on 127.0.0.1 (0 = ephemeral; the bound\n"
    "                       port prints on startup)\n"
    "  --slots <N>          concurrent experiment slots\n"
    "  --queue-depth <N>    jobs allowed to wait beyond the running ones\n"
    "                       before new submissions get 429\n"
    "\n"
    "distributed execution (docs/architecture.md):\n"
    "  --workers <N>        shard sweeps across N worker subprocesses\n"
    "                       (0 = in-process, the default)\n"
    "  --heartbeat-timeout <s>   worker silence before a kill + retry\n"
    "  --max-task-retries <N>    task failures tolerated before quarantine\n"
    "  --chaos <p>          arm fault injection inside the workers with\n"
    "                       per-write crash probability p (chaos testing)\n"
    "\n"
    "observability (docs/architecture.md \"Observability\"):\n"
    "  --trace <file>       write a merged Chrome trace-event JSON of the\n"
    "                       run (load in Perfetto / chrome://tracing);\n"
    "                       with --workers N the worker spans merge in\n"
    "  --metrics <file>     write the counters/gauges/histograms registry\n"
    "                       as JSON; a summary table prints to stderr\n"
    "\n"
    "fault injection (crash-consistency testing, docs/testing.md):\n"
    "  --fault-mode <m>     none | independent | run_length | uniform\n"
    "  --fault-point <p>    only pull the plug at this named point\n"
    "  --fault-n <N>        crash on the N-th matched hit (run_length),\n"
    "                       or draw the hit uniformly from [1, N] (uniform)\n"
    "\n"
    "exit codes: 0 ok, 1 runtime error, 2 usage error, 3 sweep incomplete\n"
    "(quarantined tasks), 42 injected crash, 130 cancelled (SIGINT/SIGTERM)\n";

struct CliOptions {
  std::vector<nn::ModelId> models;  // resolved; paper models when no --model
  bool json = false;
  bool verbose = false;
  double chaos = 0.0;  // worker-side per-write crash probability
};

using core::banner;

/// Cooperative-cancellation flag shared with the experiment RunContext.
/// SIGINT (and request_cancel(), the test seam) sets it; sweeps then abort
/// between coarse work units via ExperimentCancelled — completed scenarios
/// are already flushed to the result stores, so the next identical run
/// resumes instead of restarting.
std::atomic<bool> g_cancel_requested{false};

extern "C" void handle_cancel_signal(int) {
  g_cancel_requested.store(true, std::memory_order_relaxed);
}

/// Installs the SIGINT and SIGTERM handlers for the duration of one
/// cli::run and always leaves the flag cleared for the next invocation
/// (embedders and tests call run() repeatedly in one process). SIGTERM —
/// what the coordinator, a supervisor or `kill` sends — gets the same
/// graceful treatment as Ctrl-C: finish the current scenario, flush the
/// stores, exit 130 with the resume hint.
class ScopedCancelScope {
 public:
  ScopedCancelScope() {
    previous_int_ = std::signal(SIGINT, handle_cancel_signal);
    previous_term_ = std::signal(SIGTERM, handle_cancel_signal);
  }
  ~ScopedCancelScope() {
    if (previous_int_ != SIG_ERR) std::signal(SIGINT, previous_int_);
    if (previous_term_ != SIG_ERR) std::signal(SIGTERM, previous_term_);
    g_cancel_requested.store(false, std::memory_order_relaxed);
  }

 private:
  void (*previous_int_)(int) = SIG_ERR;
  void (*previous_term_)(int) = SIG_ERR;
};

/// Strict decimal parse: digits only (std::stoull would wrap "-1" to a
/// huge positive and accept trailing garbage).
std::uint64_t nonnegative_int(const std::string& flag,
                              const std::string& value) {
  const bool digits_only =
      !value.empty() &&
      value.find_first_not_of("0123456789") == std::string::npos;
  if (!digits_only || value.size() > 19) {
    fail_argument("flag " + flag + " needs a non-negative integer (got '" +
                  value + "')");
  }
  return std::stoull(value);
}

std::size_t positive_int(const std::string& flag, const std::string& value) {
  const std::uint64_t parsed = nonnegative_int(flag, value);
  require(parsed >= 1, "flag " + flag + " must be >= 1 (got " + value + ")");
  return static_cast<std::size_t>(parsed);
}

/// Strict full-string parse of a positive double (no trailing garbage).
double positive_double(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  require(end != value.c_str() && *end == '\0' && parsed > 0.0,
          "flag " + flag + " needs a positive number (got '" + value + "')");
  return parsed;
}

/// Parses flags into (config overrides, CLI options); consumes all args
/// after the command word. Throws std::invalid_argument on unknown flags.
CliOptions parse_flags(const std::vector<std::string>& args,
                       std::size_t begin) {
  CliOptions options;
  config::Overrides overrides;
  for (std::size_t i = begin; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto value = [&]() -> const std::string& {
      require(i + 1 < args.size(), "flag " + flag + " needs a value");
      return args[++i];
    };
    if (flag == "--model") {
      // Deduplicated, order-preserving: a repeated --model would silently
      // double every CSV row of that model.
      const nn::ModelId model = nn::model_id_from_string(value());
      if (std::find(options.models.begin(), options.models.end(), model) ==
          options.models.end()) {
        options.models.push_back(model);
      }
    } else if (flag == "--scale") {
      overrides.scale = config::parse_scale(value());
    } else if (flag == "--seeds") {
      overrides.seed_count = positive_int(flag, value());
    } else if (flag == "--base-seed") {
      overrides.base_seed = nonnegative_int(flag, value());  // 0 is legal
    } else if (flag == "--out") {
      overrides.out_dir = value();
    } else if (flag == "--zoo") {
      overrides.zoo_dir = value();
    } else if (flag == "--threads") {
      overrides.threads = positive_int(flag, value());
    } else if (flag == "--backend") {
      const std::string& name = value();
      nn::backend::resolve(name);  // reject typos/unsupported at the boundary
      overrides.backend = name;
    } else if (flag == "--port") {
      const std::uint64_t port = nonnegative_int(flag, value());
      require(port <= 65535,
              "flag --port must be in [0, 65535] (got " +
                  std::to_string(port) + "); 0 binds an ephemeral port");
      overrides.serve_port = static_cast<std::uint16_t>(port);
    } else if (flag == "--slots") {
      overrides.serve_slots = positive_int(flag, value());
    } else if (flag == "--queue-depth") {
      overrides.serve_queue_depth =
          static_cast<std::size_t>(nonnegative_int(flag, value()));
    } else if (flag == "--workers") {
      overrides.workers =
          static_cast<std::size_t>(nonnegative_int(flag, value()));
    } else if (flag == "--heartbeat-timeout") {
      overrides.heartbeat_timeout_s = positive_double(flag, value());
    } else if (flag == "--max-task-retries") {
      overrides.max_task_retries = positive_int(flag, value());
    } else if (flag == "--chaos") {
      const std::string& raw = value();
      char* end = nullptr;
      const double parsed = std::strtod(raw.c_str(), &end);
      require(end != raw.c_str() && *end == '\0' && parsed >= 0.0 &&
                  parsed < 1.0,
              "flag --chaos needs a probability in [0, 1) (got '" + raw +
                  "')");
      options.chaos = parsed;
    } else if (flag == "--fault-mode") {
      const std::string& mode = value();
      fault::parse_mode(mode);  // reject typos at the flag boundary
      overrides.fault_mode = mode;
    } else if (flag == "--fault-point") {
      overrides.fault_point = value();
    } else if (flag == "--fault-n") {
      overrides.fault_n = positive_int(flag, value());
    } else if (flag == "--trace") {
      overrides.trace_path = value();
    } else if (flag == "--metrics") {
      overrides.metrics_path = value();
    } else if (flag == "--json") {
      options.json = true;
    } else if (flag == "--verbose") {
      options.verbose = true;
    } else {
      fail_argument("unknown flag '" + flag + "' (see 'safelight help')");
    }
  }
  if (options.models.empty()) options.models = nn::paper_models();
  config::set_overrides(overrides);
  // Arm (or disarm) fault injection from the now-complete flag > env >
  // default resolution; every durable write below this point is a ptp site.
  fault::init_from_config();
  // Same precedence for the observability layer: every span/metric site
  // below this point is live (or a single relaxed load when disarmed).
  trace::init_from_config();
  metrics::init_from_config();
  // The cached backend resolution may predate the overrides just installed
  // (run() is invoked repeatedly in one process by tests and embedders);
  // re-resolve, then report the choice through the armed telemetry.
  nn::backend::invalidate_cache();
  nn::backend::announce(options.verbose);
  return options;
}

// ---------------------------------------------------------------------------
// Per-experiment console rendering (the tables the per-figure bench
// binaries used to assemble inline).
// ---------------------------------------------------------------------------

void render(const core::SusceptibilityReport& report) {
  std::printf("baseline accuracy: %s\n\n",
              core::pct(report.baseline_accuracy).c_str());
  core::TextTable table({"attack", "target", "fraction", "min", "median",
                         "max", "mean", "worst drop"});
  for (const auto& group : report.groups) {
    table.add_row({attack::to_string(group.vector),
                   attack::to_string(group.target), core::pct(group.fraction),
                   core::pct(group.accuracy.min),
                   core::pct(group.accuracy.median),
                   core::pct(group.accuracy.max),
                   core::pct(group.accuracy.mean),
                   core::pct(report.baseline_accuracy - group.accuracy.min)});
  }
  std::printf("%s", table.render().c_str());
}

void render(const core::MitigationReport& report) {
  core::TextTable table(
      {"variant", "clean acc", "min", "q1", "median", "q3", "max"});
  for (const auto& outcome : report.outcomes) {
    table.add_row({outcome.variant.name,
                   core::pct(outcome.baseline_accuracy),
                   core::pct(outcome.under_attack.min),
                   core::pct(outcome.under_attack.q1),
                   core::pct(outcome.under_attack.median),
                   core::pct(outcome.under_attack.q3),
                   core::pct(outcome.under_attack.max)});
  }
  std::printf("%s", table.render().c_str());
  const auto& best = report.best_robust();
  std::printf(
      "most robust variant: %s (median %s under attack; Original median "
      "%s)\n",
      best.variant.name.c_str(), core::pct(best.under_attack.median).c_str(),
      core::pct(report.outcome("Original").under_attack.median).c_str());
}

void render(const core::RobustComparisonReport& report) {
  std::printf("robust variant: %s | baselines: original %s, robust %s\n\n",
              report.robust_variant_name.c_str(),
              core::pct(report.original_baseline).c_str(),
              core::pct(report.robust_baseline).c_str());
  core::TextTable table({"attack", "fraction", "original [min..max]",
                         "robust [min..max]", "orig worst drop", "recovered"});
  for (const auto& cell : report.cells) {
    table.add_row(
        {attack::to_string(cell.vector), core::pct(cell.fraction),
         core::pct(cell.original.min) + ".." + core::pct(cell.original.max),
         core::pct(cell.robust.min) + ".." + core::pct(cell.robust.max),
         core::pct(cell.original_drop(report.original_baseline)),
         core::signed_pct(cell.recovered())});
  }
  std::printf("%s", table.render().c_str());
}

/// TPR over the attack runs at exactly intensity `fraction`.
double tpr_at(const core::DetectionReport& report, const std::string& detector,
              double fraction) {
  std::size_t total = 0;
  std::size_t flagged = 0;
  for (const auto& row : report.rows) {
    if (row.clean || row.detector != detector) continue;
    if (row.scenario.fraction != fraction) continue;
    ++total;
    if (row.flagged) ++flagged;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(flagged) / static_cast<double>(total);
}

std::string latency_cell(const core::DetectionReport& report,
                         const std::string& detector) {
  try {
    const BoxStats latency = report.detection_latency(detector);
    return fmt_double(latency.median, 1) + " probes";
  } catch (const std::invalid_argument&) {
    return "-";  // the detector flagged no attack run
  }
}

void render(const core::DetectionReport& report) {
  core::TextTable table({"detector", "FPR", "TPR@1%", "TPR@5%", "TPR@10%",
                         "AUC actuation", "AUC hotspot", "AUC all",
                         "median latency"});
  for (const std::string& detector : report.detectors) {
    table.add_row(
        {detector, core::pct(report.false_positive_rate(detector)),
         core::pct(tpr_at(report, detector, 0.01)),
         core::pct(tpr_at(report, detector, 0.05)),
         core::pct(tpr_at(report, detector, 0.10)),
         fmt_double(report.auc(detector, attack::AttackVector::kActuation), 3),
         fmt_double(report.auc(detector, attack::AttackVector::kHotspot), 3),
         fmt_double(report.auc(detector), 3), latency_cell(report, detector)});
  }
  std::printf("%s", table.render().c_str());
}

void render(const core::CampaignSweepReport& report) {
  core::TextTable table(
      {"campaign", "detector", "evasion rate", "latency", "worst drop"});
  for (const auto& result : report.campaigns) {
    double worst_drop = 0.0;
    bool has_active = false;
    for (std::size_t pi = 0; pi < result.phases.size(); ++pi) {
      worst_drop = std::max(worst_drop, result.accuracy_drop(pi));
      has_active = has_active || result.phases[pi].active;
    }
    for (const std::string& detector : result.detectors) {
      const std::size_t latency = result.detection_latency_checks(detector);
      // A dormant-only campaign (pure false-positive measurement) has no
      // active phase to evade.
      table.add_row(
          {result.campaign, detector,
           has_active ? core::pct(result.evasion_rate(detector)) : "-",
           latency == 0 ? "-" : std::to_string(latency) + " checks",
           core::pct(worst_drop)});
    }
  }
  std::printf("%s", table.render().c_str());
}

/// Per-model timing line. robust_compare gets its own phrasing: its window
/// includes the internal 11-variant mitigation sweep that selects the
/// robust variant (dominant on a cold cache), so no per-scenario count is
/// claimed there.
void print_timing(const core::ExperimentResult& result) {
  if (std::holds_alternative<core::RobustComparisonReport>(result.payload)) {
    std::printf(
        "[comparison + variant selection in %.1f s on %zu worker "
        "thread(s)]\n",
        result.wall_seconds, worker_count());
    return;
  }
  std::size_t units = 0;
  if (const auto* s =
          std::get_if<core::SusceptibilityReport>(&result.payload)) {
    units = s->rows.size();
  } else if (const auto* m =
                 std::get_if<core::MitigationReport>(&result.payload)) {
    units = m->outcomes.size() *
            attack::paper_scenario_grid(result.spec.seed_count,
                                        result.spec.base_seed)
                .size();
  } else if (const auto* d =
                 std::get_if<core::DetectionReport>(&result.payload)) {
    units = d->detectors.empty() ? 0 : d->rows.size() / d->detectors.size();
  } else {
    const auto& campaign =
        std::get<core::CampaignSweepReport>(result.payload);
    for (const auto& c : campaign.campaigns) units += c.phases.size();
  }
  std::printf("[%zu unit(s) in %.1f s on %zu worker thread(s)]\n", units,
              result.wall_seconds, worker_count());
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

int cmd_list(bool json) {
  if (json) {
    // Machine-readable twin of the table below: names, summaries, CSV
    // stems and the spec fields POST /v1/jobs accepts (schema-pinned in
    // experiment_test).
    std::printf("%s", core::registry_listing_json().c_str());
    return 0;
  }
  const auto& registry = core::ExperimentRegistry::global();
  core::TextTable table({"experiment", "summary", "seeds", "csv files"});
  for (const std::string& name : registry.names()) {
    const core::ExperimentInfo& info = registry.info(name);
    std::string files;
    for (const std::string& stem : info.csv_files) {
      if (!files.empty()) files += ", ";
      files += stem + ".csv";
    }
    table.add_row({info.name, info.summary,
                   std::to_string(info.default_seed_count), files});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

/// Runs `experiments` over `options.models` with one shared zoo: per
/// experiment, CSV rows of consecutive models append under one header
/// (byte-identical to the legacy per-figure binaries) and JSON documents go
/// next to them with --json.
int cmd_run(const std::vector<std::string>& experiments,
            const CliOptions& options) {
  const auto& registry = core::ExperimentRegistry::global();
  // Fail on a typo before any sweep starts, not after the first one ran.
  for (const std::string& name : experiments) registry.info(name);

  const Scale scale = config::scale();
  const std::string out_dir = config::out_dir();
  core::ModelZoo zoo;
  core::RunContext context(zoo);
  context.cancel = &g_cancel_requested;
  context.progress = [&](const std::string& stage) {
    std::printf("  . %s\n", stage.c_str());
    std::fflush(stdout);
  };

  struct ExperimentTiming {
    std::string experiment;
    double seconds = 0.0;
  };
  std::vector<ExperimentTiming> timings;
  bool any_quarantine = false;

  for (const std::string& name : experiments) {
    const core::ExperimentInfo& info = registry.info(name);
    const std::size_t seeds = config::seed_count(info.default_seed_count);
    banner(name + ": " + info.summary + " (" + to_string(scale) +
           " scale, " + std::to_string(seeds) + " placements)");

    // One writer per CSV document, shared by every model of the experiment.
    std::map<std::string, std::unique_ptr<CsvWriter>> writers;
    // Only the headline cells survive the per-model loop; full results
    // (all sweep rows) are dropped per model to keep run-all memory flat.
    std::vector<std::vector<std::string>> headline_rows;
    double experiment_seconds = 0.0;

    for (const nn::ModelId model : options.models) {
      core::ExperimentSpec spec = registry.default_spec(name);
      spec.model = model;
      spec.scale = scale;
      spec.seed_count = seeds;
      spec.base_seed = config::base_seed();
      spec.cache_dir = zoo.directory();
      spec.verbose = options.verbose;

      std::printf("\n--- %s (%s on %s) ---\n",
                  nn::to_string(model).c_str(), to_string(scale).c_str(),
                  spec.resolved_setup().dataset_family.c_str());
      std::fflush(stdout);

      if (config::workers() > 0) {
        if (!dist::DistPlanner::shardable(name)) {
          std::printf(
              "[dist] note: experiment '%s' is not shardable; running "
              "in-process\n",
              name.c_str());
          std::fflush(stdout);
        } else {
          // Distributed phase: workers warm the result stores; the ordinary
          // registry.run below then assembles the report with every lookup
          // hitting cache, so its output is byte-identical to an in-process
          // run of the same spec.
          dist::DistOptions dist_options;
          dist_options.workers = config::workers();
          dist_options.heartbeat_timeout_s = config::heartbeat_timeout_s();
          dist_options.max_task_retries = config::max_task_retries();
          dist_options.chaos_kill_prob = options.chaos;
          dist_options.chaos_seed = spec.base_seed;
          dist_options.verbose = options.verbose;
          dist_options.cancel = &g_cancel_requested;
          dist::DistSummary dist_summary;
          const dist::DistStatus status = dist::run_distributed(
              name, spec, zoo, dist_options, dist_summary);
          if (status == dist::DistStatus::kQuarantined) {
            log::error("dist",
                       "%s/%s incomplete: %zu task(s) quarantined; "
                       "skipping report assembly for this model",
                       name.c_str(), nn::to_string(model).c_str(),
                       dist_summary.quarantined.size());
            any_quarantine = true;
            continue;
          }
        }
      }

      trace::Span run_span("experiment", name);
      run_span.arg("model", nn::to_string(model))
          .arg("scale", to_string(scale));
      const core::ExperimentResult result = registry.run(spec, context);
      run_span.arg("wall_seconds", result.wall_seconds);
      experiment_seconds += result.wall_seconds;
      print_timing(result);
      std::visit([](const auto& report) { render(report); }, result.payload);

      for (const core::CsvDocument& doc : result.to_csv()) {
        auto it = writers.find(doc.file_stem);
        if (it == writers.end()) {
          it = writers
                   .emplace(doc.file_stem,
                            std::make_unique<CsvWriter>(
                                out_dir + "/" + doc.file_stem + ".csv",
                                doc.header))
                   .first;
        }
        for (const auto& row : doc.rows) it->second->row(row);
      }
      if (options.json) {
        const std::string path =
            out_dir + "/" + name + "_" + nn::to_string(model) + ".json";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        fault::ptp("cli.json.write");  // crash: truncated (empty) JSON file
        out << result.to_json();
        require(out.good(), "failed to write " + path);
      }
      if (name == "susceptibility") {
        const auto& report = result.as<core::SusceptibilityReport>();
        headline_rows.push_back(
            {nn::to_string(model), core::pct(report.baseline_accuracy),
             core::pct(report.worst_drop(attack::AttackVector::kHotspot,
                                         attack::AttackTarget::kBothBlocks,
                                         0.10))});
      }
    }

    if (name == "susceptibility") {
      banner("Headline (paper SIV: 7.49% / 26.4% / 80.46% drops)");
      core::TextTable headline(
          {"model", "baseline", "worst drop @ 10% hotspot CONV+FC"});
      for (const auto& row : headline_rows) headline.add_row(row);
      std::printf("%s", headline.render().c_str());
    }
    if (name == "robust_compare") {
      std::printf(
          "\npaper reference: recoveries up to 5.4%% / 21.2%% / 30.7%% at "
          "10%%,\n2.09%% / 7.07%% / 35.54%% at 5%%, 1.1%% / 6.64%% / 9.07%% "
          "at 1%%\n");
    }
    std::string files;
    for (const auto& [stem, writer] : writers) {
      if (!files.empty()) files += ", ";
      files += writer->path();
    }
    std::printf("\nCSV written to %s\n", files.c_str());
    timings.push_back({name, experiment_seconds});
  }

  if (experiments.size() > 1) {
    banner("run summary");
    core::TextTable summary({"experiment", "wall seconds"});
    for (const auto& timing : timings) {
      summary.add_row({timing.experiment, fmt_double(timing.seconds, 1)});
    }
    std::printf("%s", summary.render().c_str());
  }
  // 3 = the sweep ran but quarantined tasks were left out; a caller that
  // treats this as success would trust incomplete CSVs.
  return any_quarantine ? 3 : 0;
}

/// `safelight serve`: the resident multi-tenant daemon. One shared zoo,
/// N slots, an HTTP/NDJSON front end (src/serve); SIGINT/SIGTERM drain
/// gracefully through the same ScopedCancelScope flag the sweeps poll.
int cmd_serve(const CliOptions& options) {
  // GET /metrics must answer even without --metrics <file>: arm bare
  // collection, but never clobber an output file the flags installed.
  if (!metrics::armed()) metrics::arm_collection();
  serve::ServeOptions serve_options;
  serve_options.port = config::serve_port();
  serve_options.slots = config::serve_slots();
  serve_options.queue_depth = config::serve_queue_depth();
  serve_options.zoo_dir = config::zoo_dir();
  serve_options.stop = &g_cancel_requested;
  serve_options.verbose = options.verbose;
  serve::Server server(serve_options);
  return server.serve();
}

/// `safelight worker`: the coordinator-spawned end of the distributed
/// protocol. stdin carries task commands, the *original* stdout carries
/// events; stdout is re-pointed at stderr immediately so stray prints from
/// experiment code cannot corrupt the event stream.
int cmd_worker(const std::vector<std::string>& args) {
  std::string zoo_dir;
  std::string store_dir;
  config::Overrides overrides;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto value = [&]() -> const std::string& {
      require(i + 1 < args.size(), "flag " + flag + " needs a value");
      return args[++i];
    };
    if (flag == "--slot") {
      nonnegative_int(flag, value());  // a label; the store dir carries it
    } else if (flag == "--store-dir") {
      store_dir = value();
    } else if (flag == "--zoo") {
      zoo_dir = value();
      overrides.zoo_dir = zoo_dir;
    } else if (flag == "--threads") {
      overrides.threads = positive_int(flag, value());
    } else {
      fail_argument("unknown worker flag '" + flag + "'");
    }
  }
  require(!store_dir.empty(), "'safelight worker' needs --store-dir");
  config::set_overrides(overrides);
  // Chaos runs arm the plug-pull harness via the SAFELIGHT_FAULT_* env the
  // coordinator set for this slot.
  fault::init_from_config();
  // A traced coordinator injects SAFELIGHT_TRACE_PIPE/SAFELIGHT_METRICS_PIPE
  // (never SAFELIGHT_TRACE/SAFELIGHT_METRICS — those are stripped so a
  // worker can't clobber the output files): the worker buffers spans and
  // metrics and ships them home over the event pipe.
  trace::init_from_config();
  metrics::init_from_config();
  // Workers select their backend from the SAFELIGHT_BACKEND the coordinator
  // injected (or their own CPU probe under "auto" — safe on heterogeneous
  // fleets because all conforming variants are bitwise-identical, and the
  // hello handshake rejects a binary whose numerics actually differ).
  nn::backend::invalidate_cache();
  nn::backend::announce(/*verbose=*/false);

  dist::WorkerOptions worker;
  worker.zoo_dir = zoo_dir;
  worker.store_dir = store_dir;
  worker.protocol_in = 0;
  worker.protocol_out = ::dup(1);
  require(worker.protocol_out >= 0, "worker: dup(stdout) failed");
  ::dup2(2, 1);
  if (const auto interval =
          config::strict_env_double("SAFELIGHT_DIST_HEARTBEAT_INTERVAL")) {
    require(*interval > 0.0,
            "SAFELIGHT_DIST_HEARTBEAT_INTERVAL must be > 0 seconds");
    worker.heartbeat_interval_s = *interval;
  }
  worker.cancel = &g_cancel_requested;
  return dist::run_worker(worker);
}

}  // namespace

void request_cancel() {
  g_cancel_requested.store(true, std::memory_order_relaxed);
}

int run(const std::vector<std::string>& args) {
  ScopedCancelScope cancel_scope;
  // An armed fault run reports every point's hit count on the way out (a
  // pulled plug _Exits before reaching this, exactly like a real crash).
  struct ReportScope {
    ~ReportScope() {
      if (fault::armed()) std::fprintf(stderr, "%s", fault::report().c_str());
    }
  } report_scope;
  // Observability flush on every exit path (success, usage error,
  // cancellation): a cancelled traced run still leaves a loadable partial
  // trace. Workers arm in buffering mode (no output file), so both writes
  // no-op there and the pipe stays the only telemetry channel.
  struct TelemetryScope {
    ~TelemetryScope() {
      if (trace::has_output()) trace::flush();
      if (metrics::has_output()) {
        metrics::write_json();
        const std::string table = metrics::summary();
        if (!table.empty()) std::fprintf(stderr, "%s", table.c_str());
      }
    }
  } telemetry_scope;
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help" ||
        args[0] == "-h") {
      std::printf("%s", kUsage);
      return args.empty() ? 2 : 0;
    }
    const std::string& command = args[0];
    if (command == "list") {
      require(args.size() == 1 || (args.size() == 2 && args[1] == "--json"),
              "'safelight list' takes no flags except --json");
      return cmd_list(args.size() == 2);
    }
    if (command == "serve") {
      const CliOptions options = parse_flags(args, 1);
      return cmd_serve(options);
    }
    if (command == "run") {
      require(args.size() >= 2 && args[1].rfind("--", 0) != 0,
              "'safelight run' needs an experiment name (try "
              "'safelight list')");
      const CliOptions options = parse_flags(args, 2);
      return cmd_run({args[1]}, options);
    }
    if (command == "run-all") {
      const CliOptions options = parse_flags(args, 1);
      return cmd_run(core::ExperimentRegistry::global().names(), options);
    }
    if (command == "worker") {
      return cmd_worker(args);
    }
    fail_argument("unknown command '" + command +
                  "' (see 'safelight help')");
  } catch (const core::ExperimentCancelled& error) {
    log::warn(nullptr,
              "%s (completed scenarios stay cached; rerun the same "
              "command to resume)",
              error.what());
    return 130;  // 128 + SIGINT, the conventional interrupted-run code
  } catch (const std::invalid_argument& error) {
    log::error(nullptr, "%s", error.what());
    return 2;
  } catch (const std::exception& error) {
    log::error(nullptr, "safelight: %s", error.what());
    return 1;
  }
}

}  // namespace safelight::cli
