#include "defense/canary.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/fingerprint.hpp"

namespace safelight::defense {

void CanaryConfig::validate() const {
  require(canary_count > 0, "CanaryConfig: need >= 1 canary");
  require(signature_bits >= 1 && signature_bits <= 24,
          "CanaryConfig: signature_bits must be in [1, 24]");
}

CanaryProbeDetector::CanaryProbeDetector(nn::Dataset canaries,
                                         CanaryConfig config)
    : Detector(/*default_threshold=*/0.0),
      canaries_(std::move(canaries)),
      config_(config) {
  config_.validate();
  require(canaries_.size() > 0, "CanaryProbeDetector: empty canary set");
}

std::string CanaryProbeDetector::signature(const DeploymentView& view,
                                           std::size_t index) const {
  require(index < canaries_.size(), "CanaryProbeDetector: canary out of range");

  // One fingerprint per canary, folding every mapped layer's quantized
  // read-out in walk order. The hook only observes, so it is registered as
  // such — a canary pass must never perturb the deployment it measures.
  Fingerprint fp;
  const double levels = static_cast<double>(1u << config_.signature_bits);
  std::size_t layer_ordinal = 0;
  const ScopedObservingHook hook(
      view.executor,
      [&fp, &layer_ordinal, levels](nn::Tensor& t, accel::BlockKind,
                                    float full_scale) {
        fp.mix_u64(layer_ordinal++);
        const double inv =
            full_scale > 0.0f ? 1.0 / static_cast<double>(full_scale) : 0.0;
        for (std::size_t i = 0; i < t.numel(); ++i) {
          const double normalized = static_cast<double>(t[i]) * inv;
          const auto q = static_cast<std::int64_t>(
              std::llround(normalized * levels));
          fp.mix_u64(static_cast<std::uint64_t>(q + (1 << 24)));
        }
      });

  auto [image, label] = canaries_.batch(index, index + 1);
  (void)label;
  (void)view.executor.forward(view.model, image);
  return fp.hex16();
}

void CanaryProbeDetector::calibrate(const DeploymentView& clean) {
  clean_signatures_.clear();
  clean_signatures_.reserve(canaries_.size());
  for (std::size_t i = 0; i < canaries_.size(); ++i) {
    clean_signatures_.push_back(signature(clean, i));
  }
}

DetectionResult CanaryProbeDetector::check(const DeploymentView& view) {
  SAFELIGHT_ASSERT(calibrated(), "CanaryProbeDetector: check before calibrate");
  std::size_t mismatches = 0;
  std::size_t first_mismatch = 0;
  for (std::size_t i = 0; i < canaries_.size(); ++i) {
    if (signature(view, i) != clean_signatures_[i]) {
      if (mismatches == 0) first_mismatch = i + 1;
      ++mismatches;
    }
  }
  const double score = static_cast<double>(mismatches) /
                       static_cast<double>(canaries_.size());
  return make_result(score, canaries_.size(), first_mismatch);
}

}  // namespace safelight::defense
