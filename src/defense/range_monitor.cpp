#include "defense/range_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace safelight::defense {

void RangeMonitorConfig::validate() const {
  require(probe_count > 0, "RangeMonitorConfig: need >= 1 probe image");
  require(check_count > 0, "RangeMonitorConfig: need >= 1 check image");
  require(batch_size > 0, "RangeMonitorConfig: batch_size must be >= 1");
  require(envelope_margin >= 0.0, "RangeMonitorConfig: margin must be >= 0");
  require(saturation_level > 0.0 && saturation_level <= 1.0,
          "RangeMonitorConfig: saturation level must be in (0, 1]");
}

RangeMonitorDetector::RangeMonitorDetector(nn::Dataset probes,
                                           RangeMonitorConfig config)
    : Detector(/*default_threshold=*/0.0),
      probes_(std::move(probes)),
      config_(config) {
  config_.validate();
  require(probes_.size() > 0, "RangeMonitorDetector: empty probe stream");
}

std::size_t RangeMonitorDetector::batch_count() const {
  return (probes_.size() + config_.batch_size - 1) / config_.batch_size;
}

std::vector<ReadoutStats> RangeMonitorDetector::batch_stats(
    const DeploymentView& view, std::size_t batch_index) const {
  require(batch_index < batch_count(),
          "RangeMonitorDetector: batch out of range");

  std::vector<ReadoutStats> stats;
  const double level = config_.saturation_level;
  const ScopedObservingHook hook(
      view.executor,
      [&stats, level](nn::Tensor& t, accel::BlockKind, float full_scale) {
        ReadoutStats s;
        s.abs_max = static_cast<double>(full_scale);
        double sum_abs = 0.0;
        std::size_t saturated = 0;
        const double cut = level * static_cast<double>(full_scale);
        for (std::size_t i = 0; i < t.numel(); ++i) {
          const double a = std::abs(static_cast<double>(t[i]));
          sum_abs += a;
          if (full_scale > 0.0f && a >= cut) ++saturated;
        }
        if (t.numel() > 0) {
          s.mean_abs = sum_abs / static_cast<double>(t.numel());
          s.saturation =
              static_cast<double>(saturated) / static_cast<double>(t.numel());
        }
        stats.push_back(s);
      });

  const std::size_t begin = batch_index * config_.batch_size;
  const std::size_t end =
      std::min(probes_.size(), begin + config_.batch_size);
  auto [images, labels] = probes_.batch(begin, end);
  (void)labels;
  (void)view.executor.forward(view.model, images);
  return stats;
}

void RangeMonitorDetector::calibrate(const DeploymentView& clean) {
  envelopes_.clear();
  for (std::size_t b = 0; b < batch_count(); ++b) {
    const std::vector<ReadoutStats> stats = batch_stats(clean, b);
    SAFELIGHT_ASSERT(!stats.empty(),
                     "RangeMonitorDetector: deployment has no mapped layers");
    if (envelopes_.empty()) {
      envelopes_.resize(stats.size());
      for (std::size_t l = 0; l < stats.size(); ++l) {
        const double metrics[3] = {stats[l].abs_max, stats[l].mean_abs,
                                   stats[l].saturation};
        for (int m = 0; m < 3; ++m) {
          envelopes_[l].lo[m] = metrics[m];
          envelopes_[l].hi[m] = metrics[m];
        }
      }
      continue;
    }
    SAFELIGHT_ASSERT(stats.size() == envelopes_.size(),
                     "RangeMonitorDetector: mapped layer count changed");
    for (std::size_t l = 0; l < stats.size(); ++l) {
      const double metrics[3] = {stats[l].abs_max, stats[l].mean_abs,
                                 stats[l].saturation};
      for (int m = 0; m < 3; ++m) {
        envelopes_[l].lo[m] = std::min(envelopes_[l].lo[m], metrics[m]);
        envelopes_[l].hi[m] = std::max(envelopes_[l].hi[m], metrics[m]);
      }
    }
  }
}

double RangeMonitorDetector::violation(
    const std::vector<ReadoutStats>& stats) const {
  // A changed mapped-layer count means the deployment no longer matches the
  // calibrated architecture — maximally anomalous by definition.
  if (stats.size() != envelopes_.size()) {
    return 1.0 / std::numeric_limits<double>::epsilon();
  }
  double worst = 0.0;
  for (std::size_t l = 0; l < stats.size(); ++l) {
    const double metrics[3] = {stats[l].abs_max, stats[l].mean_abs,
                               stats[l].saturation};
    for (int m = 0; m < 3; ++m) {
      const double lo = envelopes_[l].lo[m];
      const double hi = envelopes_[l].hi[m];
      // Excursions are measured in units of the envelope width, floored at
      // 5 % of the envelope's magnitude so a degenerate (constant-metric)
      // envelope does not amplify numeric dust into detections.
      const double floor_abs =
          std::max(0.05 * std::max(std::abs(lo), std::abs(hi)), 1e-9);
      const double denom = std::max(hi - lo, floor_abs);
      const double widened_lo = lo - config_.envelope_margin * denom;
      const double widened_hi = hi + config_.envelope_margin * denom;
      const double v = metrics[m];
      if (v > widened_hi) worst = std::max(worst, (v - widened_hi) / denom);
      if (v < widened_lo) worst = std::max(worst, (widened_lo - v) / denom);
    }
  }
  return worst;
}

DetectionResult RangeMonitorDetector::check(const DeploymentView& view) {
  SAFELIGHT_ASSERT(calibrated(),
                   "RangeMonitorDetector: check before calibrate");
  // The checked subset is a probe_seed-picked sample of the calibration
  // batches: distinct checks monitor distinct traffic, yet every clean
  // batch is inside the calibrated envelope by construction.
  Rng rng(seed_combine(view.probe_seed, 0x5A9E));
  const std::vector<std::size_t> order = rng.permutation(batch_count());
  const std::size_t check_batches = std::min(
      batch_count(),
      (std::min(config_.check_count, probes_.size()) + config_.batch_size - 1) /
          config_.batch_size);

  double score = 0.0;
  std::size_t probes = 0;
  std::size_t first_flag = 0;
  for (std::size_t k = 0; k < check_batches; ++k) {
    const std::size_t b = order[k];
    const std::size_t begin = b * config_.batch_size;
    const std::size_t end =
        std::min(probes_.size(), begin + config_.batch_size);
    probes += end - begin;
    score = std::max(score, violation(batch_stats(view, b)));
    if (first_flag == 0 && score > threshold()) first_flag = probes;
  }
  return make_result(score, probes, first_flag);
}

}  // namespace safelight::defense
