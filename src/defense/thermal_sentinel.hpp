// Thermal sentinels: on-die temperature sensors on the block floorplans.
//
// Heater-overdrive trojans dump tens of milliwatts into victim MR banks;
// the resulting temperature field spreads over several bank tiles
// (thermal/solver), so a sparse grid of sentinel sensors — a few per VDP
// unit — sees a multi-Kelvin rise long before the tuning loops saturate
// and accuracy degrades. The detector samples the solved thermal grid of
// each block at its sentinel sites (plus Gaussian sensor read noise) and
// scores the worst rise over ambient. Actuation attacks are electro-optic
// and leave no thermal signature: this detector is blind to them by
// physics, which is why the subsystem fields a detector *suite* rather
// than a single monitor.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "defense/detector.hpp"

namespace safelight::defense {

struct ThermalSentinelConfig {
  /// Sentinel sensors per VDP unit, spread evenly over the unit's banks.
  std::size_t sites_per_unit = 1;
  /// Gaussian sensor read noise sigma [K] (models real on-die sensors and
  /// decorrelates repeated clean checks).
  double sensor_noise_k = 0.05;
  /// Default decision threshold [K]: worst sentinel rise over ambient that
  /// still counts as clean. Far above sensor noise, far below the
  /// multi-Kelvin rises an overdriven heater produces, and below the
  /// hardware quarantine trigger (QuarantineConfig::detect_threshold_k) so
  /// detection fires before the mitigation must.
  double threshold_k = 1.0;

  void validate() const;
};

/// One sentinel sensor site on a block floorplan.
struct SentinelSite {
  accel::BlockKind block = accel::BlockKind::kConv;
  std::size_t unit = 0;
  std::size_t bank = 0;  // bank within the unit whose tile hosts the sensor
};

/// See file comment. Score = worst sentinel temperature rise over ambient
/// [K] across both blocks.
class ThermalSentinelDetector : public Detector {
 public:
  explicit ThermalSentinelDetector(const accel::AcceleratorConfig& accel,
                                   ThermalSentinelConfig config = {});

  std::string name() const override { return "thermal_sentinel"; }
  void calibrate(const DeploymentView& clean) override;
  bool calibrated() const override { return calibrated_; }
  DetectionResult check(const DeploymentView& view) override;

  const ThermalSentinelConfig& config() const { return config_; }
  const std::vector<SentinelSite>& sites() const { return sites_; }

  /// Noisy sensor reading [K above ambient] of site `index` under the
  /// view's telemetry (exposed for tests).
  double site_reading(const DeploymentView& view, std::size_t index) const;

 private:
  accel::AcceleratorConfig accel_;
  ThermalSentinelConfig config_;
  std::vector<SentinelSite> sites_;
  bool calibrated_ = false;
};

}  // namespace safelight::defense
