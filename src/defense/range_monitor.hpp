// Read-out range monitor: per-layer activation envelopes.
//
// ONN read-out electronics already measure every mapped layer's output to
// pick ADC scales, so per-layer summary statistics (abs-max, mean |x|,
// saturation fraction) are nearly free to collect. At deployment the
// monitor records each mapped layer's clean statistics envelope over a
// held-out calibration stream; periodic checks re-collect the statistics
// through an *observing* OnnExecutor read-out hook and score how far any
// layer escapes its calibrated envelope. Actuation parking inflates
// abs-max/saturation (weights stick at full magnitude); hotspot shifts
// drag whole bank clusters, moving mean levels — both surface here without
// any golden recompute.
//
// Check batches are drawn from the calibration stream itself (a probe_seed
// -picked subset), so a clean check is always inside the envelope: like the
// canary probes, the monitor's false-positive rate is structurally zero at
// the default threshold.
#pragma once

#include <vector>

#include "defense/detector.hpp"
#include "nn/dataset.hpp"

namespace safelight::defense {

struct RangeMonitorConfig {
  /// Calibration images held out for the monitor (DetectorSuite sizes the
  /// probe dataset with this; checks sample a subset of its batches).
  std::size_t probe_count = 96;
  /// Images monitored per check (clamped to the probe pool).
  std::size_t check_count = 64;
  std::size_t batch_size = 16;
  /// Relative widening of the calibrated [min, max] envelope; excursions
  /// are scored in units of the (floored) envelope width.
  double envelope_margin = 0.10;
  /// |x| >= saturation_level * full_scale counts as a saturated read-out.
  double saturation_level = 0.98;

  void validate() const;
};

/// Summary statistics of one mapped layer's read-out over one batch.
struct ReadoutStats {
  double abs_max = 0.0;
  double mean_abs = 0.0;
  double saturation = 0.0;  // fraction of saturated read-outs
};

/// See file comment. Score = worst normalized envelope excursion across the
/// checked batches; the default threshold of 0 flags any excursion beyond
/// the widened envelope.
class RangeMonitorDetector : public Detector {
 public:
  /// `probes` is the held-out calibration stream; the detector copies it.
  explicit RangeMonitorDetector(nn::Dataset probes,
                                RangeMonitorConfig config = {});

  std::string name() const override { return "range_monitor"; }
  void calibrate(const DeploymentView& clean) override;
  bool calibrated() const override { return !envelopes_.empty(); }
  DetectionResult check(const DeploymentView& view) override;

  const RangeMonitorConfig& config() const { return config_; }

  /// Mapped-layer statistics of one probe batch on the given deployment
  /// (exposed for tests; calibrate/check are built on it).
  std::vector<ReadoutStats> batch_stats(const DeploymentView& view,
                                        std::size_t batch_index) const;

  /// Number of probe batches the calibration stream splits into.
  std::size_t batch_count() const;

 private:
  /// Calibrated [lo, hi] per metric of one mapped layer, pre-widening.
  struct Envelope {
    double lo[3] = {0.0, 0.0, 0.0};
    double hi[3] = {0.0, 0.0, 0.0};
  };

  /// Worst normalized excursion of `stats` outside `envelope`.
  double violation(const std::vector<ReadoutStats>& stats) const;

  nn::Dataset probes_;
  RangeMonitorConfig config_;
  std::vector<Envelope> envelopes_;  // one per mapped layer, walk order
};

}  // namespace safelight::defense
