#include "defense/thermal_sentinel.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "thermal/floorplan.hpp"

namespace safelight::defense {

void ThermalSentinelConfig::validate() const {
  require(sites_per_unit > 0, "ThermalSentinelConfig: need >= 1 site per unit");
  require(sensor_noise_k >= 0.0,
          "ThermalSentinelConfig: sensor noise must be >= 0");
  require(threshold_k > 0.0,
          "ThermalSentinelConfig: threshold must be positive");
}

ThermalSentinelDetector::ThermalSentinelDetector(
    const accel::AcceleratorConfig& accel, ThermalSentinelConfig config)
    : Detector(config.threshold_k), accel_(accel), config_(config) {
  config_.validate();
  accel_.validate();
  // Sentinels spread evenly over each unit's bank tiles, both blocks.
  for (const accel::BlockKind kind :
       {accel::BlockKind::kConv, accel::BlockKind::kFc}) {
    const accel::BlockDims& dims = accel_.block(kind);
    const std::size_t per_unit =
        std::min(config_.sites_per_unit, dims.banks_per_unit);
    for (std::size_t unit = 0; unit < dims.units; ++unit) {
      for (std::size_t s = 0; s < per_unit; ++s) {
        SentinelSite site;
        site.block = kind;
        site.unit = unit;
        site.bank = (s + 1) * dims.banks_per_unit / (per_unit + 1);
        sites_.push_back(site);
      }
    }
  }
  SAFELIGHT_ASSERT(!sites_.empty(), "ThermalSentinelDetector: no sites");
}

double ThermalSentinelDetector::site_reading(const DeploymentView& view,
                                             std::size_t index) const {
  require(index < sites_.size(), "ThermalSentinelDetector: site out of range");
  const SentinelSite& site = sites_[index];

  double delta_t = 0.0;  // ambient: no telemetry or thermally idle block
  if (view.thermal != nullptr) {
    for (const attack::BlockThermalState& state : *view.thermal) {
      if (state.block != site.block) continue;
      // Sample the solved thermal grid at the site's floorplan cell — the
      // same (unit, bank) -> tile map the hotspot planner injects power
      // through, so the sensor sees exactly the physics it should.
      const accel::BlockDims& dims = accel_.block(site.block);
      const thermal::BlockFloorplan floorplan(dims.units, dims.banks_per_unit);
      const auto [row, col] = floorplan.bank_cell(site.unit, site.bank);
      delta_t = state.grid.delta_t(row, col);
      break;
    }
  }
  Rng noise(seed_combine(view.probe_seed, 0x7E47, index));
  return delta_t + noise.gaussian(0.0, config_.sensor_noise_k);
}

void ThermalSentinelDetector::calibrate(const DeploymentView& clean) {
  // The clean reference of a temperature sensor is ambient itself; the
  // calibration pass just verifies the clean die reads below threshold —
  // a configuration precondition (threshold vs. noise headroom), not an
  // internal invariant.
  double worst = 0.0;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    worst = std::max(worst, site_reading(clean, i));
  }
  require(worst <= threshold(),
          "ThermalSentinelDetector: clean die already reads above the "
          "detection threshold; raise threshold_k or lower sensor_noise_k");
  calibrated_ = true;
}

DetectionResult ThermalSentinelDetector::check(const DeploymentView& view) {
  SAFELIGHT_ASSERT(calibrated(),
                   "ThermalSentinelDetector: check before calibrate");
  double worst = 0.0;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    worst = std::max(worst, site_reading(view, i));
  }
  // One full sensor scan is a single probe: a sentinel flags (or not)
  // within one inference-equivalent sampling period.
  return make_result(std::max(0.0, worst), 1, 1);
}

}  // namespace safelight::defense
