#include "defense/suite.hpp"

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/trace.hpp"
#include "nn/synthetic.hpp"

namespace safelight::defense {

std::string config_fingerprint(const SuiteConfig& config) {
  Fingerprint fp;
  fp.mix_u64(config.canary.canary_count)
      .mix_u64(config.canary.signature_bits)
      .mix_u64(config.range.probe_count)
      .mix_u64(config.range.check_count)
      .mix_u64(config.range.batch_size)
      .mix_double(config.range.envelope_margin)
      .mix_double(config.range.saturation_level)
      .mix_u64(config.sentinel.sites_per_unit)
      .mix_double(config.sentinel.sensor_noise_k)
      .mix_double(config.sentinel.threshold_k)
      .mix_u64(config.probe_data_seed);
  return fp.hex8();
}

namespace {

/// Held-out probe images drawn from the setup's synthetic family under a
/// probe-specific seed (disjoint stream from both train and eval data).
nn::Dataset probe_data(const core::ExperimentSetup& setup, std::size_t count,
                       std::uint64_t seed_offset) {
  nn::SynthConfig config = setup.test_data;
  config.count = count;
  config.seed = setup.test_data.seed + seed_offset;
  return nn::make_synthetic(setup.dataset_family, config);
}

}  // namespace

DetectorSuite::DetectorSuite(const core::ExperimentSetup& setup,
                             SuiteConfig config)
    : config_(config) {
  detectors_.push_back(std::make_unique<CanaryProbeDetector>(
      probe_data(setup, config_.canary.canary_count,
                 config_.probe_data_seed),
      config_.canary));
  detectors_.push_back(std::make_unique<RangeMonitorDetector>(
      probe_data(setup, config_.range.probe_count,
                 config_.probe_data_seed + 1),
      config_.range));
  detectors_.push_back(std::make_unique<ThermalSentinelDetector>(
      setup.accelerator, config_.sentinel));
}

Detector& DetectorSuite::detector(const std::string& name) {
  for (auto& d : detectors_) {
    if (d->name() == name) return *d;
  }
  fail_argument("DetectorSuite: unknown detector '" + name + "'");
}

std::vector<std::string> DetectorSuite::names() const {
  std::vector<std::string> out;
  out.reserve(detectors_.size());
  for (const auto& d : detectors_) out.push_back(d->name());
  return out;
}

void DetectorSuite::calibrate(const DeploymentView& clean) {
  for (auto& d : detectors_) d->calibrate(clean);
}

std::vector<DetectionResult> DetectorSuite::check_all(
    const DeploymentView& view) {
  std::vector<DetectionResult> results;
  results.reserve(detectors_.size());
  for (auto& d : detectors_) {
    trace::Span span("detect", "detector.check");
    if (span.active()) span.arg("detector", d->name());
    results.push_back(d->check(view));
    if (span.active()) {
      span.arg("score", results.back().score)
          .arg("probes", static_cast<double>(results.back().probes));
    }
  }
  return results;
}

std::vector<attack::BlockThermalState> scenario_telemetry(
    const accel::AcceleratorConfig& accel,
    const attack::AttackScenario& scenario,
    const attack::CorruptionConfig& corruption) {
  if (scenario.vector != attack::AttackVector::kHotspot ||
      scenario.fraction <= 0.0) {
    return {};
  }
  attack::HotspotPlan plan =
      attack::plan_hotspot_attack(accel, scenario, corruption.hotspot);
  return std::move(plan.block_states);
}

std::vector<attack::BlockThermalState> composite_telemetry(
    const accel::AcceleratorConfig& accel,
    const attack::CompositeScenario& composite,
    const attack::CorruptionConfig& corruption) {
  std::vector<attack::BlockThermalState> merged;
  for (const attack::AttackScenario& component :
       composite.canonical_components()) {
    for (attack::BlockThermalState& state :
         scenario_telemetry(accel, component, corruption)) {
      attack::BlockThermalState* existing = nullptr;
      for (attack::BlockThermalState& m : merged) {
        if (m.block == state.block) existing = &m;
      }
      if (existing == nullptr) {
        merged.push_back(std::move(state));
        continue;
      }
      // Superpose onto the block's already-merged field (linearity of the
      // steady-state heat equation in its power sources).
      SAFELIGHT_ASSERT(
          existing->bank_delta_t.size() == state.bank_delta_t.size() &&
              existing->grid.rows() == state.grid.rows() &&
              existing->grid.cols() == state.grid.cols(),
          "composite_telemetry: component grids disagree on block dims");
      for (std::size_t i = 0; i < state.bank_delta_t.size(); ++i) {
        existing->bank_delta_t[i] += state.bank_delta_t[i];
      }
      for (std::size_t r = 0; r < state.grid.rows(); ++r) {
        for (std::size_t c = 0; c < state.grid.cols(); ++c) {
          existing->grid.set_temperature_k(
              r, c,
              existing->grid.temperature_k(r, c) + state.grid.delta_t(r, c));
          existing->grid.add_power_mw(r, c, state.grid.power_mw(r, c));
        }
      }
    }
  }
  return merged;
}

}  // namespace safelight::defense
