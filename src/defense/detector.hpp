// Runtime attack-detection interface (the defense subsystem's contract).
//
// SafeLight's offense side quantifies how much accuracy an implanted trojan
// costs; the defense side asks the complementary production question: "is
// this deployed accelerator under attack right now?" A Detector is a
// runtime integrity monitor that is calibrated once against a known-good
// deployment and then re-checked periodically. Three concrete detectors
// ship with the subsystem, each observing a different physical surface:
//   * defense::CanaryProbeDetector   — recomputation signatures (canary.hpp)
//   * defense::RangeMonitorDetector  — read-out statistics (range_monitor.hpp)
//   * defense::ThermalSentinelDetector — on-die temperature (thermal_sentinel.hpp)
// core/detection.hpp sweeps all of them across the attack scenario grid and
// turns the scores into ROC curves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/executor.hpp"
#include "attacks/hotspot.hpp"
#include "nn/sequential.hpp"

namespace safelight::defense {

/// Everything a detector may observe about one deployed accelerator state.
/// Detectors never modify the model weights; the executor reference is
/// non-const only because probe passes install an *observing* read-out hook
/// (removed again before the call returns).
struct DeploymentView {
  /// Conditioned (and possibly attacked) model as deployed on the MR banks.
  nn::Sequential& model;
  /// The executor that drives probe inference on this deployment.
  accel::OnnExecutor& executor;
  /// On-die thermal telemetry: one solved state per thermally active block.
  /// nullptr or empty means every temperature sensor reads ambient.
  const std::vector<attack::BlockThermalState>* thermal = nullptr;
  /// Seeds the measurement noise / probe ordering of this check so repeated
  /// clean checks model distinct physical read-outs, deterministically.
  std::uint64_t probe_seed = 0;
};

/// Verdict of one detector check.
struct DetectionResult {
  std::string detector;   // Detector::name() of the producer
  double score = 0.0;     // anomaly score >= 0; higher = more anomalous
  bool flagged = false;   // score exceeded the detector's threshold
  /// Probe inferences (canaries / monitored images / sensor samples) this
  /// check consumed — the denominator of detection latency.
  std::size_t probes = 0;
  /// 1-based index of the first probe whose running evidence crossed the
  /// threshold (the detection latency in probes); 0 when never flagged.
  std::size_t first_flag_probe = 0;
};

/// A runtime integrity monitor: calibrate once on a clean deployment, then
/// check() the (possibly compromised) deployment periodically. Implementations
/// must be deterministic in (deployment state, probe_seed) so detection
/// sweeps cache and resume like every other SafeLight experiment.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Stable identifier ("canary" / "range_monitor" / "thermal_sentinel");
  /// used in report rows and cache keys.
  virtual std::string name() const = 0;

  /// Records the clean reference (signatures, envelopes, ambient baseline)
  /// from a freshly deployed, known-good accelerator. Must be called before
  /// check(); throws std::logic_error otherwise.
  virtual void calibrate(const DeploymentView& clean) = 0;
  virtual bool calibrated() const = 0;

  /// One detection pass over the deployment. Does not modify weights.
  virtual DetectionResult check(const DeploymentView& view) = 0;

  /// Decision threshold on the score; check() flags when score > threshold.
  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

 protected:
  explicit Detector(double default_threshold)
      : threshold_(default_threshold) {}

  /// Shared result scaffolding: name/score/flag fields filled in.
  DetectionResult make_result(double score, std::size_t probes,
                              std::size_t first_flag_probe) const;

 private:
  double threshold_;
};

/// RAII installer for an *observing* read-out hook: pushes onto the
/// executor's hook stack on construction, always pops on scope exit — so a
/// probe forward that throws (e.g. a shape-mismatched probe set) never
/// leaves a stale hook behind on a shared executor. Stacks freely on top of
/// already-installed hooks (e.g. an active ADC-trojan payload during a
/// campaign check): the observer then sees the read-out exactly as the
/// downstream electronics would.
class ScopedObservingHook {
 public:
  ScopedObservingHook(accel::OnnExecutor& executor, accel::ReadoutHook hook);
  ~ScopedObservingHook();

  ScopedObservingHook(const ScopedObservingHook&) = delete;
  ScopedObservingHook& operator=(const ScopedObservingHook&) = delete;

 private:
  accel::OnnExecutor& executor_;
  std::size_t depth_ = 0;  // stack depth right after our push
};

}  // namespace safelight::defense
