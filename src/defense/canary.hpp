// Canary probe detector: recomputation signatures over held-out inputs.
//
// At deployment time a small set of held-out calibration images (the
// canaries) is pushed through the mapped accelerator and every MR-mapped
// layer's read-out is folded into one fingerprint per canary
// (common/fingerprint over ADC-resolution-quantized outputs). Periodic
// re-checks recompute the signatures on the live hardware: any parked
// actuation ring or thermally shifted bank that changes a mapped weight
// changes the read-out of every canary that exercises it, so the signature
// chain diverges. Execution is deterministic, so a clean re-check reproduces
// the recorded fingerprints exactly — the detector's false-positive rate is
// structurally zero.
#pragma once

#include <string>
#include <vector>

#include "defense/detector.hpp"
#include "nn/dataset.hpp"

namespace safelight::defense {

struct CanaryConfig {
  /// Held-out probe images recorded at deployment (DetectorSuite sizes its
  /// canary dataset with this; the default covers one probe per class).
  std::size_t canary_count = 10;
  /// Signature resolution: read-outs are quantized to +/- 2^bits levels of
  /// their full scale before fingerprinting, modeling a digital signature
  /// captured behind the ADC rather than an exact float recompute.
  unsigned signature_bits = 12;

  void validate() const;
};

/// See file comment. Score = fraction of canaries whose signature diverged;
/// the default threshold of 0 flags the very first mismatch.
class CanaryProbeDetector : public Detector {
 public:
  /// `canaries` are the held-out probe images; the detector copies them.
  explicit CanaryProbeDetector(nn::Dataset canaries, CanaryConfig config = {});

  std::string name() const override { return "canary"; }
  void calibrate(const DeploymentView& clean) override;
  bool calibrated() const override { return !clean_signatures_.empty(); }
  DetectionResult check(const DeploymentView& view) override;

  const CanaryConfig& config() const { return config_; }

  /// Signature of canary `index` on the given deployment (exposed for
  /// tests; check() compares these against the calibrated set).
  std::string signature(const DeploymentView& view, std::size_t index) const;

 private:
  nn::Dataset canaries_;
  CanaryConfig config_;
  std::vector<std::string> clean_signatures_;  // one hex16 per canary
};

}  // namespace safelight::defense
