#include "defense/detector.hpp"

#include "common/error.hpp"

namespace safelight::defense {

ScopedObservingHook::ScopedObservingHook(accel::OnnExecutor& executor,
                                         accel::ReadoutHook hook)
    : executor_(executor) {
  require(!executor_.has_readout_hook(),
          "defense: executor already carries a read-out hook");
  executor_.set_readout_hook(std::move(hook),
                             accel::ReadoutHookKind::kObserving);
}

ScopedObservingHook::~ScopedObservingHook() {
  executor_.set_readout_hook(nullptr);
}

DetectionResult Detector::make_result(double score, std::size_t probes,
                                      std::size_t first_flag_probe) const {
  DetectionResult result;
  result.detector = name();
  result.score = score;
  result.flagged = score > threshold_;
  result.probes = probes;
  result.first_flag_probe = result.flagged ? first_flag_probe : 0;
  return result;
}

}  // namespace safelight::defense
