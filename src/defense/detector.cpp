#include "defense/detector.hpp"

#include "common/error.hpp"

namespace safelight::defense {

ScopedObservingHook::ScopedObservingHook(accel::OnnExecutor& executor,
                                         accel::ReadoutHook hook)
    : executor_(executor) {
  executor_.push_readout_hook(std::move(hook),
                              accel::ReadoutHookKind::kObserving);
  depth_ = executor_.readout_hook_count();
}

ScopedObservingHook::~ScopedObservingHook() {
  // Pop only when our own hook is still on top. If someone violated the
  // LIFO discipline while this scope was alive — cleared the stack via
  // set_readout_hook, or pushed above without popping — removing whatever
  // is on top now would silently uninstall *their* hook; and throwing out
  // of a destructor would terminate. Leaving the stack alone is the only
  // outcome that corrupts no one else's state.
  if (executor_.readout_hook_count() == depth_) executor_.pop_readout_hook();
}

DetectionResult Detector::make_result(double score, std::size_t probes,
                                      std::size_t first_flag_probe) const {
  DetectionResult result;
  result.detector = name();
  result.score = score;
  result.flagged = score > threshold_;
  result.probes = probes;
  result.first_flag_probe = result.flagged ? first_flag_probe : 0;
  return result;
}

}  // namespace safelight::defense
