// Detector suite: the three shipped detectors behind one calibrate/check.
//
// Builds the canary probe, read-out range monitor and thermal sentinel
// detectors for an experiment setup, sourcing the held-out probe datasets
// from the setup's synthetic generator under probe-specific seeds (so
// calibration inputs never overlap the attack-evaluation subset). The
// suite is what the detection sweep (core/detection.hpp) instantiates per
// worker; config_fingerprint keys the sweep's result store so re-tuned
// detector knobs never reuse stale cached scores.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attacks/campaign.hpp"
#include "attacks/corruption.hpp"
#include "core/experiment_scale.hpp"
#include "defense/canary.hpp"
#include "defense/range_monitor.hpp"
#include "defense/thermal_sentinel.hpp"

namespace safelight::defense {

struct SuiteConfig {
  CanaryConfig canary{};
  RangeMonitorConfig range{};
  ThermalSentinelConfig sentinel{};
  /// Seed offset of the held-out probe datasets relative to the setup's
  /// test-data seed (keeps probes disjoint from the eval stream).
  std::uint64_t probe_data_seed = 97;
};

/// Short fingerprint over every suite knob; detection result stores key
/// their files on it (mirrors attack::config_fingerprint).
std::string config_fingerprint(const SuiteConfig& config);

class DetectorSuite {
 public:
  explicit DetectorSuite(const core::ExperimentSetup& setup,
                         SuiteConfig config = {});

  std::size_t size() const { return detectors_.size(); }
  Detector& detector(std::size_t i) { return *detectors_[i]; }
  /// Detector by name; throws std::invalid_argument when unknown.
  Detector& detector(const std::string& name);
  std::vector<std::string> names() const;

  /// Calibrates every detector on the clean deployment.
  void calibrate(const DeploymentView& clean);

  /// Checks every detector; results in detector order.
  std::vector<DetectionResult> check_all(const DeploymentView& view);

  const SuiteConfig& config() const { return config_; }

 private:
  SuiteConfig config_;
  std::vector<std::unique_ptr<Detector>> detectors_;
};

/// On-die thermal telemetry a deployed accelerator would expose under
/// `scenario`: the solved per-block thermal states for hotspot scenarios
/// (re-planned deterministically from the scenario seed — the exact field
/// the corruption path used), empty (all sensors at ambient) for clean
/// deployments and for electro-optic actuation attacks.
std::vector<attack::BlockThermalState> scenario_telemetry(
    const accel::AcceleratorConfig& accel,
    const attack::AttackScenario& scenario,
    const attack::CorruptionConfig& corruption = {});

/// Telemetry of a composite scenario: per-component scenario_telemetry,
/// superposed per block. The steady-state heat equation is linear in its
/// sources, so summing the solved per-cell temperature rises (and per-bank
/// delta-Ts) of concurrent hotspot components is the exact field a die
/// under both attacks would show. Empty for all-actuation composites.
std::vector<attack::BlockThermalState> composite_telemetry(
    const accel::AcceleratorConfig& accel,
    const attack::CompositeScenario& composite,
    const attack::CorruptionConfig& corruption = {});

}  // namespace safelight::defense
