#include "attacks/hotspot.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safelight::attack {

namespace {

/// Samples victim banks in one block until `target_mrs` MRs are covered.
std::vector<std::size_t> sample_banks(const accel::BlockDims& dims,
                                      std::size_t target_mrs, Rng& rng) {
  if (target_mrs == 0) return {};
  const std::size_t bank_size = dims.mrs_per_bank;
  const std::size_t want_banks = std::min(
      dims.bank_count(),
      (target_mrs + bank_size / 2) / bank_size);  // nearest whole bank
  return rng.sample_without_replacement(dims.bank_count(),
                                        std::max<std::size_t>(
                                            want_banks,
                                            target_mrs > 0 ? 1 : 0));
}

BlockThermalState solve_block(const accel::AcceleratorConfig& config,
                              accel::BlockKind kind,
                              const std::vector<std::size_t>& victim_banks,
                              const HotspotConfig& attack) {
  const accel::BlockDims& dims = config.block(kind);
  const thermal::BlockFloorplan floorplan(dims.units, dims.banks_per_unit);
  BlockThermalState state(floorplan.make_grid());
  state.block = kind;
  state.banks_per_unit = dims.banks_per_unit;

  for (std::size_t flat : victim_banks) {
    const accel::BankAddress addr =
        accel::bank_from_flat(dims, kind, flat);
    const auto [row, col] = floorplan.bank_cell(addr.unit, addr.bank);
    state.grid.add_power_mw(row, col, attack.heater_overdrive_mw);
  }
  const thermal::SolveResult result =
      thermal::solve_steady_state(state.grid, attack.solver);
  SAFELIGHT_ASSERT(result.converged,
                   "plan_hotspot_attack: thermal solver did not converge");

  state.bank_delta_t.assign(dims.bank_count(), 0.0);
  for (std::size_t flat = 0; flat < dims.bank_count(); ++flat) {
    const accel::BankAddress addr =
        accel::bank_from_flat(dims, kind, flat);
    const auto [row, col] = floorplan.bank_cell(addr.unit, addr.bank);
    state.bank_delta_t[flat] = state.grid.delta_t(row, col);
  }
  return state;
}

}  // namespace

double HotspotPlan::effective_delta_t(const accel::BankAddress& bank,
                                      double compensation_k) const {
  const BlockThermalState* state = state_for(bank.block);
  if (state == nullptr) return 0.0;
  const std::size_t flat = bank.unit * state->banks_per_unit + bank.bank;
  if (flat >= state->bank_delta_t.size()) return 0.0;
  const double raw = state->bank_delta_t[flat];
  // The per-MR tuning loop absorbs minor swings (paper §III.B.2); only the
  // excess shifts the resonance.
  return std::max(0.0, raw - compensation_k);
}

const BlockThermalState* HotspotPlan::state_for(
    accel::BlockKind block) const {
  for (const auto& state : block_states) {
    if (state.block == block) return &state;
  }
  return nullptr;
}

HotspotPlan plan_hotspot_attack(const accel::AcceleratorConfig& config,
                                const AttackScenario& scenario,
                                const HotspotConfig& attack) {
  scenario.validate();
  require(scenario.vector == AttackVector::kHotspot,
          "plan_hotspot_attack: scenario is not a hotspot attack");
  require(attack.heater_overdrive_mw > 0.0,
          "HotspotConfig: overdrive power must be positive");
  require(attack.tuning_compensation_k >= 0.0,
          "HotspotConfig: compensation must be >= 0");

  Rng rng(seed_combine(scenario.seed, 0x407, 0xBEEF));

  const std::size_t conv_slots = config.conv.slot_count();
  const std::size_t fc_slots = config.fc.slot_count();

  std::vector<std::size_t> conv_victims;
  std::vector<std::size_t> fc_victims;
  switch (scenario.target) {
    case AttackTarget::kConvBlock:
      conv_victims = sample_banks(
          config.conv,
          static_cast<std::size_t>(std::llround(
              scenario.fraction * static_cast<double>(conv_slots))),
          rng);
      break;
    case AttackTarget::kFcBlock:
      fc_victims = sample_banks(
          config.fc,
          static_cast<std::size_t>(std::llround(
              scenario.fraction * static_cast<double>(fc_slots))),
          rng);
      break;
    case AttackTarget::kBothBlocks:
      // A uniform draw over the union of MRs lands `fraction` of each
      // block's slots in expectation; sample each block at that rate.
      conv_victims = sample_banks(
          config.conv,
          static_cast<std::size_t>(std::llround(
              scenario.fraction * static_cast<double>(conv_slots))),
          rng);
      fc_victims = sample_banks(
          config.fc,
          static_cast<std::size_t>(std::llround(
              scenario.fraction * static_cast<double>(fc_slots))),
          rng);
      break;
  }

  HotspotPlan plan;
  auto add_trojans = [&plan](const accel::BlockDims& dims,
                             accel::BlockKind kind,
                             const std::vector<std::size_t>& victims) {
    for (std::size_t flat : victims) {
      HardwareTrojan trojan;
      trojan.payload = PayloadKind::kHeaterOverdrive;
      trojan.victim_bank = accel::bank_from_flat(dims, kind, flat);
      trojan.victim_slot = accel::SlotAddress{
          kind, trojan.victim_bank.unit, trojan.victim_bank.bank, 0};
      plan.trojans.push_back(trojan);
    }
  };
  add_trojans(config.conv, accel::BlockKind::kConv, conv_victims);
  add_trojans(config.fc, accel::BlockKind::kFc, fc_victims);
  plan.trojans =
      apply_trigger_model(std::move(plan.trojans), attack.trigger, rng);

  // Re-collect triggered victims per block for the thermal solve.
  conv_victims.clear();
  fc_victims.clear();
  for (const auto& trojan : plan.trojans) {
    const accel::BlockDims& dims = config.block(trojan.victim_bank.block);
    const std::size_t flat = accel::bank_flat_index(dims, trojan.victim_bank);
    if (trojan.victim_bank.block == accel::BlockKind::kConv) {
      conv_victims.push_back(flat);
    } else {
      fc_victims.push_back(flat);
    }
  }

  if (!conv_victims.empty()) {
    plan.block_states.push_back(
        solve_block(config, accel::BlockKind::kConv, conv_victims, attack));
  }
  if (!fc_victims.empty()) {
    plan.block_states.push_back(
        solve_block(config, accel::BlockKind::kFc, fc_victims, attack));
  }
  return plan;
}

}  // namespace safelight::attack
