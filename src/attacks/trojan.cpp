#include "attacks/trojan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace safelight::attack {

std::string to_string(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kActuationPark: return "actuation";
    case PayloadKind::kHeaterOverdrive: break;
  }
  return "hotspot";
}

void TriggerModel::validate() const {
  require(trigger_probability >= 0.0 && trigger_probability <= 1.0,
          "TriggerModel: probability must be in [0,1]");
}

std::vector<HardwareTrojan> apply_trigger_model(
    std::vector<HardwareTrojan> population, const TriggerModel& model,
    Rng& rng) {
  model.validate();
  if (model.trigger_probability >= 1.0) {
    for (auto& trojan : population) trojan.triggered = true;
    return population;
  }
  std::vector<HardwareTrojan> triggered;
  for (auto& trojan : population) {
    trojan.triggered = rng.bernoulli(model.trigger_probability);
    if (trojan.triggered) triggered.push_back(trojan);
  }
  return triggered;
}

}  // namespace safelight::attack
