// MR actuation attack planning (paper §III.B.1).
//
// HTs embedded in the EO signal-actuation circuits force individual MRs into
// an "off-resonance" state. Victims are individual MRs sampled uniformly at
// random over the targeted block(s); the payload parks the ring a
// configurable fraction of a channel spacing away from its carrier, which
// drives its through-port transmission toward 1 — the mapped weight sticks
// near its maximum magnitude (paper Fig. 4).
#pragma once

#include <vector>

#include "accel/arch.hpp"
#include "attacks/scenario.hpp"
#include "attacks/trojan.hpp"

namespace safelight::attack {

struct ActuationConfig {
  /// Park distance as a fraction of the bank's channel spacing.
  double park_spacing_fraction = 0.5;
  TriggerModel trigger{};
};

/// Samples the victim slots for an actuation scenario. The scenario's
/// fraction applies to the MR population of the targeted block(s); for
/// kBothBlocks it applies to the union. Placement is deterministic in
/// scenario.seed. Throws on non-actuation scenarios.
std::vector<HardwareTrojan> plan_actuation_attack(
    const accel::AcceleratorConfig& config, const AttackScenario& scenario,
    const ActuationConfig& attack = {});

/// The transmission an attacked ring presents to its own carrier when
/// parked, and the resulting stuck weight magnitude after electronic decode
/// (used by the fast corruption path; validated against MrBank in tests).
double parked_transmission(const accel::AcceleratorConfig& config,
                           accel::BlockKind block,
                           double park_spacing_fraction);
double stuck_weight_magnitude(const accel::AcceleratorConfig& config,
                              accel::BlockKind block,
                              double park_spacing_fraction);

}  // namespace safelight::attack
