// ADC hardware-trojan attack (paper §II.C).
//
// "The ADC converts the final partial sum of the dot product computed in a
// row of MR banks. Accordingly, attacking the ADCs in an ONN accelerator
// would impact and change several outputs during DNN execution and can
// result in significant accuracy losses at inference time."
//
// SafeLight models a compromised ADC as a payload applied to the digitized
// partial sums of a victim subset of VDP rows. Because rows are time-shared
// across a layer's output neurons, a victim ADC corrupts a fixed stride of
// every mapped layer's outputs. Supported payloads follow the analog-trojan
// literature ([22], [23]): stuck-at-full-scale, sign flip, and MSB flip.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/arch.hpp"
#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace safelight::attack {

enum class AdcPayload {
  kStuckFullScale,  // converter output pinned to + full scale
  kSignFlip,        // comparator polarity inverted
  kMsbFlip,         // most-significant bit inverted
};

/// Human-readable payload name ("stuck-full-scale" / "sign-flip" / ...).
std::string to_string(AdcPayload payload);

/// Attack strength: which fraction of ADC rows is compromised, with what
/// payload, sampled deterministically from `seed`.
struct AdcAttackConfig {
  double fraction = 0.0;   // fraction of ADC rows compromised
  AdcPayload payload = AdcPayload::kMsbFlip;
  std::uint64_t seed = 1;

  bool enabled() const { return fraction > 0.0; }
  void validate() const;
};

/// Plans which ADC rows (one per VDP bank row) are compromised, per block.
struct AdcAttackPlan {
  std::vector<std::size_t> conv_rows;  // victim row indices in CONV block
  std::vector<std::size_t> fc_rows;    // victim row indices in FC block
  AdcPayload payload = AdcPayload::kMsbFlip;

  const std::vector<std::size_t>& rows(accel::BlockKind kind) const {
    return kind == accel::BlockKind::kConv ? conv_rows : fc_rows;
  }
};

/// Samples the victim ADC rows per block; deterministic in attack.seed.
AdcAttackPlan plan_adc_attack(const accel::AcceleratorConfig& config,
                              const AdcAttackConfig& attack);

/// Applies the payload to the outputs of one mapped layer (in place).
/// `t` is the layer's post-accumulation activation tensor [N, C, ...] or
/// [N, F]; victim rows hit output channels `c` with
/// c % rows_in_block in victim set (time-sharing stride model).
/// `full_scale` is the ADC full-scale magnitude for this tensor.
void apply_adc_payload(nn::Tensor& t, const AdcAttackPlan& plan,
                       accel::BlockKind kind, std::size_t rows_in_block,
                       float full_scale);

}  // namespace safelight::attack
