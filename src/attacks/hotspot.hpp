// Thermal hotspot attack planning (paper §III.B.2, Figs. 5 and 6).
//
// HTs in the TO tuning circuits overdrive in-resonator photoconductive
// heaters of whole MR banks. The plan:
//  1. sample victim banks (bank-granular, enough banks to cover the
//     scenario's MR fraction),
//  2. inject the heater overdrive power into the victim banks' cells of the
//     block floorplan and solve the steady-state thermal field,
//  3. convert each bank's temperature rise (minus the tuning circuit's
//     compensation capacity) into an Eq. 2 resonance shift.
// The temperature field spreads into neighboring banks, so hotspot attacks
// corrupt *clusters* of parameters — the reason they dominate actuation
// attacks in the paper's results.
#pragma once

#include <vector>

#include "accel/arch.hpp"
#include "attacks/scenario.hpp"
#include "attacks/trojan.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/solver.hpp"

namespace safelight::attack {

struct HotspotConfig {
  /// Total heater overdrive power dumped into each victim bank [mW]
  /// ("multiple compromised heaters" per bank, paper Fig. 6).
  double heater_overdrive_mw = 45.0;
  /// Temperature swing the per-MR tuning loop can still compensate [K].
  double tuning_compensation_k = 3.0;
  thermal::SolverConfig solver{};
  TriggerModel trigger{};
};

/// Thermal outcome for one block: per-bank temperature rise (flat bank
/// index order) plus the solved grid for heatmap rendering.
struct BlockThermalState {
  accel::BlockKind block = accel::BlockKind::kConv;
  std::size_t banks_per_unit = 0;    // for BankAddress -> flat conversion
  std::vector<double> bank_delta_t;  // [bank_count], Kelvin above ambient
  thermal::ThermalGrid grid;         // solved field

  explicit BlockThermalState(thermal::ThermalGrid g)
      : grid(std::move(g)) {}
};

struct HotspotPlan {
  std::vector<HardwareTrojan> trojans;         // victim banks
  std::vector<BlockThermalState> block_states; // one per affected block

  /// Effective (post-compensation) delta-T of a bank; 0 when unaffected.
  double effective_delta_t(const accel::BankAddress& bank,
                           double compensation_k) const;

  const BlockThermalState* state_for(accel::BlockKind block) const;
};

/// Plans a hotspot attack: victim sampling, thermal solve, per-bank rises.
/// Deterministic in scenario.seed. Throws on non-hotspot scenarios.
HotspotPlan plan_hotspot_attack(const accel::AcceleratorConfig& config,
                                const AttackScenario& scenario,
                                const HotspotConfig& attack = {});

}  // namespace safelight::attack
