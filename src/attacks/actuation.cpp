#include "attacks/actuation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safelight::attack {

namespace {

std::size_t victims_for(double fraction, std::size_t population) {
  return static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(population)));
}

}  // namespace

std::vector<HardwareTrojan> plan_actuation_attack(
    const accel::AcceleratorConfig& config, const AttackScenario& scenario,
    const ActuationConfig& attack) {
  scenario.validate();
  require(scenario.vector == AttackVector::kActuation,
          "plan_actuation_attack: scenario is not an actuation attack");
  require(attack.park_spacing_fraction > 0.0,
          "ActuationConfig: park fraction must be positive");

  const std::size_t conv_slots = config.conv.slot_count();
  const std::size_t fc_slots = config.fc.slot_count();

  std::size_t population = 0;
  switch (scenario.target) {
    case AttackTarget::kConvBlock: population = conv_slots; break;
    case AttackTarget::kFcBlock: population = fc_slots; break;
    case AttackTarget::kBothBlocks: population = conv_slots + fc_slots; break;
  }
  const std::size_t victim_count =
      victims_for(scenario.fraction, population);

  Rng rng(seed_combine(scenario.seed, 0xAC7, population));
  const std::vector<std::size_t> picks =
      rng.sample_without_replacement(population, victim_count);

  std::vector<HardwareTrojan> trojans;
  trojans.reserve(picks.size());
  for (std::size_t pick : picks) {
    HardwareTrojan trojan;
    trojan.payload = PayloadKind::kActuationPark;
    // In the union population, CONV slots come first, then FC slots.
    if (scenario.target == AttackTarget::kFcBlock ||
        (scenario.target == AttackTarget::kBothBlocks && pick >= conv_slots)) {
      const std::size_t flat =
          scenario.target == AttackTarget::kFcBlock ? pick : pick - conv_slots;
      trojan.victim_slot =
          accel::slot_from_flat(config.fc, accel::BlockKind::kFc, flat);
    } else {
      trojan.victim_slot =
          accel::slot_from_flat(config.conv, accel::BlockKind::kConv, pick);
    }
    trojan.victim_bank = accel::bank_of_slot(trojan.victim_slot);
    trojans.push_back(trojan);
  }
  return apply_trigger_model(std::move(trojans), attack.trigger, rng);
}

double parked_transmission(const accel::AcceleratorConfig& config,
                           accel::BlockKind block,
                           double park_spacing_fraction) {
  const phot::WdmGrid grid = config.bank_grid(block);
  phot::Microring ring(config.geometry(block), grid.wavelength(0));
  ring.set_detuning_nm(park_spacing_fraction * grid.spacing_nm());
  return ring.transmission(grid.wavelength(0));
}

double stuck_weight_magnitude(const accel::AcceleratorConfig& config,
                              accel::BlockKind block,
                              double park_spacing_fraction) {
  const double t = parked_transmission(config, block, park_spacing_fraction);
  return std::max(0.0, config.encoding.to_magnitude(t));
}

}  // namespace safelight::attack
