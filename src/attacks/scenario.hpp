// Attack scenario descriptors (paper §IV).
//
// The susceptibility analysis sweeps nine cases per attack vector: targeting
// the CONV block, the FC block, or the whole accelerator, at 1 %, 5 % and
// 10 % attack intensity, each with 10 uniformly distributed random trojan
// placements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace safelight::attack {

/// Physical attack mechanism (paper §III.B): EO actuation-circuit parking
/// of individual MRs vs TO heater-overdrive thermal hotspots.
enum class AttackVector { kActuation, kHotspot };

/// Which accelerator block the trojan population is implanted in.
enum class AttackTarget { kConvBlock, kFcBlock, kBothBlocks };

/// Human-readable names ("actuation"/"hotspot", "CONV"/"FC"/"CONV+FC").
std::string to_string(AttackVector vector);
std::string to_string(AttackTarget target);

/// Inverse of to_string, for wire formats (the distributed-sweep protocol
/// ships scenarios by name). Throw std::invalid_argument listing the valid
/// names on anything else.
AttackVector vector_from_string(const std::string& name);
AttackTarget target_from_string(const std::string& name);

/// One attack case of the paper's §IV grid.
struct AttackScenario {
  AttackVector vector = AttackVector::kActuation;
  AttackTarget target = AttackTarget::kBothBlocks;
  double fraction = 0.0;   // fraction of the targeted MR population
  std::uint64_t seed = 0;  // trojan placement seed

  void validate() const;

  /// Stable identifier, e.g. "hotspot/CONV+FC/f0.05/s3" — used as cache key.
  std::string id() const;
};

/// Cartesian scenario grid: vectors x targets x fractions x seeds.
/// Seeds are 0..seed_count-1 combined with base_seed.
std::vector<AttackScenario> scenario_grid(
    const std::vector<AttackVector>& vectors,
    const std::vector<AttackTarget>& targets,
    const std::vector<double>& fractions, std::size_t seed_count,
    std::uint64_t base_seed = 1000);

/// The paper's default grid: both vectors, all three targets,
/// {1 %, 5 %, 10 %}, `seed_count` placements each.
std::vector<AttackScenario> paper_scenario_grid(std::size_t seed_count = 10,
                                                std::uint64_t base_seed = 1000);

}  // namespace safelight::attack
