// Composite & adaptive attack campaigns (beyond the paper's §IV grid).
//
// The paper sweeps one attack vector at a time at a fixed intensity. A real
// adversary is under no such constraint: SecONN-style concurrent attacks
// combine mechanisms (actuation trojans in CONV *and* a hotspot in FC) and
// modulate them over time to slip under runtime monitors — start below a
// range monitor's calibrated envelope, stay dormant while the defender
// samples, then burst. This module describes both dimensions:
//   * CompositeScenario — several AttackScenarios applied to one deployment
//     in a single corruption pass, with per-component fractions and a
//     placement policy (independent overlapping placements vs. block-
//     disjoint components);
//   * CampaignSchedule — a timeline of phases (ramp-up, burst, dormant /
//     evasive intervals), each holding the composite active during it and
//     the number of detector checks it spans.
// core/campaign_eval.hpp sweeps schedules through the parallel pipeline and
// scores the defense suite's per-phase detection latency and evasion rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/mapping.hpp"
#include "attacks/corruption.hpp"
#include "attacks/scenario.hpp"

namespace safelight::attack {

/// How a composite's components share the MR population.
///   kOverlapping     — components are placed independently; two components
///                      may victimize the same MRs (last-applied wins under
///                      the canonical application order).
///   kDisjointBlocks  — each accelerator block (CONV, FC) may be claimed by
///                      at most one component; validate() rejects composites
///                      whose components collide on a block. This is the
///                      "divide the accelerator" attacker: full intensity on
///                      disjoint surfaces, no wasted trojans.
enum class PlacementPolicy { kOverlapping, kDisjointBlocks };

/// Human-readable names ("overlapping" / "disjoint").
std::string to_string(PlacementPolicy policy);

/// Several attack scenarios stacked on one deployment. Corruption applies
/// every component in one pass (canonical component order, so evaluation is
/// invariant to the order components were listed in).
struct CompositeScenario {
  std::vector<AttackScenario> components;
  PlacementPolicy placement = PlacementPolicy::kOverlapping;

  /// Throws when there is no component, any component is invalid or has
  /// fraction == 0 (a zero-fraction component is always a mistake in a
  /// composite: it contributes nothing but splits the cache), or the
  /// placement policy is violated.
  void validate() const;

  /// Stable identifier used as a cache key, e.g.
  /// "composite[actuation/CONV/f0.05/s3+hotspot/FC/f0.1/s7]/ov".
  /// Invariant under component reordering (components are sorted by id).
  std::string id() const;

  /// Components sorted by id — the canonical application order.
  std::vector<AttackScenario> canonical_components() const;
};

/// Applies every component of `composite` to `mapping`'s model in one pass,
/// in canonical component order, and returns the aggregated corruption
/// statistics (field-wise sums over the components). Deterministic in the
/// component seeds; validates the composite first.
CorruptionStats apply_composite(accel::WeightStationaryMapping& mapping,
                                const CompositeScenario& composite,
                                const CorruptionConfig& config = {});

/// `composite` with every component fraction multiplied by `factor`
/// (clamped to [0, 1]). The building block of ramp-up schedules.
CompositeScenario scaled(const CompositeScenario& composite, double factor);

/// One interval of a campaign timeline. A phase with no components is
/// dormant: the deployment is clean while the defender keeps checking (its
/// flags count as false positives, not detections).
struct CampaignPhase {
  std::string name;           // "dormant" / "ramp1" / "burst" ...
  CompositeScenario attack{}; // empty components = dormant phase
  std::size_t checks = 1;     // detector checks this phase spans

  bool active() const { return !attack.components.empty(); }
};

/// A timeline of scenario phases — the adaptive attacker. Each phase's
/// composite is applied to a clean deployment (corruption does not
/// accumulate across phases: the attacker re-triggers its trojan population
/// per phase, which is what the per-phase fractions describe).
struct CampaignSchedule {
  std::string name;  // human-readable label, part of id()
  std::vector<CampaignPhase> phases;

  /// Throws when the name is empty, there is no phase, a phase has no name
  /// or zero checks, or an active phase's composite is invalid.
  void validate() const;

  /// Stable identifier, "campaign/<name>/<fp8>" with the fingerprint mixed
  /// over every phase (name, checks, component ids, placement) — so two
  /// schedules sharing a label but differing anywhere never share cached
  /// results.
  std::string id() const;

  std::size_t total_checks() const;
  std::size_t active_phase_count() const;
  /// Index of the first active phase; phases.size() when all are dormant.
  std::size_t first_active_phase() const;
};

/// Ramp-up campaign: `scales` successive phases of `composite` scaled by
/// each factor (e.g. {0.02, 0.1, 0.5, 1.0} — start far below the monitors'
/// envelopes, escalate to full intensity).
CampaignSchedule ramp_campaign(const std::string& name,
                               const CompositeScenario& composite,
                               const std::vector<double>& scales,
                               std::size_t checks_per_phase = 1);

/// Burst campaign: `lead_dormant` dormant phases, one burst phase of
/// `composite`, `trail_dormant` dormant phases (the attacker that waits out
/// the defender's sampling schedule).
CampaignSchedule burst_campaign(const std::string& name,
                                const CompositeScenario& composite,
                                std::size_t lead_dormant,
                                std::size_t trail_dormant,
                                std::size_t burst_checks = 1);

/// The standard red-team set the campaign bench sweeps: a cross-block
/// disjoint composite ramp, a stealth-then-burst composite, and a dormant /
/// burst alternation. Placement seeds derive from `base_seed`.
std::vector<CampaignSchedule> standard_campaigns(std::uint64_t base_seed = 1000);

}  // namespace safelight::attack
