#include "attacks/reference_exec.hpp"

#include <algorithm>
#include <cmath>

#include "attacks/corruption.hpp"
#include "common/error.hpp"

namespace safelight::attack {

std::vector<double> reference_fc_forward(
    const accel::WeightStationaryMapping& mapping, nn::Linear& layer,
    const std::vector<double>& x, const AttackScenario& scenario,
    const CorruptionConfig& config) {
  const accel::AcceleratorConfig& accel_config = mapping.config();
  const accel::BlockDims& dims = accel_config.fc;
  const std::size_t in_features = layer.in_features();
  const std::size_t out_features = layer.out_features();
  const std::size_t weight_count = in_features * out_features;

  require(x.size() == in_features,
          "reference_fc_forward: activation length mismatch");
  require(mapping.weight_count(accel::BlockKind::kFc) == weight_count,
          "reference_fc_forward: mapping does not cover exactly this layer");
  require(mapping.passes(accel::BlockKind::kFc) == 1,
          "reference_fc_forward: layer must fit one FC pass");
  require(mapping.weight_count(accel::BlockKind::kConv) == 0,
          "reference_fc_forward: model must have no conv weights");

  const float scale = mapping.scale_of(&layer.weight());
  const phot::WdmGrid grid = accel_config.bank_grid(accel::BlockKind::kFc);
  const phot::MrGeometry& geometry = accel_config.fc_mr;
  const std::size_t mrs = dims.mrs_per_bank;
  const std::size_t used_banks = (weight_count + mrs - 1) / mrs;

  // Attack plans (device level).
  std::vector<std::vector<std::size_t>> parked(used_banks);
  if (scenario.vector == AttackVector::kActuation &&
      scenario.fraction > 0.0) {
    for (const HardwareTrojan& trojan :
         plan_actuation_attack(accel_config, scenario, config.actuation)) {
      if (trojan.victim_slot.block != accel::BlockKind::kFc) continue;
      const std::size_t bank_flat =
          accel::bank_flat_index(dims, accel::bank_of_slot(trojan.victim_slot));
      if (bank_flat < used_banks) {
        parked[bank_flat].push_back(trojan.victim_slot.mr);
      }
    }
  }
  std::vector<double> bank_delta_t(used_banks, 0.0);
  if (scenario.vector == AttackVector::kHotspot && scenario.fraction > 0.0) {
    const HotspotPlan plan =
        plan_hotspot_attack(accel_config, scenario, config.hotspot);
    const BlockThermalState* state = plan.state_for(accel::BlockKind::kFc);
    if (state != nullptr) {
      for (std::size_t b = 0; b < used_banks; ++b) {
        bank_delta_t[b] =
            std::max(0.0, state->bank_delta_t[b] -
                              config.hotspot.tuning_compensation_k);
      }
    }
  }

  // Per-bank device evaluation.
  std::vector<double> y(out_features, 0.0);
  const float* w = layer.weight().value.data();
  for (std::size_t b = 0; b < used_banks; ++b) {
    std::vector<double> normalized(mrs, 0.0);
    for (std::size_t j = 0; j < mrs; ++j) {
      const std::size_t flat = b * mrs + j;
      if (flat >= weight_count) break;
      normalized[j] =
          std::clamp(static_cast<double>(w[flat]) / scale, -1.0, 1.0);
    }
    phot::MrBank bank(geometry, grid, accel_config.encoding);
    bank.set_weights(normalized);
    for (std::size_t mr : parked[b]) {
      bank.park_off_resonance(
          mr, config.actuation.park_spacing_fraction * grid.spacing_nm());
    }
    if (bank_delta_t[b] > 0.0) {
      for (std::size_t j = 0; j < mrs; ++j) {
        bank.set_temperature_delta(j, bank_delta_t[b]);
      }
    }
    const std::vector<double> effective = bank.effective_weights();
    for (std::size_t j = 0; j < mrs; ++j) {
      const std::size_t flat = b * mrs + j;
      if (flat >= weight_count) break;
      const std::size_t out = flat / in_features;
      const std::size_t in = flat % in_features;
      y[out] += effective[j] * static_cast<double>(scale) * x[in];
    }
  }
  return y;
}

}  // namespace safelight::attack
