#include "attacks/corruption.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "photonics/constants.hpp"

namespace safelight::attack {

void QuarantineConfig::validate() const {
  require(detect_threshold_k >= 0.0,
          "QuarantineConfig: detection threshold must be >= 0");
  require(spare_bank_fraction >= 0.0 && spare_bank_fraction <= 1.0,
          "QuarantineConfig: spare fraction must be in [0,1]");
}

namespace {

constexpr float kChangeEpsilon = 1e-9f;

CorruptionStats apply_actuation(accel::WeightStationaryMapping& mapping,
                                const AttackScenario& scenario,
                                const CorruptionConfig& config) {
  const accel::AcceleratorConfig& accel_config = mapping.config();
  const std::vector<HardwareTrojan> trojans =
      plan_actuation_attack(accel_config, scenario, config.actuation);

  CorruptionStats stats;
  stats.trojan_count = trojans.size();
  stats.attacked_mrs = trojans.size();

  // Stuck magnitude per block (CONV / FC rings have different linewidths).
  const double stuck_conv = stuck_weight_magnitude(
      accel_config, accel::BlockKind::kConv,
      config.actuation.park_spacing_fraction);
  const double stuck_fc = stuck_weight_magnitude(
      accel_config, accel::BlockKind::kFc,
      config.actuation.park_spacing_fraction);

  for (const HardwareTrojan& trojan : trojans) {
    const double stuck = trojan.victim_slot.block == accel::BlockKind::kConv
                             ? stuck_conv
                             : stuck_fc;
    for (const accel::WeightRef& ref :
         mapping.weights_on_slot(trojan.victim_slot)) {
      const float scale = mapping.scale_of(ref.param);
      const float old_value = ref.read();
      const float sign = old_value < 0.0f ? -1.0f : 1.0f;
      const float corrupted = sign * static_cast<float>(stuck) * scale;
      if (std::abs(corrupted - old_value) > kChangeEpsilon) {
        ref.write(corrupted);
        ++stats.corrupted_weights;
      }
    }
  }
  return stats;
}

CorruptionStats apply_hotspot(accel::WeightStationaryMapping& mapping,
                              const AttackScenario& scenario,
                              const CorruptionConfig& config) {
  const accel::AcceleratorConfig& accel_config = mapping.config();
  const HotspotPlan plan =
      plan_hotspot_attack(accel_config, scenario, config.hotspot);

  CorruptionStats stats;
  stats.trojan_count = plan.trojans.size();
  stats.attacked_banks = plan.trojans.size();

  for (const BlockThermalState& state : plan.block_states) {
    const accel::BlockKind kind = state.block;
    const accel::BlockDims& dims = accel_config.block(kind);
    const phot::MrGeometry& geometry = accel_config.geometry(kind);
    const phot::WdmGrid grid = accel_config.bank_grid(kind);

    // Minimum delta-T that produces a significant resonance shift.
    const phot::Microring reference(geometry, accel_config.center_wavelength_nm);
    const double shift_per_k = reference.thermal_shift_nm(1.0);
    const double min_delta_t = config.shift_significance_fwhm *
                               reference.fwhm_nm() / shift_per_k;

    // Hardware mitigation: thermal sentinels quarantine the hottest banks
    // (re-issued on spare capacity), limited by the spare budget. Only
    // banks that actually serve weights consume budget — the remap
    // controller knows the mapping occupancy.
    const std::size_t mapped_count = mapping.weight_count(kind);
    auto bank_carries_weights = [&](std::size_t flat) {
      return mapped_count >= dims.slot_count() ||
             flat * dims.mrs_per_bank < mapped_count;
    };
    std::unordered_set<std::size_t> quarantined;
    if (config.quarantine.enabled) {
      config.quarantine.validate();
      std::vector<std::pair<double, std::size_t>> detected;
      for (std::size_t flat = 0; flat < dims.bank_count(); ++flat) {
        if (bank_carries_weights(flat) &&
            state.bank_delta_t[flat] >=
                config.quarantine.detect_threshold_k) {
          detected.emplace_back(state.bank_delta_t[flat], flat);
        }
      }
      std::sort(detected.rbegin(), detected.rend());
      const auto budget = static_cast<std::size_t>(
          std::llround(config.quarantine.spare_bank_fraction *
                       static_cast<double>(dims.bank_count())));
      for (std::size_t i = 0; i < std::min(budget, detected.size()); ++i) {
        quarantined.insert(detected[i].second);
      }
      stats.quarantined_banks += quarantined.size();
    }

    for (std::size_t flat = 0; flat < dims.bank_count(); ++flat) {
      if (quarantined.count(flat) != 0) continue;
      const double delta_t = std::max(
          0.0, state.bank_delta_t[flat] - config.hotspot.tuning_compensation_k);
      if (delta_t < min_delta_t) continue;

      const accel::BankAddress addr = accel::bank_from_flat(dims, kind, flat);
      const auto pass_groups = mapping.bank_weights(addr);
      if (pass_groups.empty()) continue;  // no weights live on this bank
      ++stats.thermally_hit_banks;
      stats.attacked_mrs += dims.mrs_per_bank;

      phot::MrBank bank(geometry, grid, accel_config.encoding);
      for (const auto& group : pass_groups) {
        // Normalized signed weights for this pass (missing slots -> 0).
        std::vector<double> normalized(dims.mrs_per_bank, 0.0);
        for (std::size_t mr = 0; mr < group.size(); ++mr) {
          if (group[mr].param == nullptr) continue;
          const float scale = mapping.scale_of(group[mr].param);
          normalized[mr] = std::clamp(
              static_cast<double>(group[mr].read()) / scale, -1.0, 1.0);
        }
        bank.set_weights(normalized);
        for (std::size_t mr = 0; mr < dims.mrs_per_bank; ++mr) {
          bank.set_temperature_delta(mr, delta_t);
        }
        const std::vector<double> effective = bank.effective_weights();
        for (std::size_t mr = 0; mr < group.size(); ++mr) {
          if (group[mr].param == nullptr) continue;
          const float scale = mapping.scale_of(group[mr].param);
          const float corrupted =
              static_cast<float>(effective[mr]) * scale;
          if (std::abs(corrupted - group[mr].read()) > kChangeEpsilon) {
            group[mr].write(corrupted);
            ++stats.corrupted_weights;
          }
        }
      }
    }
  }
  return stats;
}

}  // namespace

CorruptionStats apply_attack(accel::WeightStationaryMapping& mapping,
                             const AttackScenario& scenario,
                             const CorruptionConfig& config) {
  scenario.validate();
  require(config.shift_significance_fwhm >= 0.0,
          "CorruptionConfig: significance threshold must be >= 0");
  if (scenario.fraction == 0.0) return {};  // explicit no-op
  switch (scenario.vector) {
    case AttackVector::kActuation:
      return apply_actuation(mapping, scenario, config);
    case AttackVector::kHotspot: break;
  }
  return apply_hotspot(mapping, scenario, config);
}

std::string config_fingerprint(const CorruptionConfig& config) {
  Fingerprint fp;
  fp.mix_double(config.actuation.park_spacing_fraction)
      .mix_double(config.actuation.trigger.trigger_probability)
      .mix_double(config.hotspot.heater_overdrive_mw)
      .mix_double(config.hotspot.tuning_compensation_k)
      .mix_double(config.hotspot.trigger.trigger_probability)
      .mix_double(config.hotspot.solver.g_lateral_w_per_k)
      .mix_double(config.hotspot.solver.g_sink_w_per_k)
      .mix_double(config.hotspot.solver.sor_omega)
      .mix_u64(config.hotspot.solver.max_iterations)
      .mix_double(config.hotspot.solver.tolerance_k * 1e6)  // sub-micro-K
      .mix_u64(config.quarantine.enabled ? 1 : 0)
      .mix_double(config.quarantine.detect_threshold_k)
      .mix_double(config.quarantine.spare_bank_fraction)
      .mix_double(config.shift_significance_fwhm);
  return fp.hex8();
}

}  // namespace safelight::attack
