#include "attacks/campaign.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fingerprint.hpp"

namespace safelight::attack {

std::string to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kOverlapping: return "overlapping";
    case PlacementPolicy::kDisjointBlocks: break;
  }
  return "disjoint";
}

void CompositeScenario::validate() const {
  require(!components.empty(),
          "CompositeScenario: need at least one component");
  bool conv_claimed = false;
  bool fc_claimed = false;
  for (const AttackScenario& component : components) {
    component.validate();
    require(component.fraction > 0.0,
            "CompositeScenario: zero-fraction component '" + component.id() +
                "' (drop it instead)");
    if (placement == PlacementPolicy::kDisjointBlocks) {
      const bool wants_conv = component.target != AttackTarget::kFcBlock;
      const bool wants_fc = component.target != AttackTarget::kConvBlock;
      require(!(wants_conv && conv_claimed) && !(wants_fc && fc_claimed),
              "CompositeScenario: disjoint placement violated — component '" +
                  component.id() + "' targets an already-claimed block");
      conv_claimed = conv_claimed || wants_conv;
      fc_claimed = fc_claimed || wants_fc;
    }
  }
}

std::vector<AttackScenario> CompositeScenario::canonical_components() const {
  std::vector<AttackScenario> sorted = components;
  std::sort(sorted.begin(), sorted.end(),
            [](const AttackScenario& a, const AttackScenario& b) {
              return a.id() < b.id();
            });
  return sorted;
}

std::string CompositeScenario::id() const {
  std::string joined;
  for (const AttackScenario& component : canonical_components()) {
    if (!joined.empty()) joined += '+';
    joined += component.id();
  }
  return "composite[" + joined + "]/" +
         (placement == PlacementPolicy::kOverlapping ? "ov" : "dj");
}

CorruptionStats apply_composite(accel::WeightStationaryMapping& mapping,
                                const CompositeScenario& composite,
                                const CorruptionConfig& config) {
  composite.validate();
  CorruptionStats total;
  for (const AttackScenario& component : composite.canonical_components()) {
    const CorruptionStats stats = apply_attack(mapping, component, config);
    total.trojan_count += stats.trojan_count;
    total.attacked_mrs += stats.attacked_mrs;
    total.attacked_banks += stats.attacked_banks;
    total.thermally_hit_banks += stats.thermally_hit_banks;
    total.quarantined_banks += stats.quarantined_banks;
    total.corrupted_weights += stats.corrupted_weights;
  }
  return total;
}

CompositeScenario scaled(const CompositeScenario& composite, double factor) {
  require(factor >= 0.0, "scaled: factor must be >= 0");
  CompositeScenario out = composite;
  for (AttackScenario& component : out.components) {
    component.fraction = std::min(1.0, component.fraction * factor);
  }
  return out;
}

void CampaignSchedule::validate() const {
  require(!name.empty(), "CampaignSchedule: need a name");
  require(!phases.empty(), "CampaignSchedule: need at least one phase");
  for (const CampaignPhase& phase : phases) {
    require(!phase.name.empty(), "CampaignSchedule: phase without a name");
    require(phase.checks > 0,
            "CampaignSchedule: phase '" + phase.name + "' spans zero checks");
    if (phase.active()) phase.attack.validate();
  }
}

std::string CampaignSchedule::id() const {
  Fingerprint fp;
  for (const CampaignPhase& phase : phases) {
    fp.mix_bytes(phase.name.data(), phase.name.size());
    fp.mix_u64(phase.checks);
    fp.mix_u64(phase.attack.placement == PlacementPolicy::kOverlapping ? 0
                                                                       : 1);
    // Canonical order: reordered-but-equal composites fingerprint equally.
    for (const AttackScenario& c : phase.attack.canonical_components()) {
      const std::string cid = c.id();
      fp.mix_bytes(cid.data(), cid.size());
    }
  }
  return "campaign/" + name + "/" + fp.hex8();
}

std::size_t CampaignSchedule::total_checks() const {
  std::size_t total = 0;
  for (const CampaignPhase& phase : phases) total += phase.checks;
  return total;
}

std::size_t CampaignSchedule::active_phase_count() const {
  std::size_t active = 0;
  for (const CampaignPhase& phase : phases) {
    if (phase.active()) ++active;
  }
  return active;
}

std::size_t CampaignSchedule::first_active_phase() const {
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (phases[i].active()) return i;
  }
  return phases.size();
}

CampaignSchedule ramp_campaign(const std::string& name,
                               const CompositeScenario& composite,
                               const std::vector<double>& scales,
                               std::size_t checks_per_phase) {
  require(!scales.empty(), "ramp_campaign: need at least one scale");
  CampaignSchedule schedule;
  schedule.name = name;
  schedule.phases.reserve(scales.size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    CampaignPhase phase;
    phase.name = "ramp" + std::to_string(i + 1);
    phase.attack = scaled(composite, scales[i]);
    phase.checks = checks_per_phase;
    schedule.phases.push_back(std::move(phase));
  }
  schedule.validate();
  return schedule;
}

CampaignSchedule burst_campaign(const std::string& name,
                                const CompositeScenario& composite,
                                std::size_t lead_dormant,
                                std::size_t trail_dormant,
                                std::size_t burst_checks) {
  CampaignSchedule schedule;
  schedule.name = name;
  for (std::size_t i = 0; i < lead_dormant; ++i) {
    schedule.phases.push_back({"dormant" + std::to_string(i + 1), {}, 1});
  }
  CampaignPhase burst;
  burst.name = "burst";
  burst.attack = composite;
  burst.checks = burst_checks;
  schedule.phases.push_back(std::move(burst));
  for (std::size_t i = 0; i < trail_dormant; ++i) {
    schedule.phases.push_back(
        {"cooloff" + std::to_string(i + 1), {}, 1});
  }
  schedule.validate();
  return schedule;
}

std::vector<CampaignSchedule> standard_campaigns(std::uint64_t base_seed) {
  // The cross-block disjoint composite: full-strength actuation in CONV
  // stacked with a hotspot in FC — the "divide the accelerator" attacker.
  CompositeScenario cross_block;
  cross_block.placement = PlacementPolicy::kDisjointBlocks;
  cross_block.components.push_back(
      {AttackVector::kActuation, AttackTarget::kConvBlock, 0.10, base_seed});
  cross_block.components.push_back(
      {AttackVector::kHotspot, AttackTarget::kFcBlock, 0.10, base_seed + 1});

  // A single-vector whole-accelerator actuation composite for the evasive
  // ramp: starts at 1/50 of the burst intensity — typically inside every
  // calibrated envelope — and escalates.
  CompositeScenario actuation_all;
  actuation_all.components.push_back(
      {AttackVector::kActuation, AttackTarget::kBothBlocks, 0.10,
       base_seed + 2});

  std::vector<CampaignSchedule> campaigns;
  campaigns.push_back(ramp_campaign("evasive-ramp", actuation_all,
                                    {0.02, 0.1, 0.5, 1.0}));
  campaigns.push_back(
      burst_campaign("stealth-burst", cross_block, /*lead_dormant=*/2,
                     /*trail_dormant=*/1, /*burst_checks=*/2));
  campaigns.push_back(ramp_campaign("cross-block-ramp", cross_block,
                                    {0.1, 0.5, 1.0}));
  return campaigns;
}

}  // namespace safelight::attack
