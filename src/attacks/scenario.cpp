#include "attacks/scenario.hpp"

#include <sstream>

#include "common/error.hpp"

namespace safelight::attack {

std::string to_string(AttackVector vector) {
  switch (vector) {
    case AttackVector::kActuation: return "actuation";
    case AttackVector::kHotspot: break;
  }
  return "hotspot";
}

std::string to_string(AttackTarget target) {
  switch (target) {
    case AttackTarget::kConvBlock: return "CONV";
    case AttackTarget::kFcBlock: return "FC";
    case AttackTarget::kBothBlocks: break;
  }
  return "CONV+FC";
}

AttackVector vector_from_string(const std::string& name) {
  if (name == "actuation") return AttackVector::kActuation;
  if (name == "hotspot") return AttackVector::kHotspot;
  fail_argument("unknown attack vector '" + name +
                "' (valid: actuation, hotspot)");
}

AttackTarget target_from_string(const std::string& name) {
  if (name == "CONV") return AttackTarget::kConvBlock;
  if (name == "FC") return AttackTarget::kFcBlock;
  if (name == "CONV+FC") return AttackTarget::kBothBlocks;
  fail_argument("unknown attack target '" + name +
                "' (valid: CONV, FC, CONV+FC)");
}

void AttackScenario::validate() const {
  require(fraction >= 0.0 && fraction <= 1.0,
          "AttackScenario: fraction must be in [0,1]");
}

std::string AttackScenario::id() const {
  std::ostringstream os;
  os << to_string(vector) << '/' << to_string(target) << "/f" << fraction
     << "/s" << seed;
  return os.str();
}

std::vector<AttackScenario> scenario_grid(
    const std::vector<AttackVector>& vectors,
    const std::vector<AttackTarget>& targets,
    const std::vector<double>& fractions, std::size_t seed_count,
    std::uint64_t base_seed) {
  require(seed_count > 0, "scenario_grid: need at least one seed");
  // fraction == 0 is a valid *descriptor* (apply_attack treats it as an
  // explicit no-op) but never a meaningful grid cell: it would sweep the
  // clean baseline seed_count times under attack ids. Reject it here rather
  // than silently diluting every aggregate with clean rows.
  for (double fraction : fractions) {
    require(fraction > 0.0,
            "scenario_grid: zero-fraction grid cell (use the baseline "
            "evaluation for the clean case)");
  }
  std::vector<AttackScenario> grid;
  grid.reserve(vectors.size() * targets.size() * fractions.size() *
               seed_count);
  for (AttackVector vector : vectors) {
    for (AttackTarget target : targets) {
      for (double fraction : fractions) {
        for (std::size_t s = 0; s < seed_count; ++s) {
          AttackScenario scenario;
          scenario.vector = vector;
          scenario.target = target;
          scenario.fraction = fraction;
          scenario.seed = base_seed + s;
          scenario.validate();
          grid.push_back(scenario);
        }
      }
    }
  }
  return grid;
}

std::vector<AttackScenario> paper_scenario_grid(std::size_t seed_count,
                                                std::uint64_t base_seed) {
  return scenario_grid(
      {AttackVector::kActuation, AttackVector::kHotspot},
      {AttackTarget::kConvBlock, AttackTarget::kFcBlock,
       AttackTarget::kBothBlocks},
      {0.01, 0.05, 0.10}, seed_count, base_seed);
}

}  // namespace safelight::attack
