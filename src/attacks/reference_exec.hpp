// Device-level reference execution of a fully-connected layer under attack.
//
// The experiment fast path corrupts weight tensors through the mapping and
// then runs ordinary GEMM inference. This module is its ground truth: it
// instantiates the *physical* MR banks for the FC-block mapping of a single
// Linear layer, applies the attack payloads photonically (parking the
// actuation victims' rings, heating the hotspot victims' banks) and
// computes the layer output from per-bank dot products. Integration tests
// assert both paths agree — slot arithmetic, pass layout, normalization and
// payload physics all have to line up for that to hold.
#pragma once

#include <vector>

#include "accel/mapping.hpp"
#include "attacks/actuation.hpp"
#include "attacks/corruption.hpp"
#include "attacks/hotspot.hpp"
#include "attacks/scenario.hpp"
#include "nn/linear.hpp"

namespace safelight::attack {

/// Computes y = W_eff * x for the Linear layer mapped by `mapping`
/// (which must map exactly this one layer, in a single FC pass), with the
/// scenario's trojans applied at the device level. Returns the
/// de-normalized output vector of length out_features.
///
/// Restrictions (enforced): the mapping's FC weight count must equal the
/// layer's weight count and fit one pass; the scenario must target the FC
/// block (or be a zero-fraction no-op).
std::vector<double> reference_fc_forward(
    const accel::WeightStationaryMapping& mapping, nn::Linear& layer,
    const std::vector<double>& x, const AttackScenario& scenario,
    const CorruptionConfig& config = {});

}  // namespace safelight::attack
