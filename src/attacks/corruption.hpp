// Applying attack plans to a mapped model (the fast experiment path).
//
// The paper's simulator assesses attacks "by modifying the models'
// parameters based on their mapping to the ONN accelerator" (§IV). This
// module does exactly that, with every corrupted value derived from the
// photonic device model:
//   * actuation victims: the mapped weight snaps to the parked ring's
//     decoded magnitude (≈ stuck-at-max), preserving its electronic sign;
//   * hotspot victims: every thermally shifted bank (victims + neighbors)
//     is pushed through the MrBank transmission model — rings modulate
//     their neighbors' channels and whole weight clusters corrupt at once.
// A weight served by an attacked MR corrupts in *every* mapping pass.
#pragma once

#include "accel/mapping.hpp"
#include "attacks/actuation.hpp"
#include "attacks/hotspot.hpp"
#include "attacks/scenario.hpp"

namespace safelight::attack {

/// Lightweight hardware countermeasure (the paper's §VII "ongoing work"):
/// one thermal-sentinel monitor per VDP unit detects abnormal temperature
/// rises; banks whose rise exceeds the detection threshold are quarantined
/// and their dot products are re-issued on spare banks (modeled as the
/// corruption simply not landing), limited by a spare-capacity budget. The
/// hottest banks are quarantined first (greedy triage).
struct QuarantineConfig {
  bool enabled = false;
  double detect_threshold_k = 8.0;   // sentinel detection threshold
  double spare_bank_fraction = 0.05; // spare capacity per block

  void validate() const;
};

struct CorruptionConfig {
  ActuationConfig actuation{};
  HotspotConfig hotspot{};
  QuarantineConfig quarantine{};
  /// Banks whose Eq. 2 shift is below this fraction of the ring FWHM are
  /// treated as thermally unaffected (transmission change is negligible).
  double shift_significance_fwhm = 0.05;
};

struct CorruptionStats {
  std::size_t trojan_count = 0;
  std::size_t attacked_mrs = 0;       // MRs under direct HT control
  std::size_t attacked_banks = 0;     // hotspot victim banks
  std::size_t thermally_hit_banks = 0;  // victims + heated neighbors
  std::size_t quarantined_banks = 0;  // rescued by the hardware mitigation
  std::size_t corrupted_weights = 0;  // weight scalars actually changed
};

/// Applies `scenario` to `model` (in place) through its mapping.
/// Deterministic in scenario.seed. The mapping's scales must reflect the
/// current (conditioned) weights — construct the mapping after
/// OnnExecutor::condition_weights, or call mapping.refresh_scales().
CorruptionStats apply_attack(accel::WeightStationaryMapping& mapping,
                             const AttackScenario& scenario,
                             const CorruptionConfig& config = {});

/// Short fingerprint over every field of `config` (including the thermal
/// solver knobs). Result caches key their files on it so sweeps with
/// ablated physics never share entries with the default configuration.
std::string config_fingerprint(const CorruptionConfig& config);

}  // namespace safelight::attack
