#include "attacks/adc_attack.hpp"

#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace safelight::attack {

std::string to_string(AdcPayload payload) {
  switch (payload) {
    case AdcPayload::kStuckFullScale: return "stuck-full-scale";
    case AdcPayload::kSignFlip: return "sign-flip";
    case AdcPayload::kMsbFlip: break;
  }
  return "msb-flip";
}

void AdcAttackConfig::validate() const {
  require(fraction >= 0.0 && fraction <= 1.0,
          "AdcAttackConfig: fraction must be in [0,1]");
}

AdcAttackPlan plan_adc_attack(const accel::AcceleratorConfig& config,
                              const AdcAttackConfig& attack) {
  attack.validate();
  AdcAttackPlan plan;
  plan.payload = attack.payload;
  if (!attack.enabled()) return plan;

  Rng rng(seed_combine(attack.seed, 0xADC));
  const std::size_t conv_rows = config.conv.bank_count();
  const std::size_t fc_rows = config.fc.bank_count();
  plan.conv_rows = rng.sample_without_replacement(
      conv_rows, static_cast<std::size_t>(
                     std::llround(attack.fraction *
                                  static_cast<double>(conv_rows))));
  plan.fc_rows = rng.sample_without_replacement(
      fc_rows, static_cast<std::size_t>(
                   std::llround(attack.fraction *
                                static_cast<double>(fc_rows))));
  return plan;
}

void apply_adc_payload(nn::Tensor& t, const AdcAttackPlan& plan,
                       accel::BlockKind kind, std::size_t rows_in_block,
                       float full_scale) {
  require(rows_in_block > 0, "apply_adc_payload: rows_in_block must be > 0");
  require(t.rank() >= 2, "apply_adc_payload: need [N, C, ...] tensor");
  const auto& victim_rows = plan.rows(kind);
  if (victim_rows.empty() || full_scale == 0.0f) return;
  const std::unordered_set<std::size_t> victims(victim_rows.begin(),
                                                victim_rows.end());

  const std::size_t batch = t.dim(0);
  const std::size_t channels = t.dim(1);
  const std::size_t inner = t.numel() / (batch * channels);
  const float half_scale = full_scale * 0.5f;

  for (std::size_t c = 0; c < channels; ++c) {
    if (victims.count(c % rows_in_block) == 0) continue;
    for (std::size_t n = 0; n < batch; ++n) {
      float* slab = t.data() + (n * channels + c) * inner;
      for (std::size_t i = 0; i < inner; ++i) {
        switch (plan.payload) {
          case AdcPayload::kStuckFullScale:
            slab[i] = full_scale;
            break;
          case AdcPayload::kSignFlip:
            slab[i] = -slab[i];
            break;
          case AdcPayload::kMsbFlip:
            // Inverting the MSB of an offset-binary converter shifts the
            // code by half the range, wrapping at the rails.
            slab[i] += slab[i] >= 0.0f ? -half_scale : half_scale;
            break;
        }
      }
    }
  }
}

}  // namespace safelight::attack
