// Hardware-trojan abstraction (paper §II.A: "HTs involve malicious circuits
// with a trigger and a payload; the payload activates when the trigger
// condition is met").
//
// SafeLight models the *payload* effects precisely (actuation parking,
// heater overdrive) and keeps the trigger abstract: the susceptibility
// analysis assumes triggered trojans, and TriggerModel lets ablations study
// partially triggered populations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/slot.hpp"
#include "common/rng.hpp"

namespace safelight::attack {

/// What a triggered trojan does to its victim MR.
enum class PayloadKind {
  kActuationPark,   // EO circuit hijacked: ring parked off-resonance
  kHeaterOverdrive, // TO heater driven far beyond its control setpoint
};

/// Human-readable payload name ("actuation-park" / "heater-overdrive").
std::string to_string(PayloadKind kind);

/// Trigger behaviour of an implanted trojan population.
struct TriggerModel {
  /// Probability that an implanted trojan is actually triggered during the
  /// attack window (1.0 = the paper's always-on analysis).
  double trigger_probability = 1.0;

  void validate() const;
};

/// One implanted trojan instance.
struct HardwareTrojan {
  PayloadKind payload = PayloadKind::kActuationPark;
  accel::SlotAddress victim_slot;  // for actuation payloads
  accel::BankAddress victim_bank;  // for heater payloads
  bool triggered = true;
};

/// Applies the trigger model to a population: returns the triggered subset.
std::vector<HardwareTrojan> apply_trigger_model(
    std::vector<HardwareTrojan> population, const TriggerModel& model,
    Rng& rng);

}  // namespace safelight::attack
