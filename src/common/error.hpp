// Error-handling helpers shared across SafeLight.
//
// SafeLight reports contract violations by throwing std::invalid_argument /
// std::out_of_range and internal invariant failures via SAFELIGHT_ASSERT,
// which throws std::logic_error (tests exercise both paths).
#pragma once

#include <stdexcept>
#include <string>

namespace safelight {

/// Throws std::invalid_argument with a formatted location prefix.
[[noreturn]] inline void fail_argument(const std::string& what) {
  throw std::invalid_argument("safelight: " + what);
}

/// Throws std::logic_error; used for broken internal invariants.
[[noreturn]] inline void fail_invariant(const std::string& what) {
  throw std::logic_error("safelight internal error: " + what);
}

/// Validates a user-supplied precondition.
inline void require(bool cond, const std::string& what) {
  if (!cond) fail_argument(what);
}

}  // namespace safelight

// Invariant check that stays enabled in release builds: the simulator's
// correctness claims (mapping bijectivity, probability mass, ...) are part of
// the public contract, not debug-only niceties.
#define SAFELIGHT_ASSERT(cond, msg)                                   \
  do {                                                                \
    if (!(cond)) ::safelight::fail_invariant((msg));                  \
  } while (false)
