// Deterministic random-number utilities.
//
// Every stochastic component in SafeLight (dataset synthesis, weight init,
// noise-aware training, attack-site sampling) draws from an explicitly seeded
// Rng so that experiments are bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace safelight {

/// Thin wrapper over std::mt19937_64 with convenience draws.
///
/// The wrapper exists so call sites never construct distributions ad hoc with
/// inconsistent parameterizations, and so sub-streams can be forked
/// deterministically (`fork`) without correlating parent and child streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw scaled to N(mean, stddev^2).
  double gaussian(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Selects k distinct indices from [0, n) uniformly at random
  /// (partial Fisher-Yates; O(n) memory, O(n) time).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Deterministically derives an independent child stream. Uses splitmix64
  /// on (current state draw, salt) so forks with different salts diverge.
  Rng fork(std::uint64_t salt);

  /// Raw 64-bit draw, exposed for hashing/seeding purposes.
  std::uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// splitmix64 hash step; used to decorrelate seeds derived from small integers.
std::uint64_t splitmix64(std::uint64_t x);

/// Combines a base seed with stream identifiers into a well-mixed seed.
std::uint64_t seed_combine(std::uint64_t base, std::uint64_t a,
                           std::uint64_t b = 0, std::uint64_t c = 0);

}  // namespace safelight
