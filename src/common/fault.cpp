#include "common/fault.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <random>

#include "common/config.hpp"
#include "common/error.hpp"

namespace safelight::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// All mutable subsystem state behind one mutex. Only touched when armed;
/// the disarmed fast path never takes the lock (see ptp()).
struct State {
  FaultConfig config;
  std::uint64_t matched_hits = 0;
  /// kUniformOverRun: the length drawn at init() time.
  std::uint64_t drawn_run_length = 0;
  std::mt19937_64 rng{1};
  /// Ordered by name so report() is stable across runs.
  std::map<std::string, std::uint64_t> hits;
  std::mutex mutex;
};

State& state() {
  static State s;
  return s;
}

[[noreturn]] void pull_the_plug(const char* point, std::uint64_t hit_number) {
  // stderr only, flushed explicitly: stdout may hold half a table that a
  // real power cut would also have lost.
  std::fprintf(stderr,
               "[fault] pulling the plug at '%s' (matched hit %" PRIu64
               ", mode %s)\n",
               point, hit_number, to_string(state().config.mode).c_str());
  std::fflush(stderr);
  // _Exit: no atexit handlers, no static destructors, no stream flushing —
  // the closest a process can get to losing power mid-write.
  std::_Exit(kPlugPulledExitCode);
}

}  // namespace

Mode parse_mode(const std::string& name) {
  if (name == "none") return Mode::kNone;
  if (name == "independent") return Mode::kIndependent;
  if (name == "run_length") return Mode::kRunLength;
  if (name == "uniform") return Mode::kUniformOverRun;
  fail_argument("unknown fault mode '" + name +
                "' (valid modes: none, independent, run_length, uniform)");
}

std::string to_string(Mode mode) {
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kIndependent: return "independent";
    case Mode::kRunLength: return "run_length";
    case Mode::kUniformOverRun: return "uniform";
  }
  fail_invariant("fault::to_string: bad mode");
}

void init(const FaultConfig& config) {
  if (config.mode == Mode::kIndependent) {
    require(config.independent_prob >= 0.0 && config.independent_prob <= 1.0,
            "fault: independent_prob must be in [0, 1] (got " +
                std::to_string(config.independent_prob) + ")");
  }
  if (config.mode == Mode::kRunLength || config.mode == Mode::kUniformOverRun) {
    require(config.run_length >= 1,
            "fault: run_length must be >= 1 (the plug is pulled on the n-th "
            "matched hit)");
  }
  auto& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.config = config;
  s.matched_hits = 0;
  s.hits.clear();
  s.rng.seed(config.seed);
  s.drawn_run_length = 0;
  if (config.mode == Mode::kUniformOverRun) {
    s.drawn_run_length = std::uniform_int_distribution<std::uint64_t>(
        1, config.run_length)(s.rng);
  }
  detail::g_armed.store(config.mode != Mode::kNone,
                        std::memory_order_relaxed);
}

void init_from_config() {
  FaultConfig fault_config;
  fault_config.mode = parse_mode(config::fault_mode());
  fault_config.point = config::fault_point();
  fault_config.run_length = config::fault_n();
  fault_config.independent_prob = config::fault_prob();
  fault_config.seed = config::fault_seed();
  init(fault_config);
}

void reset() { init(FaultConfig{}); }

bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

std::vector<PointHits> counters() {
  auto& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<PointHits> out;
  out.reserve(s.hits.size());
  for (const auto& [point, hits] : s.hits) out.push_back({point, hits});
  return out;
}

std::string report() {
  auto& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::string out = "[fault] report: mode=" + to_string(s.config.mode) +
                    " point=" +
                    (s.config.point.empty() ? "*" : s.config.point) +
                    " matched_hits=" + std::to_string(s.matched_hits) + "\n";
  for (const auto& [point, hits] : s.hits) {
    out += "[fault]   " + point + " hits=" + std::to_string(hits) + "\n";
  }
  return out;
}

namespace detail {

void hit(const char* point) {
  auto& s = state();
  bool fire = false;
  std::uint64_t hit_number = 0;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    // Counters track every point regardless of the filter: one counting
    // run (independent, p=0) enumerates the live instrumentation surface.
    ++s.hits[point];
    if (!s.config.point.empty() && s.config.point != point) return;
    hit_number = ++s.matched_hits;
    switch (s.config.mode) {
      case Mode::kIndependent:
        fire = s.config.independent_prob > 0.0 &&
               std::bernoulli_distribution(s.config.independent_prob)(s.rng);
        break;
      case Mode::kRunLength:
        fire = hit_number == s.config.run_length;
        break;
      case Mode::kUniformOverRun:
        fire = hit_number == s.drawn_run_length;
        break;
      case Mode::kNone:
        break;
    }
  }
  if (fire) pull_the_plug(point, hit_number);
}

}  // namespace detail

}  // namespace safelight::fault
