// Descriptive statistics used by the experiment reports.
//
// The paper presents Fig. 8 as box-and-whisker plots and Fig. 9 as accuracy
// intervals; BoxStats computes the five-number summary (plus mean) those plots
// are built from.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace safelight {

/// Five-number summary (min, Q1, median, Q3, max) plus mean and stddev.
struct BoxStats {
  std::size_t n = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  /// Interquartile range.
  double iqr() const { return q3 - q1; }

  /// One-line rendering used by the bench tables.
  std::string to_string() const;
};

/// Computes BoxStats over `values`. Quartiles use linear interpolation
/// between order statistics (type-7, the numpy/R default). Throws
/// std::invalid_argument when `values` is empty.
BoxStats box_stats(std::vector<double> values);

/// Arithmetic mean; throws on empty input.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); returns 0 for n < 2.
double stddev_of(const std::vector<double>& values);

/// Quantile q in [0,1] with type-7 interpolation; throws on empty input.
double quantile(std::vector<double> values, double q);

}  // namespace safelight
