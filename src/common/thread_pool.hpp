// Persistent worker-thread pool behind the parallel_for helpers.
//
// The experiment sweeps issue thousands of small GEMMs; spawning
// std::thread per call made thread creation a measurable fraction of every
// kernel launch. The pool keeps worker_count() - 1 threads parked on a
// condition variable and hands them *jobs*: a chunk counter drained
// cooperatively by the workers and the submitting thread (work stealing at
// chunk granularity). Chunks are data-disjoint by construction in every
// caller, so which thread runs a chunk never affects results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace safelight {

class ThreadPool {
 public:
  /// Spawns `threads` persistent workers (0 is valid: run() degrades to a
  /// serial loop on the calling thread).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers. Must not race with an active run().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes fn(chunk) for every chunk in [0, chunk_count), distributing
  /// chunks over the workers; the calling thread participates, so the pool
  /// is never idle while the caller blocks. Returns when every chunk has
  /// finished. The first exception thrown by fn is rethrown on the calling
  /// thread after the job completes; remaining chunks still run.
  ///
  /// Safe to call concurrently from several threads (jobs interleave on the
  /// shared workers) and reusable for any number of submissions.
  void run(std::size_t chunk_count, const std::function<void(std::size_t)>& fn);

  /// Number of persistent worker threads (excluding submitting threads).
  std::size_t thread_count() const { return threads_.size(); }

  /// Process-wide pool sized to worker_count() - 1, created on first use.
  /// parallel_for / parallel_for_chunks submit here.
  static ThreadPool& global();

 private:
  // One parallel region in flight. Tokens queued to workers share ownership,
  // so a late-waking worker can never touch a job that already completed
  // and was destroyed, and never crosses over into a newer job.
  struct Job {
    Job(const std::function<void(std::size_t)>& f, std::size_t n)
        : fn(&f), chunks(n) {}

    const std::function<void(std::size_t)>* fn;
    const std::size_t chunks;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t next = 0;      // next unclaimed chunk (guarded by mutex)
    std::size_t done = 0;      // finished chunks (guarded by mutex)
    std::exception_ptr error;  // first failure (guarded by mutex)

    void drain();              // claim and run chunks until none remain
  };

  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex queue_mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
};

}  // namespace safelight
