#include "common/parallel.hpp"

#include <algorithm>

#include "common/config.hpp"
#include "common/thread_pool.hpp"

namespace safelight {

std::size_t worker_count() {
  // Resolved through config (CLI flag > SAFELIGHT_THREADS > hardware
  // concurrency) and cached on first use, so the CLI must install its
  // overrides before the first parallel region runs.
  static const std::size_t cached = config::threads();
  return cached;
}

namespace {
// Set while executing inside a parallel_for worker; nested parallel_for
// calls then degrade to serial loops instead of oversubscribing the host.
thread_local bool g_in_parallel_region = false;
}  // namespace

void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t grain = std::max<std::size_t>(1, min_grain);
  // Serial fallback, exactly as documented: below two grains there is
  // nothing worth splitting. (total / grain avoids overflow of grain * 2.)
  std::size_t workers = std::min(worker_count(), total / grain);
  if (g_in_parallel_region || workers <= 1) {
    fn(begin, end);
    return;
  }

  const std::size_t chunk = (total + workers - 1) / workers;
  const std::size_t chunk_count = (total + chunk - 1) / chunk;
  ThreadPool::global().run(chunk_count, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    // The submitting thread drains chunks too; mark it (and the pool
    // workers) as inside the region so nested calls stay serial.
    const bool was_inside = g_in_parallel_region;
    g_in_parallel_region = true;
    try {
      fn(lo, hi);
    } catch (...) {
      g_in_parallel_region = was_inside;
      throw;  // captured per chunk by the pool, rethrown after the job
    }
    g_in_parallel_region = was_inside;
  });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      min_grain);
}

}  // namespace safelight
