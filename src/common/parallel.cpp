#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace safelight {

std::size_t worker_count() {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("SAFELIGHT_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return cached;
}

namespace {
// Set while executing inside a parallel_for worker; nested parallel_for
// calls then degrade to serial loops instead of oversubscribing the host.
thread_local bool g_in_parallel_region = false;
}  // namespace

void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  std::size_t workers =
      std::min(worker_count(), std::max<std::size_t>(1, total / std::max<std::size_t>(1, min_grain)));
  if (g_in_parallel_region) workers = 1;
  if (workers <= 1) {
    fn(begin, end);
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(workers);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t chunk = (total + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    threads.emplace_back([&, lo, hi] {
      g_in_parallel_region = true;
      try {
        fn(lo, hi);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      min_grain);
}

}  // namespace safelight
