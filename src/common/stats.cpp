#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace safelight {

namespace {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted.front();
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double mean_of(const std::vector<double>& values) {
  require(!values.empty(), "mean_of: empty input");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double quantile(std::vector<double> values, double q) {
  require(!values.empty(), "quantile: empty input");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

BoxStats box_stats(std::vector<double> values) {
  require(!values.empty(), "box_stats: empty input");
  BoxStats s;
  s.n = values.size();
  s.mean = mean_of(values);
  s.stddev = stddev_of(values);
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.50);
  s.q3 = quantile_sorted(values, 0.75);
  return s;
}

std::string BoxStats::to_string() const {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << "min=" << min << " q1=" << q1 << " med=" << median
     << " q3=" << q3 << " max=" << max << " mean=" << mean << " (n=" << n
     << ")";
  return os.str();
}

}  // namespace safelight
