// Environment-variable primitives (raw getenv + parse).
//
// These are the low-level readers only; knob *resolution* — the CLI flag >
// env > default precedence rule shared by the `safelight` CLI, benches and
// tests — lives in common/config.hpp. Prefer config::scale() over
// env_scale(): the latter silently defaults on unknown values and is kept
// for backward compatibility.
#pragma once

#include <cstdint>
#include <string>

namespace safelight {

/// Reads an environment variable; returns fallback when unset/empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Reads an integer environment variable; returns fallback when unset or
/// unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Experiment scale presets; see DESIGN.md. Controls dataset sizes, model
/// widths and training epochs for the reproduction experiments.
enum class Scale { kTiny, kDefault, kFull };

/// Parses SAFELIGHT_SCALE ("tiny" | "default" | "full"); defaults to kDefault.
Scale env_scale();

/// Human-readable scale name.
std::string to_string(Scale scale);

}  // namespace safelight
