// Thread-local scratch arena for kernel temporaries.
//
// Conv2d forward/backward and the packed GEMM need per-call float buffers
// (im2col columns, packed B panels). Allocating std::vectors for them on
// every batch item dominated small-kernel runtime; the arena instead bump-
// allocates from thread-local blocks that are reused across calls, so the
// steady-state cost of a scratch buffer is a pointer increment.
//
// Blocks are never freed or moved while a Frame is open, so every pointer
// returned inside a frame stays valid for the frame's whole lifetime (the
// arena grows by appending new blocks, not by reallocating old ones).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace safelight {

class ScratchArena {
 public:
  /// Opens a scope: everything allocated while the frame is alive is
  /// released (logically, not to the OS) when it destructs. Frames nest.
  class Frame {
   public:
    explicit Frame(ScratchArena& arena)
        : arena_(arena), block_(arena.block_), used_(arena.used_) {}
    ~Frame() {
      arena_.block_ = block_;
      arena_.used_ = used_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    ScratchArena& arena_;
    std::size_t block_;
    std::size_t used_;
  };

  ScratchArena() = default;

  /// Uninitialized buffer of `count` floats, 64-byte aligned. Valid until
  /// the innermost enclosing Frame closes (or forever when none is open).
  float* alloc(std::size_t count);

  /// Like alloc but zero-filled.
  float* alloc_zeroed(std::size_t count);

  /// Total floats currently reserved across all blocks (test/diagnostics).
  std::size_t capacity() const;

  /// The calling thread's arena. Each pool worker gets its own, so kernels
  /// running in parallel chunks never contend for scratch space.
  static ScratchArena& local();

 private:
  struct AlignedDelete {
    void operator()(float* p) const;
  };
  struct Block {
    std::unique_ptr<float[], AlignedDelete> data;
    std::size_t size = 0;
  };

  std::vector<Block> blocks_;
  std::size_t block_ = 0;  // index of the block currently allocated from
  std::size_t used_ = 0;   // floats consumed in blocks_[block_]
};

}  // namespace safelight
