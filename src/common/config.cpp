#include "common/config.hpp"

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <thread>

#include "common/error.hpp"

namespace safelight::config {

namespace {

Overrides& mutable_overrides() {
  static Overrides active;
  return active;
}

}  // namespace

std::optional<std::int64_t> strict_env_int(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  require(end != raw && *end == '\0',
          std::string(name) + " must be a decimal integer (got '" + raw +
              "')");
  return static_cast<std::int64_t>(parsed);
}

std::optional<double> strict_env_double(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  require(end != raw && *end == '\0',
          std::string(name) + " must be a number (got '" + raw + "')");
  return parsed;
}

void set_overrides(const Overrides& overrides) {
  mutable_overrides() = overrides;
}

const Overrides& overrides() { return mutable_overrides(); }

ScopedOverrides::ScopedOverrides(const Overrides& next)
    : previous_(mutable_overrides()) {
  mutable_overrides() = next;
}

ScopedOverrides::~ScopedOverrides() { mutable_overrides() = previous_; }

Scale parse_scale(const std::string& name) {
  if (name == "tiny") return Scale::kTiny;
  if (name == "default") return Scale::kDefault;
  if (name == "full") return Scale::kFull;
  fail_argument("unknown scale '" + name +
                "' (valid scales: tiny, default, full)");
}

Scale scale() {
  if (mutable_overrides().scale) return *mutable_overrides().scale;
  return parse_scale(env_string("SAFELIGHT_SCALE", "default"));
}

std::size_t seed_count(std::size_t fallback) {
  if (mutable_overrides().seed_count) return *mutable_overrides().seed_count;
  const std::int64_t v = strict_env_int("SAFELIGHT_SEEDS")
                             .value_or(static_cast<std::int64_t>(fallback));
  require(v >= 1, "SAFELIGHT_SEEDS must be >= 1 (got " + std::to_string(v) +
                      "); every grid cell needs at least one placement");
  return static_cast<std::size_t>(v);
}

std::uint64_t base_seed(std::uint64_t fallback) {
  if (mutable_overrides().base_seed) return *mutable_overrides().base_seed;
  const std::int64_t v = strict_env_int("SAFELIGHT_BASE_SEED")
                             .value_or(static_cast<std::int64_t>(fallback));
  require(v >= 0, "SAFELIGHT_BASE_SEED must be >= 0");
  return static_cast<std::uint64_t>(v);
}

std::string out_dir() {
  std::string dir = mutable_overrides().out_dir
                        ? *mutable_overrides().out_dir
                        : env_string("SAFELIGHT_OUT", "safelight_out");
  // error_code overload + explicit throw: the default filesystem_error text
  // buries the path; sweeps must fail on this *before* any work starts,
  // with a message that says what to change.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create output directory '" + dir +
                             "': " + ec.message() +
                             " (pass a writable --out directory)");
  }
  return dir;
}

std::string zoo_dir() {
  if (mutable_overrides().zoo_dir) return *mutable_overrides().zoo_dir;
  return env_string("SAFELIGHT_ZOO", "safelight_zoo");
}

std::size_t threads() {
  if (mutable_overrides().threads) {
    return *mutable_overrides().threads < 1 ? 1 : *mutable_overrides().threads;
  }
  if (const auto v = strict_env_int("SAFELIGHT_THREADS")) {
    require(*v >= 1, "SAFELIGHT_THREADS must be >= 1 (got " +
                         std::to_string(*v) + ")");
    return static_cast<std::size_t>(*v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::string fault_mode() {
  if (mutable_overrides().fault_mode) return *mutable_overrides().fault_mode;
  return env_string("SAFELIGHT_FAULT_MODE", "none");
}

std::string fault_point() {
  if (mutable_overrides().fault_point) return *mutable_overrides().fault_point;
  return env_string("SAFELIGHT_FAULT_POINT", "");
}

std::uint64_t fault_n() {
  if (mutable_overrides().fault_n) return *mutable_overrides().fault_n;
  const std::int64_t v = strict_env_int("SAFELIGHT_FAULT_N").value_or(1);
  require(v >= 1, "SAFELIGHT_FAULT_N must be >= 1 (got " + std::to_string(v) +
                      "); the plug is pulled on the n-th matched hit");
  return static_cast<std::uint64_t>(v);
}

double fault_prob() {
  return strict_env_double("SAFELIGHT_FAULT_PROB").value_or(0.0);
}

std::uint64_t fault_seed() {
  const std::int64_t v = strict_env_int("SAFELIGHT_FAULT_SEED").value_or(1);
  require(v >= 0, "SAFELIGHT_FAULT_SEED must be >= 0");
  return static_cast<std::uint64_t>(v);
}

std::size_t workers() {
  if (mutable_overrides().workers) return *mutable_overrides().workers;
  const std::int64_t v = strict_env_int("SAFELIGHT_WORKERS").value_or(0);
  require(v >= 0, "SAFELIGHT_WORKERS must be >= 0 (got " + std::to_string(v) +
                      "); 0 runs in-process without a coordinator");
  return static_cast<std::size_t>(v);
}

double heartbeat_timeout_s() {
  if (mutable_overrides().heartbeat_timeout_s) {
    return *mutable_overrides().heartbeat_timeout_s;
  }
  const double parsed =
      strict_env_double("SAFELIGHT_HEARTBEAT_TIMEOUT").value_or(10.0);
  require(parsed > 0.0,
          "SAFELIGHT_HEARTBEAT_TIMEOUT must be a positive number of seconds "
          "(got " + std::to_string(parsed) + ")");
  return parsed;
}

std::size_t max_task_retries() {
  if (mutable_overrides().max_task_retries) {
    return *mutable_overrides().max_task_retries;
  }
  const std::int64_t v =
      strict_env_int("SAFELIGHT_MAX_TASK_RETRIES").value_or(3);
  require(v >= 1, "SAFELIGHT_MAX_TASK_RETRIES must be >= 1 (got " +
                      std::to_string(v) + ")");
  return static_cast<std::size_t>(v);
}

std::string trace_path() {
  if (mutable_overrides().trace_path) return *mutable_overrides().trace_path;
  return env_string("SAFELIGHT_TRACE", "");
}

std::string metrics_path() {
  if (mutable_overrides().metrics_path) {
    return *mutable_overrides().metrics_path;
  }
  return env_string("SAFELIGHT_METRICS", "");
}

std::string backend() {
  if (mutable_overrides().backend) return *mutable_overrides().backend;
  return env_string("SAFELIGHT_BACKEND", "auto");
}

std::uint16_t serve_port() {
  if (mutable_overrides().serve_port) return *mutable_overrides().serve_port;
  const std::int64_t v = strict_env_int("SAFELIGHT_SERVE_PORT").value_or(8080);
  require(v >= 0 && v <= 65535,
          "SAFELIGHT_SERVE_PORT must be in [0, 65535] (got " +
              std::to_string(v) + "); 0 binds an ephemeral port");
  return static_cast<std::uint16_t>(v);
}

std::size_t serve_slots() {
  if (mutable_overrides().serve_slots) return *mutable_overrides().serve_slots;
  const std::int64_t v = strict_env_int("SAFELIGHT_SERVE_SLOTS").value_or(2);
  require(v >= 1, "SAFELIGHT_SERVE_SLOTS must be >= 1 (got " +
                      std::to_string(v) + "); the daemon needs a slot to run");
  return static_cast<std::size_t>(v);
}

std::size_t serve_queue_depth() {
  if (mutable_overrides().serve_queue_depth) {
    return *mutable_overrides().serve_queue_depth;
  }
  const std::int64_t v = strict_env_int("SAFELIGHT_SERVE_QUEUE").value_or(4);
  require(v >= 0, "SAFELIGHT_SERVE_QUEUE must be >= 0 (got " +
                      std::to_string(v) + "); 0 disables queuing");
  return static_cast<std::size_t>(v);
}

}  // namespace safelight::config
