#include "common/scratch.hpp"

#include <algorithm>
#include <cstring>
#include <new>

namespace safelight {

namespace {

// Block growth floor (floats) and per-allocation alignment (floats). 64-byte
// alignment keeps packed GEMM panels on cache-line / vector-register
// boundaries.
constexpr std::size_t kMinBlockFloats = 1u << 14;  // 64 KiB
constexpr std::size_t kAlignFloats = 16;

std::size_t align_up(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

void ScratchArena::AlignedDelete::operator()(float* p) const {
  ::operator delete[](p, std::align_val_t{64});
}

float* ScratchArena::alloc(std::size_t count) {
  const std::size_t need = std::max<std::size_t>(1, align_up(count));
  used_ = align_up(used_);
  // Advance to the first block with room; blocks beyond block_ are always
  // wholly free (their contents were released by a Frame).
  while (block_ < blocks_.size() && used_ + need > blocks_[block_].size) {
    ++block_;
    used_ = 0;
  }
  if (block_ >= blocks_.size()) {
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t size = std::max({kMinBlockFloats, prev * 2, need});
    Block block;
    block.data.reset(static_cast<float*>(
        ::operator new[](size * sizeof(float), std::align_val_t{64})));
    block.size = size;
    blocks_.push_back(std::move(block));
    block_ = blocks_.size() - 1;
    used_ = 0;
  }
  float* out = blocks_[block_].data.get() + used_;
  used_ += need;
  return out;
}

float* ScratchArena::alloc_zeroed(std::size_t count) {
  float* out = alloc(count);
  std::memset(out, 0, count * sizeof(float));
  return out;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) total += block.size;
  return total;
}

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace safelight
