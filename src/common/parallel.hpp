// Minimal data-parallel loop helper.
//
// The training and evaluation hot loops (GEMM tiles, per-image inference)
// are embarrassingly parallel; parallel_for splits an index range across a
// small number of worker threads. On this 2-core host the win is ~1.9x; the
// helper degrades to a serial loop when grain or hardware does not justify
// spawning threads.
#pragma once

#include <cstddef>
#include <functional>

namespace safelight {

/// Number of worker threads used by parallel_for (>= 1). Defaults to
/// std::thread::hardware_concurrency(), overridable with SAFELIGHT_THREADS.
std::size_t worker_count();

/// Invokes fn(i) for every i in [begin, end). Chunks the range contiguously
/// across worker_count() threads when (end - begin) >= min_grain * 2,
/// otherwise runs serially. fn must be thread-safe across distinct i.
///
/// Exceptions thrown by fn are captured and the first one is rethrown on the
/// calling thread after all workers join.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_grain = 1);

/// Like parallel_for but hands each worker a contiguous [chunk_begin,
/// chunk_end) sub-range, which avoids per-index std::function overhead in
/// tight loops.
void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_grain = 1);

}  // namespace safelight
