// Minimal data-parallel loop helpers.
//
// The training and evaluation hot loops (GEMM tiles, per-image inference)
// are embarrassingly parallel; parallel_for splits an index range across the
// persistent worker pool (common/thread_pool.hpp). Submitting a job to the
// parked pool costs one lock + notify, so even the thousands of small GEMMs
// issued per attack sweep can afford it; the helpers still degrade to a
// plain serial loop when the range or the host does not justify fanning out.
#pragma once

#include <cstddef>
#include <functional>

namespace safelight {

/// Number of worker threads used by parallel_for (>= 1). Defaults to
/// std::thread::hardware_concurrency(), overridable with SAFELIGHT_THREADS.
std::size_t worker_count();

/// Invokes fn(i) for every i in [begin, end). Chunks the range contiguously
/// across up to worker_count() pool threads when (end - begin) >=
/// min_grain * 2, otherwise runs serially on the calling thread (the
/// serial-fallback contract is covered by Parallel.SerialBelowTwoGrains).
/// Nested calls from inside a worker always run serially. fn must be
/// thread-safe across distinct i.
///
/// Exceptions thrown by fn are captured and the first one is rethrown on the
/// calling thread after the whole range was attempted.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_grain = 1);

/// Like parallel_for but hands each worker a contiguous [chunk_begin,
/// chunk_end) sub-range, which avoids per-index std::function overhead in
/// tight loops. Same serial-fallback contract: serial below min_grain * 2
/// indices, and every parallel chunk except possibly the final (tail)
/// chunk spans at least min_grain indices.
void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_grain = 1);

}  // namespace safelight
