#include "common/csv.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "common/fault.hpp"

namespace safelight {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  fault::ptp("out.csv.create");  // crash: truncated (empty) output file
  if (!header.empty()) row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << fields[i];
  }
  if (fault::armed()) out_.flush();
  fault::ptp("out.csv.row");  // crash: torn row; the writer truncates on
                              // open, so a rerun rewrites the whole file
  out_ << '\n';
  out_.flush();
}

void CsvWriter::row_values(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(fmt_double(v));
  row(fields);
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (char ch : line) {
    if (ch == '"') {
      quoted = !quoted;
    } else if (ch == ',' && !quoted) {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  fields.push_back(current);
  return fields;
}

}  // namespace

CsvTable read_csv(const std::string& path) {
  CsvTable table;
  if (!std::filesystem::exists(path)) return table;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != table.header.size()) {
        throw std::runtime_error("read_csv: ragged row in " + path);
      }
      table.rows.push_back(std::move(fields));
    }
  }
  return table;
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

}  // namespace safelight
