#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>

#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace safelight::metrics {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

constexpr int kInnerBuckets = (kMaxExponent - kMinExponent) * kBucketsPerOctave;

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::string path;
};

Registry& registry() {
  static Registry r;
  return r;
}

void zero_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->clear();
  for (auto& [name, g] : r.gauges) g->clear();
  for (auto& [name, h] : r.histograms) h->clear();
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN -> underflow
  const double e = (std::log2(v) - kMinExponent) * kBucketsPerOctave;
  if (e < 0.0) return 0;
  const int idx = static_cast<int>(e);
  if (idx >= kInnerBuckets) return kTotalBuckets - 1;
  return idx + 1;
}

double bucket_value(int index) {
  if (index <= 0) return 0.0;
  if (index >= kTotalBuckets - 1) return std::exp2(kMaxExponent);
  return std::exp2(kMinExponent + (index - 1 + 0.5) /
                                      static_cast<double>(kBucketsPerOctave));
}

double quantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(snapshot.count)));
  rank = std::min(std::max<std::uint64_t>(rank, 1), snapshot.count);
  std::uint64_t cum = 0;
  for (const auto& [index, n] : snapshot.buckets) {
    cum += n;
    if (cum >= rank) {
      // Clamping to the observed range makes quantiles exact for constant
      // distributions and never reports a value outside what was recorded.
      return std::min(std::max(bucket_value(index), snapshot.min),
                      snapshot.max);
    }
  }
  return snapshot.max;
}

void Gauge::merge(double v) { atomic_max(v_, v); }

void Histogram::record(double v) {
  if (!detail::armed_relaxed()) return;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kTotalBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) s.buckets[i] = n;
  }
  return s;
}

void Histogram::merge(const HistogramSnapshot& snapshot) {
  if (snapshot.count == 0) return;
  for (const auto& [index, n] : snapshot.buckets) {
    if (index >= 0 && index < kTotalBuckets) {
      buckets_[index].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snapshot.count, std::memory_order_relaxed);
  sum_.fetch_add(snapshot.sum, std::memory_order_relaxed);
  atomic_min(min_, snapshot.min);
  atomic_max(max_, snapshot.max);
}

void Histogram::clear() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  Snapshot s;
  for (const auto& [name, c] : r.counters) s.counters[name] = c->value();
  for (const auto& [name, g] : r.gauges) s.gauges[name] = g->value();
  for (const auto& [name, h] : r.histograms) {
    s.histograms[name] = h->snapshot();
  }
  return s;
}

void ingest(const Snapshot& snapshot) {
  for (const auto& [name, v] : snapshot.counters) counter(name).merge(v);
  for (const auto& [name, v] : snapshot.gauges) gauge(name).merge(v);
  for (const auto& [name, h] : snapshot.histograms) histogram(name).merge(h);
}

void init(const std::string& path) {
  if (path.empty()) {
    throw std::invalid_argument("metrics::init requires a non-empty path");
  }
  zero_all();
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.path = path;
  }
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void arm_collection() {
  zero_all();
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.path.clear();
  }
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void init_from_config() {
  const std::string path = config::metrics_path();
  if (!path.empty()) {
    init(path);
  } else if (!env_string("SAFELIGHT_METRICS_PIPE", "").empty()) {
    arm_collection();
  } else {
    reset();
  }
}

void reset() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  zero_all();
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  r.path.clear();
}

bool armed() { return detail::armed_relaxed(); }

bool has_output() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  return !r.path.empty();
}

std::string to_json() {
  const Snapshot s = snapshot();
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("safelight.metrics.v1");
  json.key("counters").begin_object();
  for (const auto& [name, v] : s.counters) json.key(name).value(v);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, v] : s.gauges) json.key(name).value(v, 6);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, h] : s.histograms) {
    json.key(name).begin_object();
    json.key("count").value(h.count);
    json.key("max").value(h.max, 6);
    json.key("min").value(h.min, 6);
    json.key("p50").value(quantile(h, 0.50), 6);
    json.key("p95").value(quantile(h, 0.95), 6);
    json.key("p99").value(quantile(h, 0.99), 6);
    json.key("sum").value(h.sum, 6);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return std::move(json).str() + "\n";
}

bool write_json() {
  std::string path;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    path = r.path;
  }
  if (path.empty()) return false;
  const std::string text = to_json();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "cannot open metrics output file '" + path + "'");
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  require(out.good(), "failed writing metrics output file '" + path + "'");
  return true;
}

std::string summary() {
  const Snapshot s = snapshot();
  std::string out;
  if (!s.counters.empty()) {
    out += "[metrics] counters:\n";
    for (const auto& [name, v] : s.counters) {
      char line[160];
      std::snprintf(line, sizeof(line), "[metrics]   %-36s %llu\n",
                    name.c_str(), static_cast<unsigned long long>(v));
      out += line;
    }
  }
  if (!s.gauges.empty()) {
    out += "[metrics] gauges:\n";
    for (const auto& [name, v] : s.gauges) {
      char line[160];
      std::snprintf(line, sizeof(line), "[metrics]   %-36s %s\n",
                    name.c_str(), fmt_g(v).c_str());
      out += line;
    }
  }
  if (!s.histograms.empty()) {
    out += "[metrics] histograms:\n";
    for (const auto& [name, h] : s.histograms) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "[metrics]   %-36s count=%llu p50=%s p95=%s p99=%s "
                    "min=%s max=%s sum=%s\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    fmt_g(quantile(h, 0.50)).c_str(),
                    fmt_g(quantile(h, 0.95)).c_str(),
                    fmt_g(quantile(h, 0.99)).c_str(), fmt_g(h.min).c_str(),
                    fmt_g(h.max).c_str(), fmt_g(h.sum).c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace safelight::metrics
