#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace safelight {

ThreadPool::ThreadPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Job::drain() {
  // Span bookkeeping is manual (not RAII): one "pool.drain" span covers
  // every chunk this thread executed of this job, and straggler drains
  // that claim zero chunks must emit nothing.
  const std::uint64_t span_start = trace::armed() ? trace::now_ns() : 0;
  std::size_t executed = 0;
  for (;;) {
    std::size_t chunk;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (next >= chunks) break;
      chunk = next++;
    }
    ++executed;
    try {
      (*fn)(chunk);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex);
      if (!error) error = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(mutex);
    if (++done == chunks) done_cv.notify_all();
  }
  if (executed == 0) return;
  static metrics::Counter& drains = metrics::counter("pool.drains");
  static metrics::Counter& chunks_run = metrics::counter("pool.chunks");
  drains.add();
  chunks_run.add(executed);
  if (trace::armed()) {
    trace::RawEvent event;
    event.name = "pool.drain";
    event.cat = "pool";
    event.start_ns = span_start;
    event.dur_ns = trace::now_ns() - span_start;
    event.num_args.emplace_back("chunks", static_cast<double>(executed));
    trace::record(std::move(event));
  }
}

void ThreadPool::run(std::size_t chunk_count,
                     const std::function<void(std::size_t)>& fn) {
  if (chunk_count == 0) return;
  if (threads_.empty() || chunk_count == 1) {
    for (std::size_t i = 0; i < chunk_count; ++i) fn(i);
    return;
  }

  const auto job = std::make_shared<Job>(fn, chunk_count);
  // One queue token per worker that could usefully help; each token is a
  // shared owner of the job, so stragglers that wake after completion find
  // an exhausted chunk counter and drop their reference harmlessly.
  const std::size_t tokens = std::min(threads_.size(), chunk_count - 1);
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < tokens; ++i) queue_.push_back(job);
  }
  work_cv_.notify_all();

  job->drain();  // the submitting thread works too

  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] { return job->done == job->chunks; });
    if (job->error) {
      const std::exception_ptr error = job->error;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job->drain();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(worker_count() > 0 ? worker_count() - 1 : 0);
  return pool;
}

}  // namespace safelight
