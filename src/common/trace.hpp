// Scoped-span tracing flushed as Chrome trace-event JSON.
//
// Every hot layer in SafeLight — thread-pool jobs, GEMM kernels, pipeline
// scenarios, detector evaluations, the dist coordinator/worker fleet —
// opens trace::Span objects around its unit of work. Disarmed (the default)
// a span site costs one relaxed atomic load, the same discipline as
// fault::ptp; armed, the span records into the calling thread's private
// buffer (no cross-thread contention on the hot path — the only lock a
// record takes is the owning thread's own, contended only by flush/drain).
//
// Arming follows the common/config precedence rule:
//
//     --trace <file>  >  SAFELIGHT_TRACE=<file>  >  disarmed
//
// flush() merges every thread buffer into one JSON document in the Chrome
// trace-event format ("X" complete events, microsecond timestamps), written
// via common/json — load it in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
//
// Distributed runs: workers arm in buffering mode (SAFELIGHT_TRACE_PIPE,
// injected by the coordinator) and ship drain()ed events over the NDJSON
// pipe protocol; the coordinator ingest()s them under a per-worker pid so
// one merged fleet trace shows coordinator dispatch and worker execution on
// separate tracks. Timestamps are absolute CLOCK_MONOTONIC nanoseconds —
// machine-wide, so coordinator and worker spans share one clock — and the
// flush rebases them against the arming instant.
//
// Traced runs must stay byte-identical on all experiment CSV/JSON outputs:
// this module never touches experiment output paths, only its own file.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace safelight::trace {

/// One completed span (a Chrome "X" complete event). Timestamps are
/// absolute steady-clock nanoseconds; flush() rebases them so the trace
/// starts near t=0. `tid` is a small dense id assigned per thread in
/// registration order (main thread first), not the OS tid — deterministic
/// track numbering across runs with the same thread topology.
struct RawEvent {
  std::string name;
  std::string cat;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  /// Span arguments, shown in the Perfetto side panel. Numeric and string
  /// args are kept apart so JSON round-trips types exactly.
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// Arms tracing and installs the output file flush() writes. Clears any
/// previously buffered events. Throws std::invalid_argument on an empty
/// path.
void init(const std::string& path);

/// Arms tracing with no output file: events buffer until drain()ed. The
/// dist worker runs in this mode (the coordinator injects
/// SAFELIGHT_TRACE_PIPE and ships the buffers home over the pipe).
void arm_buffering();

/// Arms from the resolved configuration (CLI > SAFELIGHT_TRACE env >
/// SAFELIGHT_TRACE_PIPE env > disarmed); the `safelight` CLI calls this
/// after flag parsing. Disarms when no knob is set.
void init_from_config();

/// Disarms and clears all buffered/ingested events and track names.
void reset();

/// True when armed (file or buffering mode).
bool armed();

/// True when an output file is installed (flush() would write).
bool has_output();

/// Merges every thread buffer plus all ingested foreign events into one
/// Chrome trace-event JSON document at the init() path. Returns the number
/// of span events written; 0 (and writes nothing) when no output file is
/// installed. Buffers are consumed.
std::size_t flush();

/// Steals every buffered local event (all threads). Used by the dist
/// worker to ship its buffer, and by tests; flush() uses it internally.
std::vector<RawEvent> drain();

/// Absorbs foreign events under the given Chrome pid (the coordinator
/// assigns one pid per worker slot; local events are pid 1). Timestamps
/// must be absolute steady-clock nanoseconds from this machine.
void ingest(std::uint32_t pid, std::vector<RawEvent> events);

/// Names a pid's track in the merged trace (Chrome "process_name" metadata
/// event), e.g. set_track_name(2, "worker w0").
void set_track_name(std::uint32_t pid, const std::string& name);

/// Records an already-timed span on the calling thread (tid is stamped
/// here). For spans whose lifetime crosses event-loop iterations — the
/// coordinator's dispatch-to-done task spans — where RAII doesn't fit.
void record(RawEvent event);

namespace detail {
extern std::atomic<bool> g_armed;
/// Absolute steady-clock (CLOCK_MONOTONIC) nanoseconds.
std::uint64_t now_ns();
void record_event(RawEvent&& event);
}  // namespace detail

/// Monotonic nanosecond clock shared by every span; exposed so manual
/// record() callers timestamp on the same axis.
inline std::uint64_t now_ns() { return detail::now_ns(); }

/// Scoped span: opens at construction, records at destruction. Disarmed
/// cost is one relaxed atomic load (plus a pointer zero); args on an
/// inactive span are no-ops, so call sites need no armed() checks.
class Span {
 public:
  Span(const char* cat, const char* name) {
    if (detail::g_armed.load(std::memory_order_relaxed)) open(cat, name);
  }
  Span(const char* cat, std::string name) {
    if (detail::g_armed.load(std::memory_order_relaxed)) {
      open(cat, std::move(name));
    }
  }
  ~Span() {
    if (event_ != nullptr) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when the span is live (armed at construction).
  bool active() const { return event_ != nullptr; }

  Span& arg(const char* key, double v) {
    if (event_ != nullptr) add_num_arg(key, v);
    return *this;
  }
  Span& arg(const char* key, std::string v) {
    if (event_ != nullptr) add_str_arg(key, std::move(v));
    return *this;
  }

 private:
  void open(const char* cat, std::string name);
  void close();
  void add_num_arg(const char* key, double v);
  void add_str_arg(const char* key, std::string v);

  /// Heap-allocated only while armed, keeping the disarmed span trivial.
  RawEvent* event_ = nullptr;
};

}  // namespace safelight::trace
