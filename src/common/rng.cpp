#include "common/rng.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace safelight {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::gaussian: stddev must be non-negative");
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0,1]");
  return std::bernoulli_distribution(p)(engine_);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  require(k <= n, "Rng::sample_without_replacement: k must be <= n");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n - 1)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  return sample_without_replacement(n, n);
}

Rng Rng::fork(std::uint64_t salt) {
  const std::uint64_t draw = engine_();
  return Rng(splitmix64(draw ^ splitmix64(salt)));
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t seed_combine(std::uint64_t base, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) {
  std::uint64_t s = splitmix64(base);
  s = splitmix64(s ^ splitmix64(a + 0x1000));
  s = splitmix64(s ^ splitmix64(b + 0x2000));
  s = splitmix64(s ^ splitmix64(c + 0x3000));
  return s;
}

}  // namespace safelight
