#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace safelight::log {

namespace {

constexpr int kUnset = -1;

std::atomic<int>& level_cell() {
  static std::atomic<int> cell{kUnset};
  return cell;
}

int parse_env_level() {
  const char* raw = std::getenv("SAFELIGHT_LOG_LEVEL");
  if (raw == nullptr || raw[0] == '\0') return static_cast<int>(Level::kInfo);
  if (std::strcmp(raw, "error") == 0) return static_cast<int>(Level::kError);
  if (std::strcmp(raw, "warn") == 0) return static_cast<int>(Level::kWarn);
  if (std::strcmp(raw, "info") == 0) return static_cast<int>(Level::kInfo);
  if (std::strcmp(raw, "debug") == 0) return static_cast<int>(Level::kDebug);
  // Diagnostics must never abort a run: unknown names mean the default.
  return static_cast<int>(Level::kInfo);
}

void vmessage(Level l, const char* tag, const char* fmt, std::va_list args) {
  if (!enabled(l)) return;
  char body[2048];
  std::vsnprintf(body, sizeof(body), fmt, args);
  // One fprintf per line: coordinator and worker processes share stderr,
  // and line-granular interleaving is what the old ad-hoc calls gave us.
  if (tag == nullptr) {
    std::fprintf(stderr, "%s\n", body);
  } else {
    std::fprintf(stderr, "[%s] %s\n", tag, body);
  }
}

}  // namespace

Level level() {
  int v = level_cell().load(std::memory_order_relaxed);
  if (v == kUnset) {
    v = parse_env_level();
    level_cell().store(v, std::memory_order_relaxed);
  }
  return static_cast<Level>(v);
}

void set_level(Level level) {
  level_cell().store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset() { level_cell().store(kUnset, std::memory_order_relaxed); }

void message(Level l, const char* tag, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vmessage(l, tag, fmt, args);
  va_end(args);
}

void error(const char* tag, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vmessage(Level::kError, tag, fmt, args);
  va_end(args);
}

void warn(const char* tag, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vmessage(Level::kWarn, tag, fmt, args);
  va_end(args);
}

void info(const char* tag, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vmessage(Level::kInfo, tag, fmt, args);
  va_end(args);
}

void debug(const char* tag, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vmessage(Level::kDebug, tag, fmt, args);
  va_end(args);
}

}  // namespace safelight::log
