// Tiny leveled stderr logger unifying SafeLight's ad-hoc diagnostic
// prints ("[dist] ...", "[store] ...", worker logs, resume hints).
//
// Every line is "[<tag>] <formatted message>\n", written with one fprintf
// so concurrent processes (coordinator + workers sharing stderr) interleave
// at line granularity, exactly like the fprintf calls this replaces. At the
// default level (info) the emitted bytes are identical to the historical
// ad-hoc messages — tests and scripts that grep "[dist] summary:" keep
// working.
//
// The level comes from SAFELIGHT_LOG_LEVEL ("error" | "warn" | "info" |
// "debug", default "info"), read once on first use; set_level() overrides
// it (tests, or a future --log-level flag). debug is for messages that were
// previously compiled out or hidden behind verbose gates.
#pragma once

#include <cstdarg>

namespace safelight::log {

enum class Level { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Active level: set_level() > SAFELIGHT_LOG_LEVEL > kInfo. An
/// unrecognized env value falls back to kInfo (diagnostics must never
/// throw).
Level level();

/// Installs an explicit level, overriding the environment.
void set_level(Level level);

/// Re-reads the environment on next use (tests).
void reset();

inline bool enabled(Level l) {
  return static_cast<int>(l) <= static_cast<int>(level());
}

/// Core emitter: "[<tag>] <printf(fmt, ...)>\n" to stderr when `l` is
/// enabled. A null tag drops the "[tag] " prefix (messages whose historical
/// bytes carry none, e.g. the CLI resume hint).
void message(Level l, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

void error(const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void warn(const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void info(const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void debug(const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace safelight::log
