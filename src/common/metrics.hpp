// Process-wide metrics registry: counters, gauges, and geometric-bucket
// histograms with p50/p95/p99, rendered as an end-of-run summary table and
// a deterministic-schema JSON file.
//
// Hot sites look a metric up once (the reference is stable for the process
// lifetime) and then touch one atomic per update; every update gates on the
// same relaxed-atomic-load arming discipline as trace::Span and fault::ptp,
// so a disarmed metric site costs one relaxed load.
//
//   static metrics::Counter& hits = metrics::counter("store.lookup_hits");
//   hits.add();
//
// Arming follows the common/config precedence rule:
//
//     --metrics <file>  >  SAFELIGHT_METRICS=<file>  >  disarmed
//
// Histograms use fixed geometric buckets (4 per octave over 2^-32..2^32):
// recording is order-independent atomic bucket increments, quantiles are
// computed from bucket boundaries — deterministic given the same set of
// recorded values regardless of thread interleaving, and snapshots merge by
// adding bucket counts. That mergeability is what lets dist workers ship
// their registries over the NDJSON pipe (SAFELIGHT_METRICS_PIPE buffering
// mode) for the coordinator to ingest() into one fleet-wide registry.
//
// The JSON file has a fixed schema (sorted keys, fixed per-type fields) so
// tooling — scripts/bench_report.sh — reads it instead of re-parsing logs;
// see tests/trace_test.cpp for the schema golden.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace safelight::metrics {

namespace detail {
extern std::atomic<bool> g_armed;
inline bool armed_relaxed() {
  return g_armed.load(std::memory_order_relaxed);
}
}  // namespace detail

/// Histogram bucket geometry: 4 buckets per octave (ratio 2^0.25 ≈ 1.19,
/// so quantiles carry ~9% relative error) spanning 2^-32 .. 2^32 — covers
/// nanosecond-scale seconds, GFLOP/s, and probe counts alike. Index 0 is
/// the underflow bucket (v < 2^-32, including non-positive values), index
/// kTotalBuckets-1 the overflow bucket.
inline constexpr int kBucketsPerOctave = 4;
inline constexpr int kMinExponent = -32;
inline constexpr int kMaxExponent = 32;
inline constexpr int kTotalBuckets =
    (kMaxExponent - kMinExponent) * kBucketsPerOctave + 2;

/// Bucket index of a value (always in [0, kTotalBuckets)).
int bucket_index(double v);

/// Deterministic representative of a bucket (geometric midpoint of its
/// boundaries; 0 for underflow, 2^kMaxExponent for overflow) — what
/// quantile queries return.
double bucket_value(int index);

/// Monotone counter. add() is one relaxed atomic add when armed, one
/// relaxed load when disarmed.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (detail::armed_relaxed()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Unconditional add for snapshot merging (coordinator ingest).
  void merge(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void clear() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (detail::armed_relaxed()) v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  /// Merge policy for fleet snapshots: keep the maximum (a gauge is a
  /// per-process instantaneous reading; max is the honest aggregate).
  void merge(double v);
  void clear() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Mergeable view of one histogram: total count/sum/min/max plus the
/// sparse non-empty buckets. quantile() answers p50/p95/p99 queries.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// bucket index -> count, non-empty buckets only.
  std::map<int, std::uint64_t> buckets;
};

/// q in [0, 1]; returns the deterministic bucket representative at that
/// rank, 0 on an empty histogram.
double quantile(const HistogramSnapshot& snapshot, double q);

/// Fixed-geometry histogram. record() is a handful of relaxed atomic
/// updates when armed, one relaxed load when disarmed.
class Histogram {
 public:
  void record(double v);
  HistogramSnapshot snapshot() const;
  void merge(const HistogramSnapshot& snapshot);
  void clear();

 private:
  std::atomic<std::uint64_t> buckets_[kTotalBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// Infinity sentinels so the CAS min/max loops need no first-record
  /// special case; snapshot() reports 0 while count is 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Registry lookups: created on first use, the returned reference is
/// stable for the process lifetime (reset() zeroes values but never
/// destroys metrics, so call sites may cache `static` references).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Point-in-time view of the whole registry, mergeable across processes.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

Snapshot snapshot();

/// Adds a (worker) snapshot into the live registry: counters and histogram
/// buckets accumulate, gauges keep the maximum.
void ingest(const Snapshot& snapshot);

/// Arms collection and installs the JSON file write_json() writes. Zeroes
/// all previously collected values. Throws std::invalid_argument on an
/// empty path.
void init(const std::string& path);

/// Arms collection with no output file (dist worker: the registry ships
/// over the pipe instead).
void arm_collection();

/// Arms from the resolved configuration (CLI > SAFELIGHT_METRICS env >
/// SAFELIGHT_METRICS_PIPE env > disarmed). Disarms when no knob is set.
void init_from_config();

/// Disarms and zeroes every metric (references stay valid).
void reset();

bool armed();

/// True when an output file is installed (write_json() would write).
bool has_output();

/// Renders the registry as the deterministic-schema JSON document
/// ("safelight.metrics.v1": sorted keys; histograms carry count/sum/min/
/// max/p50/p95/p99). Exposed for tests; write_json() wraps it.
std::string to_json();

/// Writes to_json() to the init() path. Returns false (writing nothing)
/// when no output file is installed.
bool write_json();

/// Multi-line end-of-run summary table, every line "[metrics] ..."-
/// prefixed (fault::report() style). Empty string when nothing was
/// recorded.
std::string summary();

}  // namespace safelight::metrics
