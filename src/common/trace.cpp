#include "common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace safelight::trace {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// Chrome pid of events recorded in this process; the coordinator ingests
/// worker events under pids >= 2.
constexpr std::uint32_t kLocalPid = 1;

/// Per-thread event buffer. Appends lock only the owning thread's mutex —
/// uncontended except at the flush/drain instant — so recording threads
/// never serialize against each other.
struct ThreadBuffer {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::vector<RawEvent> events;
};

struct Global {
  std::mutex mu;
  /// Registered once per thread, kept for the process lifetime so cached
  /// thread_local pointers never dangle across init()/reset() cycles.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
  /// (pid, event) pairs absorbed from workers.
  std::vector<std::pair<std::uint32_t, RawEvent>> foreign;
  std::map<std::uint32_t, std::string> track_names;
  std::string path;
  std::uint64_t base_ns = 0;
};

Global& global() {
  static Global g;
  return g;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Global& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    b->tid = g.next_tid++;
    g.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void clear_buffers_locked(Global& g) {
  for (const auto& buffer : g.buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
  g.foreign.clear();
  g.track_names.clear();
}

void arm(const std::string& path) {
  Global& g = global();
  {
    const std::lock_guard<std::mutex> lock(g.mu);
    clear_buffers_locked(g);
    g.path = path;
    g.base_ns = detail::now_ns();
    // Default local track name; the dist coordinator overwrites it with
    // "coordinator" when worker tracks join the trace.
    if (!path.empty()) g.track_names[kLocalPid] = "safelight";
  }
  detail::g_armed.store(true, std::memory_order_relaxed);
}

/// Microseconds with nanosecond resolution, rebased against `base`.
double to_us(std::uint64_t ns, std::uint64_t base) {
  return ns <= base ? 0.0 : static_cast<double>(ns - base) / 1000.0;
}

void write_event(JsonWriter& json, std::uint32_t pid, const RawEvent& e,
                 std::uint64_t base) {
  json.begin_object();
  json.key("name").value(e.name);
  json.key("cat").value(e.cat);
  json.key("ph").value("X");
  json.key("ts").value(to_us(e.start_ns, base), 3);
  json.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0, 3);
  json.key("pid").value(static_cast<std::uint64_t>(pid));
  json.key("tid").value(static_cast<std::uint64_t>(e.tid));
  if (!e.num_args.empty() || !e.str_args.empty()) {
    json.key("args").begin_object();
    for (const auto& [key, v] : e.num_args) json.key(key).value(v, 6);
    for (const auto& [key, v] : e.str_args) json.key(key).value(v);
    json.end_object();
  }
  json.end_object();
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record_event(RawEvent&& event) {
  ThreadBuffer& buffer = thread_buffer();
  event.tid = buffer.tid;
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

}  // namespace detail

void Span::open(const char* cat, std::string name) {
  event_ = new RawEvent;
  event_->cat = cat;
  event_->name = std::move(name);
  event_->start_ns = detail::now_ns();
}

void Span::close() {
  event_->dur_ns = detail::now_ns() - event_->start_ns;
  detail::record_event(std::move(*event_));
  delete event_;
  event_ = nullptr;
}

void Span::add_num_arg(const char* key, double v) {
  event_->num_args.emplace_back(key, v);
}

void Span::add_str_arg(const char* key, std::string v) {
  event_->str_args.emplace_back(key, std::move(v));
}

void init(const std::string& path) {
  if (path.empty()) {
    throw std::invalid_argument("trace::init requires a non-empty path");
  }
  arm(path);
}

void arm_buffering() { arm(""); }

void init_from_config() {
  const std::string path = config::trace_path();
  if (!path.empty()) {
    init(path);
  } else if (!env_string("SAFELIGHT_TRACE_PIPE", "").empty()) {
    arm_buffering();
  } else {
    reset();
  }
}

void reset() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  Global& g = global();
  const std::lock_guard<std::mutex> lock(g.mu);
  clear_buffers_locked(g);
  g.path.clear();
  g.base_ns = 0;
}

bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

bool has_output() {
  Global& g = global();
  const std::lock_guard<std::mutex> lock(g.mu);
  return !g.path.empty();
}

void record(RawEvent event) { detail::record_event(std::move(event)); }

std::vector<RawEvent> drain() {
  Global& g = global();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(g.mu);
    buffers = g.buffers;
  }
  std::vector<RawEvent> out;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mu);
    for (auto& event : buffer->events) out.push_back(std::move(event));
    buffer->events.clear();
  }
  return out;
}

void ingest(std::uint32_t pid, std::vector<RawEvent> events) {
  Global& g = global();
  const std::lock_guard<std::mutex> lock(g.mu);
  for (auto& event : events) g.foreign.emplace_back(pid, std::move(event));
}

void set_track_name(std::uint32_t pid, const std::string& name) {
  Global& g = global();
  const std::lock_guard<std::mutex> lock(g.mu);
  g.track_names[pid] = name;
}

std::size_t flush() {
  Global& g = global();
  std::string path;
  std::uint64_t base = 0;
  {
    const std::lock_guard<std::mutex> lock(g.mu);
    path = g.path;
    base = g.base_ns;
  }
  if (path.empty()) return 0;

  std::vector<std::pair<std::uint32_t, RawEvent>> all;
  for (auto& event : drain()) all.emplace_back(kLocalPid, std::move(event));
  std::map<std::uint32_t, std::string> track_names;
  {
    const std::lock_guard<std::mutex> lock(g.mu);
    for (auto& foreign : g.foreign) all.push_back(std::move(foreign));
    g.foreign.clear();
    track_names = g.track_names;
  }
  // Deterministic event order: by track, then start time, parents (longer
  // duration) before their children at equal start.
  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    if (a.second.tid != b.second.tid) return a.second.tid < b.second.tid;
    if (a.second.start_ns != b.second.start_ns) {
      return a.second.start_ns < b.second.start_ns;
    }
    return a.second.dur_ns > b.second.dur_ns;
  });

  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const auto& [pid, event] : all) write_event(json, pid, event, base);
  for (const auto& [pid, name] : track_names) {
    json.begin_object();
    json.key("name").value("process_name");
    json.key("ph").value("M");
    json.key("pid").value(static_cast<std::uint64_t>(pid));
    json.key("tid").value(static_cast<std::uint64_t>(0));
    json.key("args").begin_object();
    json.key("name").value(name);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.key("displayTimeUnit").value("ms");
  json.end_object();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "cannot open trace output file '" + path + "'");
  const std::string text = std::move(json).str();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.put('\n');
  out.flush();
  require(out.good(), "failed writing trace output file '" + path + "'");
  return all.size();
}

}  // namespace safelight::trace
