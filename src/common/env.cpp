#include "common/env.hpp"

#include <cstdlib>

namespace safelight {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<std::int64_t>(parsed);
}

Scale env_scale() {
  const std::string raw = env_string("SAFELIGHT_SCALE", "default");
  if (raw == "tiny") return Scale::kTiny;
  if (raw == "full") return Scale::kFull;
  return Scale::kDefault;
}

std::string to_string(Scale scale) {
  switch (scale) {
    case Scale::kTiny: return "tiny";
    case Scale::kFull: return "full";
    case Scale::kDefault: break;
  }
  return "default";
}

}  // namespace safelight
