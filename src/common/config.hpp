// Unified run-time configuration (the SAFELIGHT_* knobs).
//
// Every sweep entry point — the `safelight` CLI, the per-figure bench
// binaries, the tests — resolves its knobs through this one module instead
// of parsing environment variables ad hoc. The precedence rule, applied
// uniformly to every knob, is:
//
//     CLI flag  >  environment variable  >  built-in default
//
// The CLI layer installs parsed flags as a config::Overrides block; code
// that never sees a CLI (tests, library callers) simply gets env-or-default
// behaviour. Unknown *values* are rejected loudly (scale() throws on an
// unrecognized SAFELIGHT_SCALE instead of silently running at default
// scale), closing the silent-clamp bug class.
//
// Knobs and their environment variables:
//   scale()       SAFELIGHT_SCALE        "tiny" | "default" | "full"
//   seed_count()  SAFELIGHT_SEEDS        placements per grid cell (>= 1)
//   out_dir()     SAFELIGHT_OUT          CSV/JSON output directory
//   zoo_dir()     SAFELIGHT_ZOO          trained-model + result-store cache
//   threads()     SAFELIGHT_THREADS      worker threads (>= 1)
//   fault_mode()  SAFELIGHT_FAULT_MODE   fault injection (common/fault.hpp):
//                                        none|independent|run_length|uniform
//   fault_point() SAFELIGHT_FAULT_POINT  fault-point filter (empty = all)
//   fault_n()     SAFELIGHT_FAULT_N      run length of the injected crash
//   fault_prob()  SAFELIGHT_FAULT_PROB   independent-mode plug probability
//   fault_seed()  SAFELIGHT_FAULT_SEED   seed of the injection draws
//   workers()     SAFELIGHT_WORKERS      distributed worker processes
//                                        (0 = in-process, no coordinator)
//   heartbeat_timeout_s()  SAFELIGHT_HEARTBEAT_TIMEOUT  seconds of worker
//                                        silence before it is declared hung
//   max_task_retries()     SAFELIGHT_MAX_TASK_RETRIES   failures before a
//                                        task is quarantined as poison
//   trace_path()   SAFELIGHT_TRACE       Chrome trace-event output file
//                                        (empty = tracing disarmed)
//   metrics_path() SAFELIGHT_METRICS     metrics JSON output file
//                                        (empty = metrics disarmed)
//   backend()      SAFELIGHT_BACKEND     gemm compute backend: "auto" or a
//                                        variant name (nn/backend.hpp)
//   serve_port()   SAFELIGHT_SERVE_PORT  `safelight serve` TCP port
//                                        (0 = ephemeral)
//   serve_slots()  SAFELIGHT_SERVE_SLOTS concurrent experiment slots
//   serve_queue_depth() SAFELIGHT_SERVE_QUEUE  jobs allowed to wait beyond
//                                        the running ones before 429
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/env.hpp"

namespace safelight::config {

/// CLI-level settings; a field left empty defers to env-or-default. The CLI
/// installs one of these after flag parsing; nothing else should.
struct Overrides {
  std::optional<Scale> scale;
  std::optional<std::size_t> seed_count;
  std::optional<std::string> out_dir;
  std::optional<std::string> zoo_dir;
  std::optional<std::size_t> threads;
  std::optional<std::uint64_t> base_seed;
  std::optional<std::string> fault_mode;
  std::optional<std::string> fault_point;
  std::optional<std::uint64_t> fault_n;
  std::optional<std::size_t> workers;
  std::optional<double> heartbeat_timeout_s;
  std::optional<std::size_t> max_task_retries;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> backend;
  std::optional<std::uint16_t> serve_port;
  std::optional<std::size_t> serve_slots;
  std::optional<std::size_t> serve_queue_depth;
};

/// Installs `overrides` as the process-wide CLI layer (replacing any
/// previous block). Call before any sweep work starts: threads() feeds the
/// worker pool, which caches its size on first use.
void set_overrides(const Overrides& overrides);

/// The active CLI layer (all fields empty when no CLI installed one).
const Overrides& overrides();

/// RAII guard for tests: installs `overrides`, restores the previous block
/// on destruction.
class ScopedOverrides {
 public:
  explicit ScopedOverrides(const Overrides& next);
  ~ScopedOverrides();
  ScopedOverrides(const ScopedOverrides&) = delete;
  ScopedOverrides& operator=(const ScopedOverrides&) = delete;

 private:
  Overrides previous_;
};

/// Parses a scale name; throws std::invalid_argument listing the valid
/// names on anything else.
Scale parse_scale(const std::string& name);

/// Experiment scale: CLI > SAFELIGHT_SCALE > Scale::kDefault. Throws on an
/// unrecognized SAFELIGHT_SCALE value instead of silently defaulting.
Scale scale();

/// Placements per grid cell: CLI > SAFELIGHT_SEEDS > `fallback` (each
/// experiment supplies its own paper default). Values < 1 from the
/// environment are rejected with an actionable message.
std::size_t seed_count(std::size_t fallback);

/// Base placement seed: CLI > SAFELIGHT_BASE_SEED > `fallback`.
std::uint64_t base_seed(std::uint64_t fallback = 1000);

/// CSV/JSON output directory: CLI > SAFELIGHT_OUT > "safelight_out".
/// Created on demand.
std::string out_dir();

/// Model/result cache directory: CLI > SAFELIGHT_ZOO > "safelight_zoo".
/// Not created here; ModelZoo owns directory creation.
std::string zoo_dir();

/// Worker-thread count: CLI > SAFELIGHT_THREADS > hardware concurrency.
/// Always >= 1. Note safelight::worker_count() caches this on first use.
std::size_t threads();

/// Fault-injection mode name: CLI > SAFELIGHT_FAULT_MODE > "none". Returned
/// verbatim; fault::parse_mode rejects unknown names with the valid list.
std::string fault_mode();

/// Fault-point filter: CLI > SAFELIGHT_FAULT_POINT > "" (every point).
std::string fault_point();

/// Injected-crash run length: CLI > SAFELIGHT_FAULT_N > 1. Values < 1 are
/// rejected (the plug is pulled on the n-th matched hit, 1-based).
std::uint64_t fault_n();

/// Independent-mode plug probability: SAFELIGHT_FAULT_PROB > 0.0. Out-of-
/// range values are rejected by fault::init.
double fault_prob();

/// Seed of the fault-injection draws: SAFELIGHT_FAULT_SEED > 1.
std::uint64_t fault_seed();

/// Distributed worker-process count: CLI > SAFELIGHT_WORKERS > 0.
/// 0 means "no coordinator": experiments run in-process as always.
std::size_t workers();

/// Seconds of worker silence (no heartbeat, no completion) before the
/// coordinator declares it hung and reassigns its task:
/// CLI > SAFELIGHT_HEARTBEAT_TIMEOUT > 10. Must be > 0.
double heartbeat_timeout_s();

/// Times a task may fail (worker crash or hang) before the coordinator
/// quarantines it as poison: CLI > SAFELIGHT_MAX_TASK_RETRIES > 3.
std::size_t max_task_retries();

/// Chrome trace-event output file: CLI > SAFELIGHT_TRACE > "" (tracing
/// disarmed). trace::init_from_config() consumes this.
std::string trace_path();

/// Metrics JSON output file: CLI > SAFELIGHT_METRICS > "" (metrics
/// disarmed). metrics::init_from_config() consumes this.
std::string metrics_path();

/// GEMM compute backend name: CLI > SAFELIGHT_BACKEND > "auto". Returned
/// verbatim; nn::backend::resolve rejects unknown or unsupported names
/// with the registered-variant list.
std::string backend();

/// `safelight serve` TCP port: CLI > SAFELIGHT_SERVE_PORT > 8080.
/// 0 binds an ephemeral port (tests, CI smoke); values > 65535 are
/// rejected.
std::uint16_t serve_port();

/// Concurrent experiment slots of the serve daemon:
/// CLI > SAFELIGHT_SERVE_SLOTS > 2. Must be >= 1.
std::size_t serve_slots();

/// Jobs allowed to wait beyond the running ones before the daemon answers
/// 429: CLI > SAFELIGHT_SERVE_QUEUE > 4. 0 disables queuing (admission
/// only while a slot is free).
std::size_t serve_queue_depth();

/// Strict numeric env reads shared by every numeric knob above (and by the
/// CLI's worker path): unset/empty -> nullopt; a value that is not
/// entirely a number throws std::invalid_argument naming the variable —
/// the actionable exit-2 path, never an uncaught parse error or a silent
/// fallback (env_int's lenient behavior is exactly the silent-clamp class
/// this module closes).
std::optional<std::int64_t> strict_env_int(const char* name);
std::optional<double> strict_env_double(const char* name);

}  // namespace safelight::config
