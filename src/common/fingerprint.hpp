// FNV-1a-based fingerprint builder shared by the on-disk caches.
//
// Three caches key their files on content fingerprints (the model zoo on
// training configs, the weights checksum on parameter bytes, the sweep
// result stores on corruption physics). They must all use the same mixing
// so a change to quantization or output width lands everywhere at once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace safelight {

/// Incremental FNV-1a hash with convenience mixers. mix_u64/mix_double add
/// a golden-ratio salt per value (order-sensitive, collision-resistant for
/// short config vectors); mix_bytes is the plain byte-stream FNV-1a used
/// for bulk data like weight tensors.
class Fingerprint {
 public:
  Fingerprint& mix_u64(std::uint64_t v);

  /// Doubles are quantized to 1e-6 before mixing so semantically equal
  /// configs fingerprint equally across platforms.
  Fingerprint& mix_double(double v);

  Fingerprint& mix_bytes(const void* data, std::size_t count);

  /// Short form: low 32 bits as 8 hex chars (cache file name component).
  std::string hex8() const;

  /// Full 64-bit digest as 16 hex chars (content checksums).
  std::string hex16() const;

  /// Raw 64-bit digest (seed derivation from string identifiers).
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace safelight
