// Small CSV writer/reader used by the bench harness and result caches.
//
// The format intentionally stays trivial (no embedded commas/quotes in
// SafeLight's own output); the reader still tolerates quoted fields so cache
// files survive hand edits.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace safelight {

/// Appending CSV writer. Creates parent directories lazily is NOT done here;
/// callers own directory creation.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Writes `header` as first row when
  /// non-empty. Throws std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; fields are emitted verbatim, separated by commas.
  void row(const std::vector<std::string>& fields);

  /// Convenience for mixed string/double rows.
  void row_values(const std::vector<double>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

/// Parsed CSV contents: header + data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Reads a CSV file written by CsvWriter. Returns an empty table when the
/// file does not exist. Throws std::runtime_error on malformed content.
CsvTable read_csv(const std::string& path);

/// Formats a double with fixed precision (default 4) for report rows.
std::string fmt_double(double v, int precision = 4);

}  // namespace safelight
