// Minimal deterministic JSON writer.
//
// The experiment layer serializes every ExperimentResult to JSON next to
// its CSVs (golden-pinned, so the output must be byte-deterministic): keys
// are emitted in call order, doubles print through fmt_double-style fixed
// precision, and strings are escaped per RFC 8259. This is a writer only —
// SafeLight never parses JSON (the result stores use CSV + JSONL streams
// written elsewhere).
//
// Usage:
//   JsonWriter json;
//   json.begin_object();
//   json.key("experiment").value("susceptibility");
//   json.key("rows").begin_array();
//   ...
//   json.end_array();
//   json.end_object();
//   std::string text = std::move(json).str();
#pragma once

#include <cstdint>
#include <string>

namespace safelight {

/// Streaming JSON builder with two-space indentation. Structural misuse
/// (value without a key inside an object, unbalanced end_*) throws
/// std::logic_error — caught by tests, not silently emitted.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value/begin_* attaches to it.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t n);
  JsonWriter& value(std::uint64_t n);
  JsonWriter& value(int n) { return value(static_cast<std::int64_t>(n)); }
  /// Fixed-precision double (default 6 digits), deterministic across hosts.
  JsonWriter& value(double v, int precision = 6);
  JsonWriter& null_value();

  /// Finished document. Throws std::logic_error when containers are still
  /// open.
  std::string str() &&;

  /// Escapes a string per JSON rules (quotes not included).
  static std::string escape(const std::string& raw);

 private:
  void begin_value();
  void indent();

  std::string out_;
  /// Container stack: 'o' = object, 'a' = array.
  std::string stack_;
  bool key_pending_ = false;
  bool container_empty_ = true;
};

}  // namespace safelight
