// Minimal deterministic JSON writer and (since the distributed layer) a
// small strict parser.
//
// The experiment layer serializes every ExperimentResult to JSON next to
// its CSVs (golden-pinned, so the output must be byte-deterministic): keys
// are emitted in call order, doubles print through fmt_double-style fixed
// precision, and strings are escaped per RFC 8259. The coordinator/worker
// pipe protocol (src/dist) additionally needs newline-delimited one-line
// documents, so the writer has a compact mode, and JsonValue::parse reads
// protocol messages back.
//
// Usage:
//   JsonWriter json;
//   json.begin_object();
//   json.key("experiment").value("susceptibility");
//   json.key("rows").begin_array();
//   ...
//   json.end_array();
//   json.end_object();
//   std::string text = std::move(json).str();
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace safelight {

/// Streaming JSON builder with two-space indentation (or single-line
/// compact layout for newline-delimited protocols). Structural misuse
/// (value without a key inside an object, unbalanced end_*) throws
/// std::logic_error — caught by tests, not silently emitted.
class JsonWriter {
 public:
  /// Default: pretty two-space indentation. `compact` emits the whole
  /// document on one line (no spaces), for newline-delimited JSON streams.
  JsonWriter() = default;
  explicit JsonWriter(bool compact) : compact_(compact) {}
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value/begin_* attaches to it.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t n);
  JsonWriter& value(std::uint64_t n);
  JsonWriter& value(int n) { return value(static_cast<std::int64_t>(n)); }
  /// Fixed-precision double (default 6 digits), deterministic across hosts.
  JsonWriter& value(double v, int precision = 6);
  JsonWriter& null_value();

  /// Finished document. Throws std::logic_error when containers are still
  /// open.
  std::string str() &&;

  /// Escapes a string per JSON rules (quotes not included).
  static std::string escape(const std::string& raw);

 private:
  void begin_value();
  void indent();

  std::string out_;
  /// Container stack: 'o' = object, 'a' = array.
  std::string stack_;
  bool key_pending_ = false;
  bool container_empty_ = true;
  bool compact_ = false;
};

/// Parsed JSON document (strict RFC 8259 subset: no comments, no trailing
/// commas; numbers parse as double). Object member order is not preserved —
/// SafeLight protocol messages are looked up by key, never re-serialized.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete document; throws std::invalid_argument with the
  /// byte offset on malformed input or trailing garbage.
  static JsonValue parse(const std::string& text);

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw std::invalid_argument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  /// as_number() checked to be a non-negative integer.
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  /// All object members, sorted by key (dynamic-key maps like metric names
  /// decode through this; fixed-field messages use at()).
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup. at() throws std::invalid_argument when the key
  /// is absent (protocol messages treat missing fields as malformed).
  bool has(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace safelight
