// Deterministic fault-point injection ("pull the plug") for crash-
// consistency testing, modeled on katana's libtsuba FaultTest.
//
// Every durable write path in SafeLight — result-store appends, zoo/model
// serialization, the CLI's CSV/JSON emitters — passes through named
// fault::ptp("...") points. In normal operation a point is a single relaxed
// atomic load (disarmed, no-op), so hot paths are unaffected. When armed
// via init() / init_from_config(), each hit increments a per-point counter
// and, depending on the mode, may terminate the process abruptly with
// std::_Exit(kPlugPulledExitCode) — no destructors, no stream flushing —
// simulating a power cut at exactly that byte boundary.
//
// Modes (katana FaultMode, same semantics):
//   kNone            disarmed; ptp() is a no-op branch
//   kIndependent     each matched hit pulls the plug with probability p
//                    (p = 0 arms pure hit *counting*: nothing ever fires,
//                    report() enumerates every live point and its hits)
//   kRunLength       the plug is pulled on exactly the n-th matched hit
//   kUniformOverRun  a run length is drawn uniformly from [1, n] at init()
//                    time from the seeded RNG, then behaves like kRunLength
//
// "Matched" means the hit's point name equals the configured point filter
// (an empty filter matches every point). Counters always track every point
// regardless of the filter, so one counting run enumerates the full live
// instrumentation surface.
//
// Activation follows the common/config precedence rule (CLI flag >
// SAFELIGHT_FAULT_* env > off); see config::fault_mode() and the
// `safelight` CLI's --fault-mode/--fault-point/--fault-n flags. The
// crash-consistency contract this subsystem exists to prove is tested by
// tests/fault_injection_test.cpp and documented in docs/testing.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace safelight::fault {

/// Process exit code of a pulled plug; the test harness distinguishes an
/// injected crash from ordinary failures by it.
inline constexpr int kPlugPulledExitCode = 42;

enum class Mode { kNone, kIndependent, kRunLength, kUniformOverRun };

/// Parses a mode name ("none" | "independent" | "run_length" | "uniform");
/// throws std::invalid_argument listing the valid names on anything else.
Mode parse_mode(const std::string& name);

/// Human-readable mode name.
std::string to_string(Mode mode);

/// One arming of the subsystem.
struct FaultConfig {
  Mode mode = Mode::kNone;
  /// kIndependent: per-hit plug probability in [0, 1].
  double independent_prob = 0.0;
  /// kRunLength / kUniformOverRun: the (maximum) matched-hit count; >= 1.
  std::uint64_t run_length = 1;
  /// Only hits at this point participate in the plug decision; empty
  /// matches every point. Counters are unaffected by the filter.
  std::string point;
  /// Seeds the kIndependent draws and the kUniformOverRun length draw, so
  /// an injected crash reproduces exactly.
  std::uint64_t seed = 1;
};

/// (Re-)arms the subsystem: installs `config`, clears all counters and
/// reseeds the RNG. Mode kNone disarms. Throws std::invalid_argument on an
/// out-of-range probability or a zero run length.
void init(const FaultConfig& config);

/// Arms from the resolved configuration knobs (CLI > SAFELIGHT_FAULT_* env
/// > disarmed); the `safelight` CLI calls this after flag parsing.
void init_from_config();

/// Disarms and clears all counters (tests).
void reset();

/// True when a mode other than kNone is installed.
bool armed();

/// Hit counter of one point since the last init()/reset().
struct PointHits {
  std::string point;
  std::uint64_t hits = 0;
};

/// All points hit since the last init()/reset(), sorted by name.
std::vector<PointHits> counters();

/// Multi-line summary of the armed config and every point's hit count, one
/// "[fault]   <point> hits=<n>" line per point (the fault harness parses
/// these lines to enumerate the live instrumentation surface).
std::string report();

namespace detail {
extern std::atomic<bool> g_armed;
void hit(const char* point);
}  // namespace detail

/// Pull-the-plug point. Place immediately before/between the byte writes of
/// a durable operation; when the armed decision fires, the process exits via
/// std::_Exit — whatever was flushed so far is exactly what a real crash
/// would have left on disk. Disarmed cost: one relaxed atomic load.
inline void ptp(const char* point) {
  if (detail::g_armed.load(std::memory_order_relaxed)) detail::hit(point);
}

/// RAII arming for tests: init(config) now, reset() on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultConfig& config) { init(config); }
  ~ScopedFault() { reset(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace safelight::fault
