#include "common/fingerprint.hpp"

#include <cmath>
#include <cstdio>

namespace safelight {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kGoldenRatio = 0x9e3779b97f4a7c15ULL;
}  // namespace

Fingerprint& Fingerprint::mix_u64(std::uint64_t v) {
  h_ ^= v + kGoldenRatio;
  h_ *= kFnvPrime;
  return *this;
}

Fingerprint& Fingerprint::mix_double(double v) {
  return mix_u64(static_cast<std::uint64_t>(std::llround(v * 1e6)));
}

Fingerprint& Fingerprint::mix_bytes(const void* data, std::size_t count) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < count; ++i) {
    h_ ^= bytes[i];
    h_ *= kFnvPrime;
  }
  return *this;
}

std::string Fingerprint::hex8() const {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08llx",
                static_cast<unsigned long long>(h_ & 0xffffffffULL));
  return buf;
}

std::string Fingerprint::hex16() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h_));
  return buf;
}

}  // namespace safelight
