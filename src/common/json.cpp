#include "common/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace safelight {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  if (compact_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

/// Shared preamble of every value/begin_*: validates the key/position
/// contract and emits the separating comma + layout.
void JsonWriter::begin_value() {
  if (!stack_.empty() && stack_.back() == 'o' && !key_pending_) {
    fail_invariant("JsonWriter: value inside an object needs key() first");
  }
  if (stack_.empty() && !out_.empty()) {
    fail_invariant("JsonWriter: only one top-level value allowed");
  }
  if (!key_pending_ && !stack_.empty()) {
    if (!container_empty_) out_ += ',';
    indent();
  }
  key_pending_ = false;
  container_empty_ = false;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != 'o') {
    fail_invariant("JsonWriter: key() outside an object");
  }
  if (key_pending_) fail_invariant("JsonWriter: key() after key()");
  if (!container_empty_) out_ += ',';
  indent();
  out_ += '"' + escape(name) + (compact_ ? "\":" : "\": ");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  stack_ += 'o';
  container_empty_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o') {
    fail_invariant("JsonWriter: end_object() without open object");
  }
  const bool was_empty = container_empty_;
  stack_.pop_back();
  if (!was_empty) indent();
  out_ += '}';
  container_empty_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  stack_ += 'a';
  container_empty_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    fail_invariant("JsonWriter: end_array() without open array");
  }
  const bool was_empty = container_empty_;
  stack_.pop_back();
  if (!was_empty) indent();
  out_ += ']';
  container_empty_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  begin_value();
  out_ += '"' + escape(text) + '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(bool b) {
  begin_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  begin_value();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t n) {
  begin_value();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(double v, int precision) {
  begin_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  begin_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() && {
  if (!stack_.empty()) {
    fail_invariant("JsonWriter: str() with open containers");
  }
  out_ += '\n';
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// JsonValue: strict recursive-descent parser for protocol messages.
// ---------------------------------------------------------------------------

/// Single-use parser over one document. Kept out of the header; JsonValue
/// befriends it so the value tree can be built in place.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    fail_argument("JSON parse error at byte " + std::to_string(pos_) + ": " +
                  what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{': {
        value.type_ = JsonValue::Type::kObject;
        expect('{');
        if (peek() == '}') { ++pos_; return value; }
        while (true) {
          if (peek() != '"') fail("object key must be a string");
          std::string key = parse_string();
          expect(':');
          if (!value.object_.emplace(std::move(key), parse_value()).second) {
            fail("duplicate object key");
          }
          const char next = peek();
          ++pos_;
          if (next == '}') return value;
          if (next != ',') fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        value.type_ = JsonValue::Type::kArray;
        expect('[');
        if (peek() == ']') { ++pos_; return value; }
        while (true) {
          value.array_.push_back(parse_value());
          const char next = peek();
          ++pos_;
          if (next == ']') return value;
          if (next != ',') fail("expected ',' or ']' in array");
        }
      }
      case '"':
        value.type_ = JsonValue::Type::kString;
        value.string_ = parse_string();
        return value;
      case 't':
        if (!consume_keyword("true")) fail("invalid literal");
        value.type_ = JsonValue::Type::kBool;
        value.bool_ = true;
        return value;
      case 'f':
        if (!consume_keyword("false")) fail("invalid literal");
        value.type_ = JsonValue::Type::kBool;
        value.bool_ = false;
        return value;
      case 'n':
        if (!consume_keyword("null")) fail("invalid literal");
        return value;  // kNull
      default: {
        if (c != '-' && (c < '0' || c > '9')) fail("unexpected character");
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        value.type_ = JsonValue::Type::kNumber;
        value.number_ = std::strtod(begin, &end);
        if (end == begin) fail("malformed number");
        pos_ += static_cast<std::size_t>(end - begin);
        return value;
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // The protocol only ever escapes control characters; encode the
          // code point as UTF-8 (BMP only, no surrogate-pair handling).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

namespace {
[[noreturn]] void type_mismatch(const char* wanted) {
  fail_argument(std::string("JsonValue: value is not ") + wanted);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_mismatch("a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_mismatch("a number");
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  const double n = as_number();
  if (n < 0.0 || n != static_cast<double>(static_cast<std::uint64_t>(n))) {
    type_mismatch("a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_mismatch("a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_mismatch("an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_mismatch("an object");
  return object_;
}

bool JsonValue::has(const std::string& key) const {
  if (type_ != Type::kObject) type_mismatch("an object");
  return object_.count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type_ != Type::kObject) type_mismatch("an object");
  const auto it = object_.find(key);
  if (it == object_.end()) {
    fail_argument("JsonValue: missing object key '" + key + "'");
  }
  return it->second;
}

}  // namespace safelight
