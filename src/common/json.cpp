#include "common/json.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace safelight {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

/// Shared preamble of every value/begin_*: validates the key/position
/// contract and emits the separating comma + layout.
void JsonWriter::begin_value() {
  if (!stack_.empty() && stack_.back() == 'o' && !key_pending_) {
    fail_invariant("JsonWriter: value inside an object needs key() first");
  }
  if (stack_.empty() && !out_.empty()) {
    fail_invariant("JsonWriter: only one top-level value allowed");
  }
  if (!key_pending_ && !stack_.empty()) {
    if (!container_empty_) out_ += ',';
    indent();
  }
  key_pending_ = false;
  container_empty_ = false;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != 'o') {
    fail_invariant("JsonWriter: key() outside an object");
  }
  if (key_pending_) fail_invariant("JsonWriter: key() after key()");
  if (!container_empty_) out_ += ',';
  indent();
  out_ += '"' + escape(name) + "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  stack_ += 'o';
  container_empty_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o') {
    fail_invariant("JsonWriter: end_object() without open object");
  }
  const bool was_empty = container_empty_;
  stack_.pop_back();
  if (!was_empty) indent();
  out_ += '}';
  container_empty_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  stack_ += 'a';
  container_empty_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    fail_invariant("JsonWriter: end_array() without open array");
  }
  const bool was_empty = container_empty_;
  stack_.pop_back();
  if (!was_empty) indent();
  out_ += ']';
  container_empty_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  begin_value();
  out_ += '"' + escape(text) + '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(bool b) {
  begin_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  begin_value();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t n) {
  begin_value();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(double v, int precision) {
  begin_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  begin_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() && {
  if (!stack_.empty()) {
    fail_invariant("JsonWriter: str() with open containers");
  }
  out_ += '\n';
  return std::move(out_);
}

}  // namespace safelight
