#include "nn/conv.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "nn/gemm.hpp"

namespace safelight::nn {

Conv2d::Conv2d(std::size_t in_c, std::size_t out_c, std::size_t kernel,
               std::size_t stride, std::size_t pad, Rng& rng, bool bias)
    : in_c_(in_c), out_c_(out_c), kernel_(kernel), stride_(stride), pad_(pad),
      has_bias_(bias) {
  require(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0,
          "Conv2d: channels, kernel and stride must be positive");
  weight_ = Param("conv.weight", ParamKind::kConvWeight,
                  Tensor({out_c_, in_c_ * kernel_ * kernel_}));
  kaiming_init(weight_.value, in_c_ * kernel_ * kernel_, rng);
  if (has_bias_) {
    bias_ = Param("conv.bias", ParamKind::kElectronic, Tensor({out_c_}));
  }
}

ConvGeom Conv2d::geom_for(const Shape& in) const {
  require(in.size() == 4, "Conv2d: expected [N,C,H,W], got " +
                              shape_to_string(in));
  require(in[1] == in_c_, "Conv2d: expected " + std::to_string(in_c_) +
                              " input channels, got " + std::to_string(in[1]));
  ConvGeom g;
  g.in_c = in_c_;
  g.in_h = in[2];
  g.in_w = in[3];
  g.k_h = g.k_w = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  require(g.valid(), "Conv2d: kernel does not fit input " +
                         shape_to_string(in));
  return g;
}

Shape Conv2d::output_shape(const Shape& in) const {
  const ConvGeom g = geom_for(in);
  return {in[0], out_c_, g.out_h(), g.out_w()};
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  const ConvGeom g = geom_for(x.shape());
  const std::size_t batch = x.dim(0);
  const std::size_t hw = g.out_hw();
  const std::size_t patch = g.patch_len();
  Tensor out({batch, out_c_, g.out_h(), g.out_w()});

  const float* w = weight_.value.data();
  const float* b = has_bias_ ? bias_.value.data() : nullptr;
  parallel_for_chunks(
      0, batch,
      [&](std::size_t lo, std::size_t hi) {
        // Per-worker scratch: the im2col buffer lives in the thread-local
        // arena and is reused across every batch item of the chunk.
        ScratchArena& arena = ScratchArena::local();
        const ScratchArena::Frame frame(arena);
        float* cols = arena.alloc(patch * hw);
        for (std::size_t n = lo; n < hi; ++n) {
          im2col(x.data() + n * in_c_ * g.in_h * g.in_w, g, cols);
          float* out_n = out.data() + n * out_c_ * hw;
          // Bias (one per output channel = per GEMM row) fuses into the
          // kernel epilogue instead of a second pass over the output.
          gemm(w, cols, out_n, out_c_, patch, hw, /*accumulate=*/false,
               /*row_bias=*/b);
        }
      },
      1);

  if (train) {
    cached_input_ = x;
  } else {
    cached_input_ = Tensor();
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  require(!cached_input_.empty(),
          "Conv2d::backward called without forward(train=true)");
  const Tensor& x = cached_input_;
  const ConvGeom g = geom_for(x.shape());
  const std::size_t batch = x.dim(0);
  const std::size_t hw = g.out_hw();
  const std::size_t patch = g.patch_len();
  require(grad_out.shape() == output_shape(x.shape()),
          "Conv2d::backward: grad shape mismatch");

  Tensor grad_in(x.shape());
  const float* w = weight_.value.data();

  // Per-part gradient accumulators avoid data races. The batch splits
  // into a *fixed* number of contiguous parts — independent of
  // worker_count() — each summed serially and merged in part order, so
  // the gradient's floating-point reduction order (and therefore every
  // trained weight) is bitwise-identical for any SAFELIGHT_THREADS. The
  // defense subsystem's detector scores amplify even 1-ULP weight
  // differences, so thread-invariant training is part of the determinism
  // contract, not a nicety.
  constexpr std::size_t kGradParts = 8;
  const std::size_t parts = std::min<std::size_t>(kGradParts, batch);
  const std::size_t per_part = (batch + parts - 1) / parts;
  std::vector<Tensor> gw_parts;
  std::vector<Tensor> gb_parts;
  for (std::size_t i = 0; i < parts; ++i) {
    gw_parts.emplace_back(weight_.value.shape());
    gb_parts.emplace_back(Shape{out_c_});
  }

  parallel_for(
      0, parts,
      [&](std::size_t part) {
        const std::size_t lo = part * per_part;
        const std::size_t hi = std::min(batch, lo + per_part);
        float* gw = gw_parts[part].data();
        float* gb = gb_parts[part].data();
        ScratchArena& arena = ScratchArena::local();
        const ScratchArena::Frame frame(arena);
        float* cols = arena.alloc(patch * hw);
        float* cols_grad = arena.alloc(patch * hw);
        for (std::size_t n = lo; n < hi; ++n) {
          const float* gout_n = grad_out.data() + n * out_c_ * hw;
          im2col(x.data() + n * in_c_ * g.in_h * g.in_w, g, cols);
          // dW += gout_n [outC x hw] * cols^T [hw x patch]
          gemm_bt(gout_n, cols, gw, out_c_, hw, patch,
                  /*accumulate=*/true);
          if (has_bias_) {
            for (std::size_t o = 0; o < out_c_; ++o) {
              const float* row = gout_n + o * hw;
              float acc = 0.0f;
              for (std::size_t i = 0; i < hw; ++i) acc += row[i];
              gb[o] += acc;
            }
          }
          // dcols = W^T [patch x outC] * gout_n [outC x hw]
          gemm_at(w, gout_n, cols_grad, patch, out_c_, hw);
          col2im(cols_grad, g,
                 grad_in.data() + n * in_c_ * g.in_h * g.in_w);
        }
      },
      1);

  for (std::size_t i = 0; i < parts; ++i) {
    weight_.grad += gw_parts[i];
    if (has_bias_) bias_.grad += gb_parts[i];
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ",k" + std::to_string(kernel_) + ",s" + std::to_string(stride_) +
         ",p" + std::to_string(pad_) + ")";
}

}  // namespace safelight::nn
