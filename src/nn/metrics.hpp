// Classification metrics beyond plain accuracy.
//
// Attack analyses benefit from class-level visibility: hotspot corruption
// tends to collapse predictions onto a few classes (saturated logits),
// while scattered actuation noise degrades classes more uniformly. The
// confusion matrix exposes that structure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/sequential.hpp"

namespace safelight::nn {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  /// Records one (true label, predicted label) observation.
  void record(int truth, int prediction);

  /// Counts at (truth, prediction).
  std::size_t count(int truth, int prediction) const;

  std::size_t num_classes() const { return classes_; }
  std::size_t total() const { return total_; }

  /// Overall accuracy; 0 when empty.
  double accuracy() const;

  /// Recall of one class (diagonal / row sum); 0 for unseen classes.
  double recall(int truth) const;

  /// Precision of one class (diagonal / column sum); 0 when never predicted.
  double precision(int prediction) const;

  /// Mean per-class recall (balanced accuracy); ignores unseen classes.
  double balanced_accuracy() const;

  /// Fraction of all predictions landing on the most-predicted class.
  /// 1/num_classes for uniform predictions, ~1.0 for a collapsed model.
  double prediction_collapse() const;

  /// Multi-line fixed-width rendering (rows = truth, cols = prediction).
  std::string render() const;

 private:
  std::size_t index(int truth, int prediction) const;

  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // row-major [truth][prediction]
};

/// Evaluates `model` over `data` and accumulates the confusion matrix.
ConfusionMatrix confusion_matrix(Sequential& model, const Dataset& data,
                                 std::size_t batch_size = 64);

}  // namespace safelight::nn
