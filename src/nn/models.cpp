#include "nn/models.hpp"

#include "common/error.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"

namespace safelight::nn {

std::string to_string(ModelId id) {
  switch (id) {
    case ModelId::kCnn1: return "cnn1";
    case ModelId::kResNet18: return "resnet18";
    case ModelId::kVgg16v: break;
  }
  return "vgg16v";
}

ModelId model_id_from_string(const std::string& name) {
  if (name == "cnn1") return ModelId::kCnn1;
  if (name == "resnet18") return ModelId::kResNet18;
  if (name == "vgg16v") return ModelId::kVgg16v;
  fail_argument("model_id_from_string: unknown model '" + name +
                "' (valid models: cnn1, resnet18, vgg16v)");
}

std::vector<ModelId> paper_models() {
  return {ModelId::kCnn1, ModelId::kResNet18, ModelId::kVgg16v};
}

std::unique_ptr<Sequential> make_cnn1(const ModelConfig& config) {
  require(config.image_size >= 16,
          "make_cnn1: LeNet layout needs image size >= 16");
  Rng rng(config.seed);
  auto model = std::make_unique<Sequential>();
  model->emplace<Conv2d>(config.in_channels, 6, 5, 1, 0, rng);
  model->emplace<ReLU>();
  model->emplace<MaxPool2d>(2);
  model->emplace<Conv2d>(6, 16, 5, 1, 0, rng);
  model->emplace<ReLU>();
  model->emplace<MaxPool2d>(2);
  model->emplace<Flatten>();
  const std::size_t post = ((config.image_size - 4) / 2 - 4) / 2;
  model->emplace<Linear>(16 * post * post, 120, rng);
  model->emplace<ReLU>();
  model->emplace<Linear>(120, 84, rng);
  model->emplace<ReLU>();
  model->emplace<Linear>(84, config.classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_resnet18(const ModelConfig& config) {
  require(config.width >= 2, "make_resnet18: width must be >= 2");
  require(config.image_size >= 8, "make_resnet18: image size must be >= 8");
  Rng rng(config.seed);
  auto model = std::make_unique<Sequential>();
  const std::size_t w = config.width;
  // CIFAR-style stem (3x3, stride 1) — the paper's 17-conv count implies no
  // 7x7 stem and no projection shortcuts.
  model->emplace<Conv2d>(config.in_channels, w, 3, 1, 1, rng, /*bias=*/false);
  model->emplace<BatchNorm2d>(w);
  model->emplace<ReLU>();
  const std::size_t widths[4] = {w, 2 * w, 4 * w, 8 * w};
  std::size_t in_c = w;
  for (std::size_t stage = 0; stage < 4; ++stage) {
    const std::size_t out_c = widths[stage];
    const std::size_t first_stride = stage == 0 ? 1 : 2;
    model->emplace<BasicBlock>(in_c, out_c, first_stride, rng);
    model->emplace<BasicBlock>(out_c, out_c, 1, rng);
    in_c = out_c;
  }
  model->emplace<GlobalAvgPool>();
  model->emplace<Flatten>();
  model->emplace<Linear>(8 * w, config.classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_vgg16v(const ModelConfig& config) {
  require(config.width >= 8 && config.width % 8 == 0,
          "make_vgg16v: width must be a positive multiple of 8");
  Rng rng(config.seed);
  auto model = std::make_unique<Sequential>();
  // Conv ladder scaled from the paper-scale [64,128,128,256,512,512].
  const std::size_t scale = config.width;  // paper scale: 64
  const std::size_t ladder[6] = {scale,     2 * scale, 2 * scale,
                                 4 * scale, 8 * scale, 8 * scale};
  // Five pools shrink 224 -> 7 at paper scale; pools are skipped once the
  // spatial size reaches 1 so reduced-resolution variants stay valid.
  std::size_t spatial = config.image_size;
  std::size_t in_c = config.in_channels;
  for (std::size_t i = 0; i < 6; ++i) {
    model->emplace<Conv2d>(in_c, ladder[i], 3, 1, 1, rng);
    model->emplace<ReLU>();
    const bool want_pool = i < 5;  // pools after conv1..conv5
    if (want_pool && spatial >= 2) {
      model->emplace<MaxPool2d>(2);
      spatial /= 2;
    }
    in_c = ladder[i];
  }
  model->emplace<Flatten>();
  const std::size_t flat = in_c * spatial * spatial;
  model->emplace<Linear>(flat, config.fc_dim, rng);
  model->emplace<ReLU>();
  if (config.dropout > 0.0f) {
    model->emplace<Dropout>(config.dropout, config.seed + 101);
  }
  model->emplace<Linear>(config.fc_dim, config.fc_dim, rng);
  model->emplace<ReLU>();
  if (config.dropout > 0.0f) {
    model->emplace<Dropout>(config.dropout, config.seed + 202);
  }
  model->emplace<Linear>(config.fc_dim, config.classes, rng);
  return model;
}

std::unique_ptr<Sequential> make_model(ModelId id, const ModelConfig& config) {
  switch (id) {
    case ModelId::kCnn1: return make_cnn1(config);
    case ModelId::kResNet18: return make_resnet18(config);
    case ModelId::kVgg16v: break;
  }
  return make_vgg16v(config);
}

}  // namespace safelight::nn
