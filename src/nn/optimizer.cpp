#include "nn/optimizer.hpp"

#include "common/error.hpp"

namespace safelight::nn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  require(config_.lr > 0.0f, "Sgd: learning rate must be positive");
  require(config_.momentum >= 0.0f && config_.momentum < 1.0f,
          "Sgd: momentum must be in [0,1)");
  require(config_.weight_decay >= 0.0f,
          "Sgd: weight decay must be non-negative");
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    require(p != nullptr, "Sgd: null parameter");
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    const bool decay = config_.weight_decay > 0.0f &&
                       (config_.decay_electronic ||
                        p.kind != ParamKind::kElectronic);
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      float g = p.grad[j];
      if (decay) g += config_.weight_decay * p.value[j];
      v[j] = config_.momentum * v[j] + g;
      p.value[j] -= config_.lr * v[j];
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace safelight::nn
