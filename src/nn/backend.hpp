// Pluggable compute-backend registry with runtime kernel dispatch.
//
// The packed GEMM kernel used to be one translation unit compiled with
// -march=native: a binary built on an AVX-512 host SIGILLed on an older
// fleet node, the exact wrong model for heterogeneous deployments (and a
// latent trap for SAFELIGHT_DIST_BIN, which lets a coordinator exec a
// worker binary built elsewhere). Instead, the kernel body now compiles
// into several variants of ONE fat binary — scalar (baseline ISA only),
// AVX2 and AVX-512, each a separate translation unit with per-source
// COMPILE_OPTIONS (src/CMakeLists.txt) — and this registry probes the CPU
// at runtime (__builtin_cpu_supports) to pick the best variant the host
// can actually execute.
//
// Selection: --backend / SAFELIGHT_BACKEND through the standard config
// precedence (CLI flag > env > default "auto"); "auto" takes the highest-
// priority supported variant. The choice is reported through [metrics]
// (counter backend.selected.<name>) and trace metadata by announce().
//
// Numerics contract: every variant reduces each output element over k in
// ascending order through a single accumulator with FP contraction off, so
// all variants — and gemm_ref — are bitwise-identical on every input.
// Backend choice can therefore never change a CSV byte; it only changes
// speed. tests/gemm_equivalence_test.cpp enforces this per compiled-in
// variant, and kernel_fingerprint() turns it into a handshake: a worker
// whose probe-GEMM fingerprint differs from the coordinator's is running
// genuinely different numerics and is rejected (dist/coordinator.cpp).
//
// ComputeBackend is the seam ROADMAP item 3 widens: today it owns the GEMM
// kernel table; conv/quantize variants (and remote/GPU backends) slot in
// beside it without touching call sites.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace safelight::nn::backend {

// Register tile shared by the dispatcher (packed-buffer sizing) and every
// kernel variant: kMr rows x kNr columns of C accumulated in registers
// (kNr floats = 2 x 512-bit or 4 x 256-bit vectors per row). Larger tiles
// spill; smaller ones leave FLOPs on the table.
inline constexpr std::size_t kMr = 4;
inline constexpr std::size_t kNr = 32;

/// Argument block for one GEMM: the dispatcher (nn/gemm.cpp) owns packing
/// allocation and row parallelism; variants only compute over raw pointers.
struct GemmArgs {
  const float* a = nullptr;       // row-major [m x k], or [k x m] for *_at
  const float* packed = nullptr;  // B packed into kNr-wide panels
  float* c = nullptr;             // row-major [m x n]
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t n = 0;
  bool accumulate = false;
  const float* row_bias = nullptr;  // added per output row (Conv2d epilogue)
  const float* col_bias = nullptr;  // added per output column (Linear)
};

/// Per-variant kernel table. Plain function pointers on purpose: the
/// variant translation units are compiled with ISA flags the host may not
/// support, so nothing in them may be reachable except through this table
/// after the runtime probe said yes (an inline symbol shared with baseline
/// code could be COMDAT-picked from the wrong TU and SIGILL).
struct GemmKernels {
  /// Packs row-major B[k x n] into kNr-wide zero-padded column panels.
  void (*pack_b)(const float* b, std::size_t k, std::size_t n, float* packed);
  /// Same panels from B^T input, where B is stored [n x k] row-major.
  void (*pack_bt)(const float* b, std::size_t k, std::size_t n, float* packed);
  /// C rows [lo, hi) from row-major A; the dispatcher parallelizes over
  /// disjoint row ranges, so results are independent of the chunking.
  void (*run_rows)(const GemmArgs& args, std::size_t lo, std::size_t hi);
  /// Same, fetching A transposed (A stored [k x m], read a[p*m + i]).
  void (*run_rows_at)(const GemmArgs& args, std::size_t lo, std::size_t hi);
};

/// One compute substrate the dispatcher can route kernels through.
class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;
  /// Stable lowercase identifier ("scalar", "avx2", "avx512"): the value
  /// of --backend / SAFELIGHT_BACKEND, and the tail of the
  /// backend.selected.<name> metric.
  virtual const char* name() const = 0;
  /// Auto-selection rank; "auto" picks the highest-priority supported
  /// variant.
  virtual int priority() const = 0;
  /// Runtime CPU-feature probe. Must be true before any kernel in the
  /// table is called — this is the check that fixes the SIGILL bug.
  virtual bool supported() const = 0;
  virtual const GemmKernels& gemm_kernels() const = 0;
};

/// Every variant compiled into this binary (host support varies), sorted
/// by descending priority. Always contains at least "scalar".
const std::vector<const ComputeBackend*>& registered();

/// Comma-separated names of registered() — for error messages and docs.
std::string registered_names();

/// Resolves a backend name: "" or "auto" picks the best supported variant;
/// a concrete name must be both compiled in and supported by this CPU.
/// Throws std::invalid_argument (exit 2 through the CLI) listing the
/// variants otherwise.
const ComputeBackend& resolve(const std::string& name);

/// The process-wide backend: resolve(config::backend()) on first use, then
/// cached (relaxed atomic — gemm runs on pool threads). A ScopedBackend
/// force takes precedence.
const ComputeBackend& active();

/// Drops the cached active() resolution so the next call re-reads config.
/// The CLI calls this after installing flag overrides; tests after
/// mutating SAFELIGHT_BACKEND.
void invalidate_cache();

/// RAII force for tests and the fingerprint probe: active() returns
/// `backend` until destruction, ignoring config. Nests.
class ScopedBackend {
 public:
  explicit ScopedBackend(const ComputeBackend& backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const ComputeBackend* previous_;
};

/// Digest of the kernel *numerics*: a deterministic probe problem (shapes
/// covering the unroll tail, partial row blocks and partial panels, both
/// epilogues, all three entry points) run through `backend`, output bytes
/// hashed. Identical across hosts and across conforming variants — the
/// contract above — so a mismatch means genuinely different math, which is
/// what the distributed handshake must refuse to merge.
std::string kernel_fingerprint(const ComputeBackend& backend);

/// kernel_fingerprint(active()).
std::string kernel_fingerprint();

/// Reports the active backend: backend.selected.<name> counter when
/// metrics are armed, an instant trace event with the name and kernel
/// fingerprint when tracing is armed, a log line when `verbose`. The CLI
/// calls this once per run after arming telemetry.
void announce(bool verbose);

namespace detail {
/// Per-variant kernel tables, defined one per translation unit
/// (backend_scalar.cpp / backend_avx2.cpp / backend_avx512.cpp). A variant
/// that is not compiled into this binary returns nullptr and is simply
/// absent from registered().
const GemmKernels* scalar_kernels();
const GemmKernels* avx2_kernels();
const GemmKernels* avx512_kernels();
}  // namespace detail

}  // namespace safelight::nn::backend
