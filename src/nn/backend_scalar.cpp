// Scalar variant of the packed GEMM kernel: compiled with the baseline ISA
// only (-ffp-contract=off, no -m flags), so it runs on any CPU the binary
// itself loads on. Always registered — it is the portability floor the
// runtime dispatch falls back to, and the forced reference point for the
// backend-equivalence tests.
#include "nn/backend.hpp"

namespace safelight::nn::backend {

namespace {
#include "nn/gemm_variant.inl"
}  // namespace

const GemmKernels* detail::scalar_kernels() { return &kVariantKernels; }

}  // namespace safelight::nn::backend
