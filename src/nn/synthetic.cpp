#include "nn/synthetic.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace safelight::nn {

namespace {

constexpr std::size_t kClasses = 10;

// 5x7 bitmap glyphs for digits 0..9 (1 = stroke).
constexpr std::array<std::array<const char*, 7>, 10> kGlyphs = {{
    {"01110", "10001", "10011", "10101", "11001", "10001", "01110"},  // 0
    {"00100", "01100", "00100", "00100", "00100", "00100", "01110"},  // 1
    {"01110", "10001", "00001", "00110", "01000", "10000", "11111"},  // 2
    {"01110", "10001", "00001", "00110", "00001", "10001", "01110"},  // 3
    {"00010", "00110", "01010", "10010", "11111", "00010", "00010"},  // 4
    {"11111", "10000", "11110", "00001", "00001", "10001", "01110"},  // 5
    {"01110", "10000", "10000", "11110", "10001", "10001", "01110"},  // 6
    {"11111", "00001", "00010", "00100", "01000", "01000", "01000"},  // 7
    {"01110", "10001", "10001", "01110", "10001", "10001", "01110"},  // 8
    {"01110", "10001", "10001", "01111", "00001", "00001", "01110"},  // 9
}};

float clamp01(float v) { return std::clamp(v, 0.0f, 1.0f); }

/// Samples a glyph bitmap with bilinear interpolation at (u,v) in [0,1].
float glyph_sample(int digit, float u, float v) {
  const auto& rows = kGlyphs[static_cast<std::size_t>(digit)];
  const float x = u * 4.0f;  // glyph is 5 wide
  const float y = v * 6.0f;  // and 7 tall
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const float fx = x - static_cast<float>(x0);
  const float fy = y - static_cast<float>(y0);
  auto bit = [&](int xx, int yy) -> float {
    xx = std::clamp(xx, 0, 4);
    yy = std::clamp(yy, 0, 6);
    return rows[static_cast<std::size_t>(yy)][static_cast<std::size_t>(xx)] ==
                   '1'
               ? 1.0f
               : 0.0f;
  };
  const float top = bit(x0, y0) * (1 - fx) + bit(x0 + 1, y0) * fx;
  const float bot = bit(x0, y0 + 1) * (1 - fx) + bit(x0 + 1, y0 + 1) * fx;
  return top * (1 - fy) + bot * fy;
}

struct Hsv {
  float h, s, v;
};

std::array<float, 3> hsv_to_rgb(const Hsv& c) {
  const float h = c.h - std::floor(c.h);
  const float i = std::floor(h * 6.0f);
  const float f = h * 6.0f - i;
  const float p = c.v * (1.0f - c.s);
  const float q = c.v * (1.0f - f * c.s);
  const float t = c.v * (1.0f - (1.0f - f) * c.s);
  switch (static_cast<int>(i) % 6) {
    case 0: return {c.v, t, p};
    case 1: return {q, c.v, p};
    case 2: return {p, c.v, t};
    case 3: return {p, q, c.v};
    case 4: return {t, p, c.v};
    default: return {c.v, p, q};
  }
}

Dataset allocate(const std::string& name, std::size_t count,
                 std::size_t channels, std::size_t size) {
  require(count >= kClasses, "synthetic: need at least 10 samples");
  Dataset d;
  d.name = name;
  d.num_classes = kClasses;
  d.images = Tensor({count, channels, size, size});
  d.labels.resize(count);
  return d;
}

}  // namespace

Dataset synth_digits(const SynthConfig& config) {
  const std::size_t size = config.image_size ? config.image_size : 28;
  require(size >= 12, "synth_digits: image size must be >= 12");
  Dataset d = allocate("synth_digits", config.count, 1, size);
  Rng rng(seed_combine(config.seed, 0xD161, size));

  const float span = static_cast<float>(size);
  for (std::size_t n = 0; n < config.count; ++n) {
    const int label = static_cast<int>(n % kClasses);
    d.labels[n] = label;
    // Random glyph placement: scale 55-85% of the image, jittered center.
    const float scale =
        static_cast<float>(rng.uniform(0.55, 0.85)) * span;
    const float cx = span * 0.5f +
                     static_cast<float>(rng.gaussian(0.0, 1.5)) * config.jitter;
    const float cy = span * 0.5f +
                     static_cast<float>(rng.gaussian(0.0, 1.5)) * config.jitter;
    const float intensity = static_cast<float>(rng.uniform(0.75, 1.0));
    const float aspect = static_cast<float>(rng.uniform(0.85, 1.15));

    float* img = d.images.data() + n * size * size;
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        const float u =
            (static_cast<float>(x) - cx) / (scale * 0.72f * aspect) + 0.5f;
        const float v = (static_cast<float>(y) - cy) / scale + 0.5f;
        float value = 0.0f;
        if (u >= 0.0f && u <= 1.0f && v >= 0.0f && v <= 1.0f) {
          value = glyph_sample(label, u, v) * intensity;
        }
        value += static_cast<float>(rng.gaussian(0.0, config.noise));
        img[y * size + x] = clamp01(value) - 0.5f;
      }
    }
  }
  d.validate();
  return d;
}

Dataset synth_shapes(const SynthConfig& config) {
  const std::size_t size = config.image_size ? config.image_size : 32;
  require(size >= 12, "synth_shapes: image size must be >= 12");
  Dataset d = allocate("synth_shapes", config.count, 3, size);
  Rng rng(seed_combine(config.seed, 0x5A9E, size));

  const float span = static_cast<float>(size);
  for (std::size_t n = 0; n < config.count; ++n) {
    const int label = static_cast<int>(n % kClasses);
    d.labels[n] = label;
    const float cx =
        span * 0.5f +
        static_cast<float>(rng.gaussian(0.0, span * 0.06)) * config.jitter;
    const float cy =
        span * 0.5f +
        static_cast<float>(rng.gaussian(0.0, span * 0.06)) * config.jitter;
    const float radius = span * static_cast<float>(rng.uniform(0.22, 0.34));
    // Class hue is the strongest cue; shape modulates the mask.
    const float hue = static_cast<float>(label) / 10.0f +
                      static_cast<float>(rng.gaussian(0.0, 0.015));
    const auto fg = hsv_to_rgb({hue, 0.85f, 0.95f});
    const float bg_hue = static_cast<float>(rng.uniform(0.0, 1.0));
    const auto bg = hsv_to_rgb({bg_hue, 0.15f, 0.35f});

    float* img = d.images.data() + n * 3 * size * size;
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        const float dx = (static_cast<float>(x) - cx) / radius;
        const float dy = (static_cast<float>(y) - cy) / radius;
        const float r = std::sqrt(dx * dx + dy * dy);
        // Shape family cycles through 5 masks; paired with 2 hue bands the
        // 10 classes stay mutually distinguishable.
        float mask = 0.0f;
        switch (label % 5) {
          case 0: mask = r <= 1.0f ? 1.0f : 0.0f; break;               // disc
          case 1:                                                      // square
            mask = std::max(std::abs(dx), std::abs(dy)) <= 0.85f ? 1.0f : 0.0f;
            break;
          case 2:                                                      // ring
            mask = (r <= 1.0f && r >= 0.55f) ? 1.0f : 0.0f;
            break;
          case 3:                                                      // cross
            mask = (std::abs(dx) <= 0.33f || std::abs(dy) <= 0.33f) &&
                           r <= 1.15f
                       ? 1.0f
                       : 0.0f;
            break;
          default:                                                     // wedge
            mask = (dy >= -0.9f && dy <= 0.2f + 0.0f &&
                    std::abs(dx) <= (dy + 0.9f) * 0.8f)
                       ? 1.0f
                       : 0.0f;
            break;
        }
        for (std::size_t c = 0; c < 3; ++c) {
          float value = mask * fg[c] + (1.0f - mask) * bg[c];
          value += static_cast<float>(rng.gaussian(0.0, config.noise));
          img[(c * size + y) * size + x] = clamp01(value) - 0.5f;
        }
      }
    }
  }
  d.validate();
  return d;
}

Dataset synth_textures(const SynthConfig& config) {
  const std::size_t size = config.image_size ? config.image_size : 32;
  require(size >= 12, "synth_textures: image size must be >= 12");
  Dataset d = allocate("synth_textures", config.count, 3, size);
  Rng rng(seed_combine(config.seed, 0x7E87, size));

  constexpr float kPi = 3.14159265358979323846f;
  for (std::size_t n = 0; n < config.count; ++n) {
    const int label = static_cast<int>(n % kClasses);
    d.labels[n] = label;
    const float freq = static_cast<float>(rng.uniform(2.2, 3.4));
    const float phase = static_cast<float>(rng.uniform(0.0, 2.0 * kPi)) *
                        (config.jitter > 0.0f ? 1.0f : 0.0f);
    const float hue = static_cast<float>(label) / 10.0f +
                      static_cast<float>(rng.gaussian(0.0, 0.02));
    const auto tint = hsv_to_rgb({hue, 0.6f, 0.9f});

    float* img = d.images.data() + n * 3 * size * size;
    const float inv = 1.0f / static_cast<float>(size);
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        const float u = static_cast<float>(x) * inv;
        const float v = static_cast<float>(y) * inv;
        float t = 0.0f;
        switch (label % 5) {
          case 0:  // horizontal waves
            t = 0.5f + 0.5f * std::sin(2 * kPi * freq * v + phase);
            break;
          case 1:  // vertical waves
            t = 0.5f + 0.5f * std::sin(2 * kPi * freq * u + phase);
            break;
          case 2:  // diagonal stripes
            t = 0.5f + 0.5f * std::sin(2 * kPi * freq * (u + v) + phase);
            break;
          case 3:  // checkerboard
            t = (std::sin(2 * kPi * freq * u + phase) *
                     std::sin(2 * kPi * freq * v + phase) >
                 0)
                    ? 1.0f
                    : 0.0f;
            break;
          default: {  // concentric rings
            const float du = u - 0.5f, dv = v - 0.5f;
            t = 0.5f +
                0.5f * std::sin(2 * kPi * freq * 2.0f *
                                    std::sqrt(du * du + dv * dv) +
                                phase);
            break;
          }
        }
        for (std::size_t c = 0; c < 3; ++c) {
          float value = t * tint[c] + (1.0f - t) * (1.0f - tint[c]) * 0.3f;
          value += static_cast<float>(rng.gaussian(0.0, config.noise));
          img[(c * size + y) * size + x] = clamp01(value) - 0.5f;
        }
      }
    }
  }
  d.validate();
  return d;
}

Dataset make_synthetic(const std::string& family, const SynthConfig& config) {
  if (family == "digits") return synth_digits(config);
  if (family == "shapes") return synth_shapes(config);
  if (family == "textures") return synth_textures(config);
  fail_argument("make_synthetic: unknown family '" + family +
                "' (expected digits|shapes|textures)");
}

}  // namespace safelight::nn
