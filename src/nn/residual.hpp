// ResNet basic block with parameter-free (option-A) shortcuts.
//
// The paper's Table I lists ResNet18 with exactly 17 CONV layers and one FC
// layer, which corresponds to identity/option-A shortcuts (projection
// shortcuts would add three more 1x1 conv layers). Option A subsamples
// spatially by the block stride and zero-pads the channel dimension.
#pragma once

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/layer.hpp"

namespace safelight::nn {

class BasicBlock final : public Layer {
 public:
  /// conv(3x3, stride) -> BN -> ReLU -> conv(3x3, 1) -> BN, plus shortcut.
  BasicBlock(std::size_t in_c, std::size_t out_c, std::size_t stride,
             Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<Tensor*> state_tensors() override;
  std::string name() const override;
  Shape output_shape(const Shape& in) const override;

 private:
  Tensor shortcut_forward(const Tensor& x) const;
  Tensor shortcut_backward(const Tensor& grad, const Shape& in_shape) const;

  std::size_t in_c_, out_c_, stride_;
  Conv2d conv1_;
  BatchNorm2d bn1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  std::vector<bool> relu1_mask_;
  std::vector<bool> relu2_mask_;
  Shape cached_in_shape_;
};

}  // namespace safelight::nn
