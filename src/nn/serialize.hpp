// Binary model (de)serialization with integrity checking.
//
// Format (little-endian):
//   magic "SLW1" | u32 tensor_count |
//   per tensor: u32 name_len, name bytes, u8 kind, u32 rank, u64 dims...,
//               f32 data... |
//   u64 FNV-1a checksum over everything before it.
// load_model verifies magic, checksum, tensor count and every shape before
// overwriting any destination tensor, so a corrupt file never leaves the
// model half-loaded.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace safelight::nn {

/// Saves all parameters and state tensors of `model` to `path`, staged
/// through `path + ".tmp"` and committed with an atomic rename — a crash at
/// any byte boundary leaves either the previous file or the complete new
/// one, never a torn mix (fault-point instrumented, see common/fault.hpp).
/// Throws std::runtime_error on I/O failure.
void save_model(Sequential& model, const std::string& path);

/// Restores parameters and state tensors saved by save_model. The model must
/// have the identical architecture. Throws std::runtime_error on I/O errors,
/// checksum mismatch, or shape mismatch.
void load_model(Sequential& model, const std::string& path);

/// True when `path` exists and carries a parseable, checksum-valid file that
/// structurally matches `model`.
bool model_file_matches(Sequential& model, const std::string& path);

/// In-memory snapshot of parameters + state tensors (attack experiments
/// restore the clean model between scenarios instead of cloning it).
std::vector<Tensor> snapshot_state(Sequential& model);

/// Restores a snapshot taken from the same architecture; throws
/// std::invalid_argument on count/shape mismatch.
void restore_state(Sequential& model, const std::vector<Tensor>& snapshot);

}  // namespace safelight::nn
