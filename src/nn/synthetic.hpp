// Procedural synthetic datasets.
//
// The paper trains on MNIST, CIFAR10 and Imagenette. Those corpora are not
// available in this offline environment, so SafeLight ships procedural
// stand-ins with the same tensor shapes and class counts (substitution
// documented in DESIGN.md §4):
//   * synth_digits   — MNIST-like:   1x28x28 grayscale rendered digit glyphs
//   * synth_shapes   — CIFAR10-like: 3x32x32 colored geometric scenes
//   * synth_textures — Imagenette-like: 3xSxS textured scenes
// All generators are deterministic given (seed, count) and produce
// class-balanced datasets whose difficulty is controlled by jitter/noise.
#pragma once

#include "nn/dataset.hpp"

namespace safelight::nn {

struct SynthConfig {
  std::size_t count = 1000;      // total samples (balanced across 10 classes)
  std::size_t image_size = 0;    // 0 = generator default
  std::uint64_t seed = 1;
  float noise = 0.08f;           // pixel Gaussian noise stddev
  float jitter = 1.0f;           // geometric jitter multiplier (0 disables)
};

/// MNIST-like handwritten-digit stand-in (10 classes, 1 channel, default 28).
Dataset synth_digits(const SynthConfig& config);

/// CIFAR10-like colored-shape stand-in (10 classes, 3 channels, default 32).
Dataset synth_shapes(const SynthConfig& config);

/// Imagenette-like texture-scene stand-in (10 classes, 3 channels, default 32).
Dataset synth_textures(const SynthConfig& config);

/// Dispatch by dataset name ("digits" | "shapes" | "textures").
Dataset make_synthetic(const std::string& family, const SynthConfig& config);

}  // namespace safelight::nn
