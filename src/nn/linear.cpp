#include "nn/linear.hpp"

#include "common/error.hpp"
#include "nn/gemm.hpp"

namespace safelight::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  require(in_ > 0 && out_ > 0, "Linear: feature counts must be positive");
  weight_ = Param("linear.weight", ParamKind::kLinearWeight,
                  Tensor({out_, in_}));
  kaiming_init(weight_.value, in_, rng);
  if (has_bias_) {
    bias_ = Param("linear.bias", ParamKind::kElectronic, Tensor({out_}));
  }
}

Shape Linear::output_shape(const Shape& in) const {
  require(in.size() == 2, "Linear: expected [N,F], got " + shape_to_string(in));
  require(in[1] == in_, "Linear: expected " + std::to_string(in_) +
                            " features, got " + std::to_string(in[1]));
  return {in[0], out_};
}

Tensor Linear::forward(const Tensor& x, bool train) {
  const Shape out_shape = output_shape(x.shape());
  const std::size_t batch = x.dim(0);
  Tensor out(out_shape);
  // out[N x out] = x[N x in] * W^T (W is [out x in]); the per-feature bias
  // (one per output column) fuses into the GEMM epilogue.
  gemm_bt(x.data(), weight_.value.data(), out.data(), batch, in_, out_,
          /*accumulate=*/false,
          /*col_bias=*/has_bias_ ? bias_.value.data() : nullptr);
  cached_input_ = train ? x : Tensor();
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  require(!cached_input_.empty(),
          "Linear::backward called without forward(train=true)");
  const Tensor& x = cached_input_;
  const std::size_t batch = x.dim(0);
  require(grad_out.shape() == Shape({batch, out_}),
          "Linear::backward: grad shape mismatch");

  // dW[out x in] += gout^T [out x N] * x [N x in]
  gemm_at(grad_out.data(), x.data(), weight_.grad.data(), out_, batch, in_,
          /*accumulate=*/true);
  if (has_bias_) {
    float* gb = bias_.grad.data();
    for (std::size_t n = 0; n < batch; ++n) {
      const float* row = grad_out.data() + n * out_;
      for (std::size_t o = 0; o < out_; ++o) gb[o] += row[o];
    }
  }
  // dx[N x in] = gout [N x out] * W [out x in]
  Tensor grad_in({batch, in_});
  gemm(grad_out.data(), weight_.value.data(), grad_in.data(), batch, out_,
       in_);
  return grad_in;
}

std::vector<Param*> Linear::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

}  // namespace safelight::nn
