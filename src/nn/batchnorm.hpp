// Batch normalization over the channel dimension of [N,C,H,W].
#pragma once

#include "nn/layer.hpp"

namespace safelight::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> state_tensors() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override;
  Shape output_shape(const Shape& in) const override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Tensor& mutable_running_mean() { return running_mean_; }
  Tensor& mutable_running_var() { return running_var_; }

 private:
  std::size_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;

  // Training-time caches for backward.
  Tensor cached_input_;
  std::vector<double> batch_mean_, batch_var_;
};

}  // namespace safelight::nn
