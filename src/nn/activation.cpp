#include "nn/activation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safelight::nn {

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor out = x;
  if (train) {
    mask_.assign(x.numel(), false);
    cached_shape_ = x.shape();
  }
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0f) {
      if (train) mask_[i] = true;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  require(!mask_.empty(), "ReLU::backward called without forward(train=true)");
  require(grad_out.shape() == cached_shape_,
          "ReLU::backward: grad shape mismatch");
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.numel(); ++i) {
    if (!mask_[i]) grad_in[i] = 0.0f;
  }
  return grad_in;
}

Tensor softmax2d(const Tensor& logits) {
  require(logits.rank() == 2, "softmax2d: expected [N,C]");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  Tensor out(logits.shape());
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    float* orow = out.data() + n * classes;
    const float mx = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      orow[c] = std::exp(row[c] - mx);
      denom += orow[c];
    }
    for (std::size_t c = 0; c < classes; ++c) {
      orow[c] = static_cast<float>(orow[c] / denom);
    }
  }
  return out;
}

}  // namespace safelight::nn
