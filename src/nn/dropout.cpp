#include "nn/dropout.hpp"

#include "common/error.hpp"

namespace safelight::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  require(p >= 0.0f && p < 1.0f, "Dropout: p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0.0f) {
    kept_.clear();
    return x;
  }
  cached_shape_ = x.shape();
  kept_.assign(x.numel(), true);
  Tensor out = x;
  const float scale = 1.0f / (1.0f - p_);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (rng_.bernoulli(p_)) {
      kept_[i] = false;
      out[i] = 0.0f;
    } else {
      out[i] *= scale;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (kept_.empty()) return grad_out;  // p == 0 path
  require(grad_out.shape() == cached_shape_,
          "Dropout::backward: grad shape mismatch");
  Tensor grad_in = grad_out;
  const float scale = 1.0f / (1.0f - p_);
  for (std::size_t i = 0; i < grad_in.numel(); ++i) {
    grad_in[i] = kept_[i] ? grad_in[i] * scale : 0.0f;
  }
  return grad_in;
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(p_) + ")";
}

}  // namespace safelight::nn
