// Shared body of the packed, register-tiled GEMM kernel — textually
// included by each backend_*.cpp variant translation unit inside
//
//     namespace safelight::nn::backend { namespace { ... } }
//
// so every function here has internal linkage and is compiled once per
// variant with that variant's ISA flags (src/CMakeLists.txt). Only the
// kVariantKernels table at the bottom escapes, through the TU's
// detail::*_kernels() getter.
//
// ODR/SIGILL discipline: this file must stay free of std:: calls and any
// header-inline code. A template like std::min<std::size_t> instantiated
// here would be an external-linkage COMDAT symbol compiled with (say)
// AVX-512 flags; if the linker picked this TU's copy for the whole
// program, baseline code paths would execute AVX-512 instructions on hosts
// that never passed the runtime probe. Hand-rolled min/ceil_div keep the
// variant hermetic.
//
// Numerics contract (same as gemm_ref): every output element is reduced
// over k in ascending order through a single accumulator, one statement
// per unrolled step, FP contraction off — bitwise-identical results on
// every ISA, tile shape and thread count.

inline std::size_t variant_min(std::size_t a, std::size_t b) {
  return b < a ? b : a;
}

inline std::size_t variant_ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Packs B[k x n] (row-major) into kNr-wide column panels: panel pa holds,
/// for each p, the kNr consecutive floats b[p*n + pa*kNr ...), zero-padded
/// past column n so the micro-kernel never needs a column tail.
void variant_pack_b(const float* b, std::size_t k, std::size_t n,
                    float* packed) {
  const std::size_t panels = variant_ceil_div(n, kNr);
  for (std::size_t pa = 0; pa < panels; ++pa) {
    const std::size_t j0 = pa * kNr;
    const std::size_t width = variant_min(kNr, n - j0);
    float* dst = packed + pa * kNr * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float* src = b + p * n + j0;
      for (std::size_t j = 0; j < width; ++j) dst[j] = src[j];
      for (std::size_t j = width; j < kNr; ++j) dst[j] = 0.0f;
      dst += kNr;
    }
  }
}

/// Packs B^T where B is [n x k] (row-major): panel pa holds, for each p,
/// the floats b[(pa*kNr + j)*k + p]. Rows of B are read contiguously.
void variant_pack_bt(const float* b, std::size_t k, std::size_t n,
                     float* packed) {
  const std::size_t panels = variant_ceil_div(n, kNr);
  for (std::size_t pa = 0; pa < panels; ++pa) {
    const std::size_t j0 = pa * kNr;
    const std::size_t width = variant_min(kNr, n - j0);
    float* dst = packed + pa * kNr * k;
    for (std::size_t j = 0; j < width; ++j) {
      const float* brow = b + (j0 + j) * k;
      for (std::size_t p = 0; p < k; ++p) dst[p * kNr + j] = brow[p];
    }
    for (std::size_t j = width; j < kNr; ++j) {
      for (std::size_t p = 0; p < k; ++p) dst[p * kNr + j] = 0.0f;
    }
  }
}

/// A-element fetchers: row-major A[m x k] vs transposed A stored [k x m].
struct ARowMajor {
  const float* a;
  std::size_t k;
  float operator()(std::size_t i, std::size_t p) const { return a[i * k + p]; }
};

struct ATransposed {
  const float* a;
  std::size_t m;
  float operator()(std::size_t i, std::size_t p) const { return a[p * m + i]; }
};

/// Micro-kernel: C[i0..i0+MR) x [j0..j0+width) via one packed panel.
/// Every output element keeps a single accumulator updated in ascending-p
/// order (one statement per unrolled step), so the reduction order matches
/// gemm_ref bit for bit; the j-loops vectorize, the p-loop unrolls by 4.
template <std::size_t MR, typename AFetch>
void micro_tile(AFetch a_of, const float* panel, float* c, std::size_t i0,
                std::size_t k, std::size_t n, std::size_t j0,
                std::size_t width, bool accumulate, const float* row_bias,
                const float* col_bias) {
  float acc[MR][kNr];
  for (std::size_t r = 0; r < MR; ++r) {
    const float* crow = c + (i0 + r) * n + j0;
    for (std::size_t j = 0; j < kNr; ++j) {
      acc[r][j] = (accumulate && j < width) ? crow[j] : 0.0f;
    }
  }

  std::size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const float* b0 = panel + (p + 0) * kNr;
    const float* b1 = panel + (p + 1) * kNr;
    const float* b2 = panel + (p + 2) * kNr;
    const float* b3 = panel + (p + 3) * kNr;
    for (std::size_t r = 0; r < MR; ++r) {
      const float a0 = a_of(i0 + r, p + 0);
      const float a1 = a_of(i0 + r, p + 1);
      const float a2 = a_of(i0 + r, p + 2);
      const float a3 = a_of(i0 + r, p + 3);
      float* arow = acc[r];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += a0 * b0[j];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += a1 * b1[j];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += a2 * b2[j];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += a3 * b3[j];
    }
  }
  for (; p < k; ++p) {
    const float* bp = panel + p * kNr;
    for (std::size_t r = 0; r < MR; ++r) {
      const float ap = a_of(i0 + r, p);
      float* arow = acc[r];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += ap * bp[j];
    }
  }

  for (std::size_t r = 0; r < MR; ++r) {
    float* crow = c + (i0 + r) * n + j0;
    if (row_bias != nullptr) {
      const float bias = row_bias[i0 + r];
      for (std::size_t j = 0; j < width; ++j) crow[j] = acc[r][j] + bias;
    } else if (col_bias != nullptr) {
      for (std::size_t j = 0; j < width; ++j) {
        crow[j] = acc[r][j] + col_bias[j0 + j];
      }
    } else {
      for (std::size_t j = 0; j < width; ++j) crow[j] = acc[r][j];
    }
  }
}

/// Drives the micro-kernel over row blocks [lo, hi) and all panels. The
/// dispatcher parallelizes over disjoint row ranges at a granularity kMr
/// divides, so blocks never straddle a chunk boundary and the output is
/// independent of the chunking.
template <typename AFetch>
void run_rows_impl(AFetch a_of, const GemmArgs& args, std::size_t lo,
                   std::size_t hi) {
  const std::size_t panels = variant_ceil_div(args.n, kNr);
  for (std::size_t i0 = lo; i0 < hi;) {
    const std::size_t mr = variant_min(kMr, hi - i0);
    for (std::size_t pa = 0; pa < panels; ++pa) {
      const std::size_t j0 = pa * kNr;
      const std::size_t width = variant_min(kNr, args.n - j0);
      const float* panel = args.packed + pa * kNr * args.k;
      switch (mr) {
        case 4:
          micro_tile<4>(a_of, panel, args.c, i0, args.k, args.n, j0, width,
                        args.accumulate, args.row_bias, args.col_bias);
          break;
        case 3:
          micro_tile<3>(a_of, panel, args.c, i0, args.k, args.n, j0, width,
                        args.accumulate, args.row_bias, args.col_bias);
          break;
        case 2:
          micro_tile<2>(a_of, panel, args.c, i0, args.k, args.n, j0, width,
                        args.accumulate, args.row_bias, args.col_bias);
          break;
        default:
          micro_tile<1>(a_of, panel, args.c, i0, args.k, args.n, j0, width,
                        args.accumulate, args.row_bias, args.col_bias);
          break;
      }
    }
    i0 += mr;
  }
}

void variant_run_rows(const GemmArgs& args, std::size_t lo, std::size_t hi) {
  run_rows_impl(ARowMajor{args.a, args.k}, args, lo, hi);
}

void variant_run_rows_at(const GemmArgs& args, std::size_t lo,
                         std::size_t hi) {
  run_rows_impl(ATransposed{args.a, args.m}, args, lo, hi);
}

const GemmKernels kVariantKernels = {
    &variant_pack_b,
    &variant_pack_bt,
    &variant_run_rows,
    &variant_run_rows_at,
};
