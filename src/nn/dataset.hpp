// Labeled image dataset container and batching utilities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace safelight::nn {

/// A labeled dataset of images stored as one [N,C,H,W] tensor.
struct Dataset {
  Tensor images;            // [N, C, H, W]
  std::vector<int> labels;  // size N, values in [0, num_classes)
  std::size_t num_classes = 0;
  std::string name;

  std::size_t size() const { return labels.size(); }
  Shape sample_shape() const;  // [C, H, W]

  /// Copies samples [begin, end) into a new batch tensor + label vector.
  std::pair<Tensor, std::vector<int>> batch(std::size_t begin,
                                            std::size_t end) const;

  /// Copies an arbitrary index subset.
  std::pair<Tensor, std::vector<int>> gather(
      const std::vector<std::size_t>& indices) const;

  /// Returns a dataset with the first `n` samples (n clamped to size()).
  Dataset take(std::size_t n) const;

  /// Validates internal consistency; throws on violation.
  void validate() const;
};

/// Iterates minibatches over a (shuffled) index permutation.
class BatchIterator {
 public:
  BatchIterator(const Dataset& data, std::size_t batch_size, Rng& rng,
                bool shuffle);

  /// Returns false when the epoch is exhausted.
  bool next(Tensor& images, std::vector<int>& labels);

  void reset(Rng& rng);

 private:
  const Dataset& data_;
  std::size_t batch_size_;
  bool shuffle_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace safelight::nn
