// 2-D convolution layer (im2col + GEMM lowering).
#pragma once

#include "nn/im2col.hpp"
#include "nn/layer.hpp"

namespace safelight::nn {

class Conv2d final : public Layer {
 public:
  /// Square kernels only (all paper models use square kernels).
  /// Weight shape: [out_c, in_c * k * k]; bias shape: [out_c].
  Conv2d(std::size_t in_c, std::size_t out_c, std::size_t kernel,
         std::size_t stride, std::size_t pad, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override;
  Shape output_shape(const Shape& in) const override;

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }
  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t pad() const { return pad_; }

 private:
  ConvGeom geom_for(const Shape& in) const;

  std::size_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;  // only kept when forward(train=true)
};

}  // namespace safelight::nn
