#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safelight::nn {

LossResult cross_entropy(const Tensor& logits,
                         const std::vector<int>& labels) {
  require(logits.rank() == 2, "cross_entropy: logits must be [N,C]");
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  require(labels.size() == batch,
          "cross_entropy: label count does not match batch");

  LossResult result;
  result.grad = Tensor(logits.shape());
  const float inv_batch = 1.0f / static_cast<float>(batch);
  double total = 0.0;

  for (std::size_t n = 0; n < batch; ++n) {
    const int label = labels[n];
    require(label >= 0 && static_cast<std::size_t>(label) < classes,
            "cross_entropy: label out of range");
    const float* row = logits.data() + n * classes;
    float* grow = result.grad.data() + n * classes;

    const float mx = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(row[c]) - mx);
    }
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(row[label]) - mx - log_denom);

    for (std::size_t c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(row[c]) - mx - log_denom);
      grow[c] = static_cast<float>(p) * inv_batch;
    }
    grow[label] -= inv_batch;
  }
  result.loss = total / static_cast<double>(batch);
  return result;
}

}  // namespace safelight::nn
