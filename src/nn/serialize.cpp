#include "nn/serialize.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace safelight::nn {

namespace {

constexpr char kMagic[4] = {'S', 'L', 'W', '1'};

std::uint64_t fnv1a(const std::vector<char>& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char b : bytes) {
    hash ^= static_cast<unsigned char>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

template <typename T>
void append(std::vector<char>& buffer, const T& value) {
  const char* raw = reinterpret_cast<const char*>(&value);
  buffer.insert(buffer.end(), raw, raw + sizeof(T));
}

template <typename T>
T read_value(const std::vector<char>& buffer, std::size_t& offset) {
  if (offset + sizeof(T) > buffer.size()) {
    throw std::runtime_error("load_model: truncated file");
  }
  T value;
  std::memcpy(&value, buffer.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

struct NamedTensor {
  std::string name;
  std::uint8_t kind;
  Tensor* tensor;
};

std::vector<NamedTensor> collect(Sequential& model) {
  std::vector<NamedTensor> out;
  std::size_t index = 0;
  for (Param* p : model.params()) {
    out.push_back({p->name + "#" + std::to_string(index++),
                   static_cast<std::uint8_t>(p->kind), &p->value});
  }
  index = 0;
  for (Tensor* t : model.state_tensors()) {
    out.push_back({"state#" + std::to_string(index++), 255, t});
  }
  return out;
}

}  // namespace

void save_model(Sequential& model, const std::string& path) {
  std::vector<char> buffer;
  buffer.insert(buffer.end(), kMagic, kMagic + 4);
  const auto tensors = collect(model);
  append(buffer, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& nt : tensors) {
    append(buffer, static_cast<std::uint32_t>(nt.name.size()));
    buffer.insert(buffer.end(), nt.name.begin(), nt.name.end());
    append(buffer, nt.kind);
    append(buffer, static_cast<std::uint32_t>(nt.tensor->rank()));
    for (std::size_t d : nt.tensor->shape()) {
      append(buffer, static_cast<std::uint64_t>(d));
    }
    const char* raw = reinterpret_cast<const char*>(nt.tensor->data());
    buffer.insert(buffer.end(), raw,
                  raw + nt.tensor->numel() * sizeof(float));
  }
  const std::uint64_t checksum = fnv1a(buffer);
  append(buffer, checksum);

  // Stage-and-rename: a crash anywhere before the rename leaves `path`
  // untouched (either absent or the previous valid file) plus a `.tmp`
  // orphan that ResultStore's open sweep reclaims; a crash after the rename
  // leaves the complete new file. No crash point can leave a half-written
  // model under `path` — load_model's checksum is the backstop, not the
  // first line of defense. The fault::ptp points pin each boundary (see
  // common/fault.hpp and tests/fault_injection_test.cpp).
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_model: cannot open " + tmp_path);
    const std::streamsize half =
        static_cast<std::streamsize>(buffer.size() / 2);
    out.write(buffer.data(), half);
    if (fault::armed()) out.flush();
    fault::ptp("nn.serialize.tmp_write");  // crash: half-written tmp orphan
    out.write(buffer.data() + half,
              static_cast<std::streamsize>(buffer.size()) - half);
    if (!out) {
      throw std::runtime_error("save_model: write failed for " + tmp_path);
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("save_model: flush failed for " + tmp_path);
    }
  }
  fault::ptp("nn.serialize.rename");  // crash: complete tmp orphan, no entry
  std::filesystem::rename(tmp_path, path);
  fault::ptp("nn.serialize.committed");  // crash: just after the commit
}

namespace {

/// Parses and validates the file; fills `loaded` (one Tensor per slot) but
/// does not touch the model. Throws std::runtime_error on any violation.
std::vector<Tensor> parse_and_validate(Sequential& model,
                                       const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);
  const auto file_size = static_cast<std::size_t>(in.tellg());
  if (file_size < 4 + 4 + 8) {
    throw std::runtime_error("load_model: file too small: " + path);
  }
  std::vector<char> buffer(file_size);
  in.seekg(0);
  in.read(buffer.data(), static_cast<std::streamsize>(file_size));
  if (!in) throw std::runtime_error("load_model: read failed for " + path);

  // Verify checksum over everything except the trailing 8 bytes.
  std::vector<char> payload(buffer.begin(), buffer.end() - 8);
  std::size_t tail_offset = file_size - 8;
  const auto stored = read_value<std::uint64_t>(buffer, tail_offset);
  if (fnv1a(payload) != stored) {
    throw std::runtime_error("load_model: checksum mismatch in " + path);
  }

  std::size_t offset = 0;
  if (std::memcmp(buffer.data(), kMagic, 4) != 0) {
    throw std::runtime_error("load_model: bad magic in " + path);
  }
  offset = 4;
  const auto count = read_value<std::uint32_t>(buffer, offset);
  const auto slots = collect(model);
  if (count != slots.size()) {
    throw std::runtime_error("load_model: tensor count mismatch (file has " +
                             std::to_string(count) + ", model expects " +
                             std::to_string(slots.size()) + ")");
  }

  std::vector<Tensor> loaded;
  loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = read_value<std::uint32_t>(buffer, offset);
    if (offset + name_len > buffer.size()) {
      throw std::runtime_error("load_model: truncated name");
    }
    offset += name_len;  // names are informative only
    (void)read_value<std::uint8_t>(buffer, offset);
    const auto rank = read_value<std::uint32_t>(buffer, offset);
    Shape shape(rank);
    for (auto& d : shape) {
      d = static_cast<std::size_t>(read_value<std::uint64_t>(buffer, offset));
    }
    if (shape != slots[i].tensor->shape()) {
      throw std::runtime_error(
          "load_model: shape mismatch at tensor " + std::to_string(i) +
          ": file " + shape_to_string(shape) + " vs model " +
          shape_to_string(slots[i].tensor->shape()));
    }
    const std::size_t numel = shape_numel(shape);
    if (offset + numel * sizeof(float) > buffer.size()) {
      throw std::runtime_error("load_model: truncated tensor data");
    }
    std::vector<float> data(numel);
    std::memcpy(data.data(), buffer.data() + offset, numel * sizeof(float));
    offset += numel * sizeof(float);
    loaded.emplace_back(shape, std::move(data));
  }
  return loaded;
}

}  // namespace

void load_model(Sequential& model, const std::string& path) {
  auto loaded = parse_and_validate(model, path);
  const auto slots = collect(model);
  SAFELIGHT_ASSERT(loaded.size() == slots.size(),
                   "load_model: validated count changed");
  for (std::size_t i = 0; i < slots.size(); ++i) {
    *slots[i].tensor = std::move(loaded[i]);
  }
}

std::vector<Tensor> snapshot_state(Sequential& model) {
  std::vector<Tensor> out;
  const auto slots = collect(model);
  out.reserve(slots.size());
  for (const auto& slot : slots) out.push_back(*slot.tensor);
  return out;
}

void restore_state(Sequential& model, const std::vector<Tensor>& snapshot) {
  const auto slots = collect(model);
  require(snapshot.size() == slots.size(),
          "restore_state: snapshot tensor count mismatch");
  for (std::size_t i = 0; i < slots.size(); ++i) {
    require(snapshot[i].shape() == slots[i].tensor->shape(),
            "restore_state: shape mismatch at tensor " + std::to_string(i));
    *slots[i].tensor = snapshot[i];
  }
}

bool model_file_matches(Sequential& model, const std::string& path) {
  if (!std::filesystem::exists(path)) return false;
  try {
    (void)parse_and_validate(model, path);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

}  // namespace safelight::nn
