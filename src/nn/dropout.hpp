// Inverted dropout (train-time scaling, identity at inference).
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace safelight::nn {

class Dropout final : public Layer {
 public:
  /// p is the drop probability; seed makes the layer deterministic.
  Dropout(float p, std::uint64_t seed);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  Shape output_shape(const Shape& in) const override { return in; }

 private:
  float p_;
  Rng rng_;
  std::vector<bool> kept_;
  Shape cached_shape_;
};

}  // namespace safelight::nn
