// Gaussian weight-noise injection for noise-aware training (paper §V.B).
//
// Noise-aware training runs each forward/backward pass on perturbed copies
// of the weights (w + N(0, sigma_effective)) while the optimizer updates the
// clean weights — the scheme used for PCM accelerators in [32] and adopted
// by SafeLight for ONN robustness. The paper sweeps sigma in 0.1..0.9;
// sigma is interpreted relative to each tensor's absolute maximum
// (kRelativeToMax) so the sweep is meaningful across layers of very
// different scales. Absolute and proportional modes are provided for
// ablation.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace safelight::nn {

enum class NoiseMode {
  kRelativeToStd,   // stddev = sigma * std(w) per tensor (default; keeps the
                    // paper's sigma = 0.1..0.9 sweep trainable on every layer)
  kRelativeToMax,   // stddev = sigma * max|w| per tensor
  kAbsolute,        // stddev = sigma
  kProportional,    // stddev = sigma * |w| per weight
};

struct NoiseConfig {
  float sigma = 0.0f;  // 0 disables injection
  NoiseMode mode = NoiseMode::kRelativeToStd;
  bool perturb_electronic = false;  // also perturb biases/BN when true

  bool enabled() const { return sigma > 0.0f; }
};

/// Applies one noise sample to `params` and remembers the clean values;
/// restore() puts them back. A NoiseInjector instance must not be shared
/// across concurrent training loops.
class NoiseInjector {
 public:
  NoiseInjector(NoiseConfig config, std::uint64_t seed);

  /// Saves the clean weights and overwrites them with noisy copies.
  /// No-op when the config is disabled.
  void perturb(const std::vector<Param*>& params);

  /// Restores the last saved clean weights. No-op when nothing is saved.
  void restore(const std::vector<Param*>& params);

  const NoiseConfig& config() const { return config_; }

 private:
  NoiseConfig config_;
  Rng rng_;
  std::vector<Tensor> saved_;
  bool active_ = false;
};

}  // namespace safelight::nn
