#include "nn/layer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::nn {

void kaiming_init(Tensor& w, std::size_t fan_in, Rng& rng) {
  require(fan_in > 0, "kaiming_init: fan_in must be positive");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.gaussian(0.0, stddev));
  }
}

}  // namespace safelight::nn
