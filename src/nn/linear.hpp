// Fully-connected (dense) layer.
#pragma once

#include "nn/layer.hpp"

namespace safelight::nn {

class Linear final : public Layer {
 public:
  /// Weight shape: [out, in]; bias shape: [out].
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         bool bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override;
  Shape output_shape(const Shape& in) const override;

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace safelight::nn
