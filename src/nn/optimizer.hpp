// SGD optimizer with momentum and decoupled L2 weight decay.
//
// The weight-decay term implements the paper's L2 regularization
// R(w) = (lambda / 2m) * sum ||w||^2: its gradient contribution lambda/m * w
// is folded into the update as `weight_decay * w` (PyTorch convention).
// Decay is applied only to conv/linear weights, not to biases or batch-norm
// parameters, matching standard practice.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace safelight::nn {

struct SgdConfig {
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;  // L2 regularization strength (lambda/m)
  bool decay_electronic = false;  // also decay biases/BN when true
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);

  /// Applies one update using the gradients currently accumulated in the
  /// parameters, then leaves gradients untouched (call zero_grad separately).
  void step();

  void zero_grad();

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  const SgdConfig& config() const { return config_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

}  // namespace safelight::nn
