#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/parallel.hpp"

namespace safelight::nn {

namespace {

// Rows of A per parallel grain; keeps thread spawn overhead negligible for
// the small matrices that dominate reduced-scale training.
constexpr std::size_t kRowGrain = 16;
constexpr std::size_t kBlockK = 64;

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate) {
  if (m == 0 || n == 0) return;
  parallel_for_chunks(
      0, m,
      [&](std::size_t row_lo, std::size_t row_hi) {
        for (std::size_t i = row_lo; i < row_hi; ++i) {
          float* crow = c + i * n;
          if (!accumulate) std::memset(crow, 0, n * sizeof(float));
          for (std::size_t kk = 0; kk < k; kk += kBlockK) {
            const std::size_t k_end = std::min(k, kk + kBlockK);
            for (std::size_t p = kk; p < k_end; ++p) {
              const float av = a[i * k + p];
              if (av == 0.0f) continue;
              const float* brow = b + p * n;
              for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
            }
          }
        }
      },
      kRowGrain);
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate) {
  if (m == 0 || n == 0) return;
  parallel_for_chunks(
      0, m,
      [&](std::size_t row_lo, std::size_t row_hi) {
        for (std::size_t i = row_lo; i < row_hi; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            float acc = accumulate ? crow[j] : 0.0f;
            for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
            crow[j] = acc;
          }
        }
      },
      kRowGrain);
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate) {
  if (m == 0 || n == 0) return;
  // Parallelizing over output rows of C (columns of A) keeps writes disjoint.
  parallel_for_chunks(
      0, m,
      [&](std::size_t row_lo, std::size_t row_hi) {
        for (std::size_t i = row_lo; i < row_hi; ++i) {
          float* crow = c + i * n;
          if (!accumulate) std::memset(crow, 0, n * sizeof(float));
          for (std::size_t p = 0; p < k; ++p) {
            const float av = a[p * m + i];
            if (av == 0.0f) continue;
            const float* brow = b + p * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      kRowGrain);
}

}  // namespace safelight::nn
