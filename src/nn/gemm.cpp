#include "nn/gemm.hpp"

#include <algorithm>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "common/trace.hpp"

namespace safelight::nn {

namespace {

// The reduced-scale sweeps issue millions of sub-microsecond GEMMs: even
// two armed clock reads per call would eat the <2% traced-run overhead
// contract. So every call bumps the call/FLOP counters (relaxed atomics),
// but the GFLOP/s histogram meters only kernels above kMeterFlopThreshold
// (where the clock granularity yields a meaningful rate) and spans are
// emitted only above kSpanFlopThreshold (where a slice is visible in
// Perfetto rather than trace spam).
constexpr double kMeterFlopThreshold = 1 << 15;
constexpr double kSpanFlopThreshold = 1 << 20;

/// Observability wrapper around one GEMM entry point. Disarmed cost: two
/// relaxed loads.
class GemmScope {
 public:
  GemmScope(const char* name, std::size_t m, std::size_t k, std::size_t n)
      : name_(name),
        m_(m),
        k_(k),
        n_(n),
        flops_(2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n)) {
    if (metrics::armed()) {
      static metrics::Counter& calls = metrics::counter("gemm.calls");
      static metrics::Counter& flops = metrics::counter("gemm.flops");
      calls.add();
      flops.add(static_cast<std::uint64_t>(flops_));
    }
    // Clock only when someone can consume the timing: the histogram above
    // kMeterFlopThreshold (metrics armed), or a span above the larger
    // kSpanFlopThreshold (trace armed). Trace-only runs skip the clock on
    // the long tail of kernels too small to emit a span.
    metered_ = (metrics::armed() && flops_ >= kMeterFlopThreshold) ||
               (trace::armed() && flops_ >= kSpanFlopThreshold);
    if (metered_) start_ns_ = trace::now_ns();
  }
  ~GemmScope() {
    if (!metered_) return;
    const std::uint64_t end_ns = trace::now_ns();
    const double seconds = static_cast<double>(end_ns - start_ns_) / 1e9;
    const double gflops = seconds > 0.0 ? flops_ / seconds / 1e9 : 0.0;
    static metrics::Histogram& rate = metrics::histogram("gemm.gflops");
    rate.record(gflops);
    if (trace::armed() && flops_ >= kSpanFlopThreshold) {
      trace::RawEvent event;
      event.name = name_;
      event.cat = "gemm";
      event.start_ns = start_ns_;
      event.dur_ns = end_ns - start_ns_;
      event.num_args.emplace_back("m", static_cast<double>(m_));
      event.num_args.emplace_back("k", static_cast<double>(k_));
      event.num_args.emplace_back("n", static_cast<double>(n_));
      event.num_args.emplace_back("gflops", gflops);
      trace::record(std::move(event));
    }
  }
  GemmScope(const GemmScope&) = delete;
  GemmScope& operator=(const GemmScope&) = delete;

 private:
  const char* name_;
  std::size_t m_, k_, n_;
  double flops_;
  bool metered_ = false;
  std::uint64_t start_ns_ = 0;
};

// Register tile: kMr rows x kNr columns of C accumulated in registers
// (kNr floats = 2 x 512-bit or 4 x 256-bit vectors per row). Larger tiles
// spill; smaller ones leave FLOPs on the table.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 32;
// Rows of C per parallel grain; keeps pool-submission overhead negligible
// for the small matrices that dominate reduced-scale training.
constexpr std::size_t kRowGrain = 16;

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Packs B[k x n] (row-major) into kNr-wide column panels: panel pa holds,
/// for each p, the kNr consecutive floats b[p*n + pa*kNr ...), zero-padded
/// past column n so the micro-kernel never needs a column tail.
void pack_b(const float* b, std::size_t k, std::size_t n, float* packed) {
  const std::size_t panels = ceil_div(n, kNr);
  for (std::size_t pa = 0; pa < panels; ++pa) {
    const std::size_t j0 = pa * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    float* dst = packed + pa * kNr * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float* src = b + p * n + j0;
      for (std::size_t j = 0; j < width; ++j) dst[j] = src[j];
      for (std::size_t j = width; j < kNr; ++j) dst[j] = 0.0f;
      dst += kNr;
    }
  }
}

/// Packs B^T where B is [n x k] (row-major): panel pa holds, for each p,
/// the floats b[(pa*kNr + j)*k + p]. Rows of B are read contiguously.
void pack_bt(const float* b, std::size_t k, std::size_t n, float* packed) {
  const std::size_t panels = ceil_div(n, kNr);
  for (std::size_t pa = 0; pa < panels; ++pa) {
    const std::size_t j0 = pa * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    float* dst = packed + pa * kNr * k;
    for (std::size_t j = 0; j < width; ++j) {
      const float* brow = b + (j0 + j) * k;
      for (std::size_t p = 0; p < k; ++p) dst[p * kNr + j] = brow[p];
    }
    for (std::size_t j = width; j < kNr; ++j) {
      for (std::size_t p = 0; p < k; ++p) dst[p * kNr + j] = 0.0f;
    }
  }
}

/// Micro-kernel: C[i0..i0+MR) x [j0..j0+width) via one packed panel.
/// Every output element keeps a single accumulator updated in ascending-p
/// order (one statement per unrolled step), so the reduction order matches
/// gemm_ref bit for bit; the j-loops vectorize, the p-loop unrolls by 4.
template <std::size_t MR, typename AFetch>
void micro_tile(AFetch a_of, const float* panel, float* c, std::size_t i0,
                std::size_t k, std::size_t n, std::size_t j0,
                std::size_t width, bool accumulate, const float* row_bias,
                const float* col_bias) {
  float acc[MR][kNr];
  for (std::size_t r = 0; r < MR; ++r) {
    const float* crow = c + (i0 + r) * n + j0;
    for (std::size_t j = 0; j < kNr; ++j) {
      acc[r][j] = (accumulate && j < width) ? crow[j] : 0.0f;
    }
  }

  std::size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const float* b0 = panel + (p + 0) * kNr;
    const float* b1 = panel + (p + 1) * kNr;
    const float* b2 = panel + (p + 2) * kNr;
    const float* b3 = panel + (p + 3) * kNr;
    for (std::size_t r = 0; r < MR; ++r) {
      const float a0 = a_of(i0 + r, p + 0);
      const float a1 = a_of(i0 + r, p + 1);
      const float a2 = a_of(i0 + r, p + 2);
      const float a3 = a_of(i0 + r, p + 3);
      float* arow = acc[r];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += a0 * b0[j];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += a1 * b1[j];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += a2 * b2[j];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += a3 * b3[j];
    }
  }
  for (; p < k; ++p) {
    const float* bp = panel + p * kNr;
    for (std::size_t r = 0; r < MR; ++r) {
      const float ap = a_of(i0 + r, p);
      float* arow = acc[r];
      for (std::size_t j = 0; j < kNr; ++j) arow[j] += ap * bp[j];
    }
  }

  for (std::size_t r = 0; r < MR; ++r) {
    float* crow = c + (i0 + r) * n + j0;
    if (row_bias != nullptr) {
      const float bias = row_bias[i0 + r];
      for (std::size_t j = 0; j < width; ++j) crow[j] = acc[r][j] + bias;
    } else if (col_bias != nullptr) {
      for (std::size_t j = 0; j < width; ++j) {
        crow[j] = acc[r][j] + col_bias[j0 + j];
      }
    } else {
      for (std::size_t j = 0; j < width; ++j) crow[j] = acc[r][j];
    }
  }
}

/// Drives the micro-kernel over all row blocks and panels, parallelized
/// over rows of C (disjoint writes; results independent of the chunking).
template <typename AFetch>
void run_tiles(AFetch a_of, const float* packed, float* c, std::size_t m,
               std::size_t k, std::size_t n, bool accumulate,
               const float* row_bias, const float* col_bias) {
  const std::size_t panels = ceil_div(n, kNr);
  parallel_for_chunks(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i0 = lo; i0 < hi;) {
          const std::size_t mr = std::min(kMr, hi - i0);
          for (std::size_t pa = 0; pa < panels; ++pa) {
            const std::size_t j0 = pa * kNr;
            const std::size_t width = std::min(kNr, n - j0);
            const float* panel = packed + pa * kNr * k;
            switch (mr) {
              case 4:
                micro_tile<4>(a_of, panel, c, i0, k, n, j0, width, accumulate,
                              row_bias, col_bias);
                break;
              case 3:
                micro_tile<3>(a_of, panel, c, i0, k, n, j0, width, accumulate,
                              row_bias, col_bias);
                break;
              case 2:
                micro_tile<2>(a_of, panel, c, i0, k, n, j0, width, accumulate,
                              row_bias, col_bias);
                break;
              default:
                micro_tile<1>(a_of, panel, c, i0, k, n, j0, width, accumulate,
                              row_bias, col_bias);
                break;
            }
          }
          i0 += mr;
        }
      },
      kRowGrain);
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate,
          const float* row_bias) {
  if (m == 0 || n == 0) return;
  const GemmScope scope("gemm", m, k, n);
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Frame frame(arena);
  float* packed = arena.alloc(ceil_div(n, kNr) * kNr * k);
  pack_b(b, k, n, packed);
  run_tiles([a, k](std::size_t i, std::size_t p) { return a[i * k + p]; },
            packed, c, m, k, n, accumulate, row_bias, nullptr);
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate,
             const float* col_bias) {
  if (m == 0 || n == 0) return;
  const GemmScope scope("gemm_bt", m, k, n);
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Frame frame(arena);
  float* packed = arena.alloc(ceil_div(n, kNr) * kNr * k);
  pack_bt(b, k, n, packed);
  run_tiles([a, k](std::size_t i, std::size_t p) { return a[i * k + p]; },
            packed, c, m, k, n, accumulate, nullptr, col_bias);
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate) {
  if (m == 0 || n == 0) return;
  const GemmScope scope("gemm_at", m, k, n);
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Frame frame(arena);
  float* packed = arena.alloc(ceil_div(n, kNr) * kNr * k);
  pack_b(b, k, n, packed);
  run_tiles([a, m](std::size_t i, std::size_t p) { return a[p * m + i]; },
            packed, c, m, k, n, accumulate, nullptr, nullptr);
}

}  // namespace safelight::nn
