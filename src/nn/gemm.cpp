// Dispatching layer of the packed GEMM: owns observability, scratch
// allocation and row parallelism, and routes the actual compute through
// the kernel table of the active compute backend (nn/backend.hpp). This
// translation unit is compiled with the baseline ISA — only the variant
// TUs carry ISA flags, and they are reached exclusively through function
// pointers after the runtime CPU probe.
#include "nn/gemm.hpp"

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "common/trace.hpp"
#include "nn/backend.hpp"

namespace safelight::nn {

namespace {

// The reduced-scale sweeps issue millions of sub-microsecond GEMMs: even
// two armed clock reads per call would eat the <2% traced-run overhead
// contract. So every call bumps the call/FLOP counters (relaxed atomics),
// but the GFLOP/s histogram meters only kernels above kMeterFlopThreshold
// (where the clock granularity yields a meaningful rate) and spans are
// emitted only above kSpanFlopThreshold (where a slice is visible in
// Perfetto rather than trace spam).
constexpr double kMeterFlopThreshold = 1 << 15;
constexpr double kSpanFlopThreshold = 1 << 20;

/// Observability wrapper around one GEMM entry point. Disarmed cost: two
/// relaxed loads.
class GemmScope {
 public:
  GemmScope(const char* name, const char* backend_name, std::size_t m,
            std::size_t k, std::size_t n)
      : name_(name),
        backend_name_(backend_name),
        m_(m),
        k_(k),
        n_(n),
        flops_(2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n)) {
    if (metrics::armed()) {
      static metrics::Counter& calls = metrics::counter("gemm.calls");
      static metrics::Counter& flops = metrics::counter("gemm.flops");
      calls.add();
      flops.add(static_cast<std::uint64_t>(flops_));
    }
    // Clock only when someone can consume the timing: the histogram above
    // kMeterFlopThreshold (metrics armed), or a span above the larger
    // kSpanFlopThreshold (trace armed). Trace-only runs skip the clock on
    // the long tail of kernels too small to emit a span.
    metered_ = (metrics::armed() && flops_ >= kMeterFlopThreshold) ||
               (trace::armed() && flops_ >= kSpanFlopThreshold);
    if (metered_) start_ns_ = trace::now_ns();
  }
  ~GemmScope() {
    if (!metered_) return;
    const std::uint64_t end_ns = trace::now_ns();
    const double seconds = static_cast<double>(end_ns - start_ns_) / 1e9;
    const double gflops = seconds > 0.0 ? flops_ / seconds / 1e9 : 0.0;
    static metrics::Histogram& rate = metrics::histogram("gemm.gflops");
    rate.record(gflops);
    if (trace::armed() && flops_ >= kSpanFlopThreshold) {
      trace::RawEvent event;
      event.name = name_;
      event.cat = "gemm";
      event.start_ns = start_ns_;
      event.dur_ns = end_ns - start_ns_;
      event.num_args.emplace_back("m", static_cast<double>(m_));
      event.num_args.emplace_back("k", static_cast<double>(k_));
      event.num_args.emplace_back("n", static_cast<double>(n_));
      event.num_args.emplace_back("gflops", gflops);
      event.str_args.emplace_back("backend", backend_name_);
      trace::record(std::move(event));
    }
  }
  GemmScope(const GemmScope&) = delete;
  GemmScope& operator=(const GemmScope&) = delete;

 private:
  const char* name_;
  const char* backend_name_;
  std::size_t m_, k_, n_;
  double flops_;
  bool metered_ = false;
  std::uint64_t start_ns_ = 0;
};

// Rows of C per parallel grain; keeps pool-submission overhead negligible
// for the small matrices that dominate reduced-scale training. A multiple
// of backend::kMr, so row blocks never straddle a chunk boundary and the
// output is independent of the chunking.
constexpr std::size_t kRowGrain = 16;
static_assert(kRowGrain % backend::kMr == 0);

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Packed-panel buffer for B, sized for ceil(n / kNr) zero-padded panels.
float* alloc_packed(ScratchArena& arena, std::size_t k, std::size_t n) {
  return arena.alloc(ceil_div(n, backend::kNr) * backend::kNr * k);
}

/// Runs the row driver of `kernels` over all of C in parallel chunks.
void run_parallel(const backend::GemmKernels& kernels,
                  const backend::GemmArgs& args, bool transposed_a) {
  void (*run)(const backend::GemmArgs&, std::size_t, std::size_t) =
      transposed_a ? kernels.run_rows_at : kernels.run_rows;
  parallel_for_chunks(
      0, args.m,
      [&](std::size_t lo, std::size_t hi) { run(args, lo, hi); }, kRowGrain);
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate,
          const float* row_bias) {
  if (m == 0 || n == 0) return;
  const backend::ComputeBackend& active = backend::active();
  const backend::GemmKernels& kernels = active.gemm_kernels();
  const GemmScope scope("gemm", active.name(), m, k, n);
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Frame frame(arena);
  float* packed = alloc_packed(arena, k, n);
  kernels.pack_b(b, k, n, packed);
  backend::GemmArgs args;
  args.a = a;
  args.packed = packed;
  args.c = c;
  args.m = m;
  args.k = k;
  args.n = n;
  args.accumulate = accumulate;
  args.row_bias = row_bias;
  run_parallel(kernels, args, /*transposed_a=*/false);
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate,
             const float* col_bias) {
  if (m == 0 || n == 0) return;
  const backend::ComputeBackend& active = backend::active();
  const backend::GemmKernels& kernels = active.gemm_kernels();
  const GemmScope scope("gemm_bt", active.name(), m, k, n);
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Frame frame(arena);
  float* packed = alloc_packed(arena, k, n);
  kernels.pack_bt(b, k, n, packed);
  backend::GemmArgs args;
  args.a = a;
  args.packed = packed;
  args.c = c;
  args.m = m;
  args.k = k;
  args.n = n;
  args.accumulate = accumulate;
  args.col_bias = col_bias;
  run_parallel(kernels, args, /*transposed_a=*/false);
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate) {
  if (m == 0 || n == 0) return;
  const backend::ComputeBackend& active = backend::active();
  const backend::GemmKernels& kernels = active.gemm_kernels();
  const GemmScope scope("gemm_at", active.name(), m, k, n);
  ScratchArena& arena = ScratchArena::local();
  const ScratchArena::Frame frame(arena);
  float* packed = alloc_packed(arena, k, n);
  kernels.pack_b(b, k, n, packed);
  backend::GemmArgs args;
  args.a = a;
  args.packed = packed;
  args.c = c;
  args.m = m;
  args.k = k;
  args.n = n;
  args.accumulate = accumulate;
  run_parallel(kernels, args, /*transposed_a=*/true);
}

}  // namespace safelight::nn
