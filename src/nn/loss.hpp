// Softmax cross-entropy loss (fused log-softmax + NLL).
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace safelight::nn {

struct LossResult {
  double loss = 0.0;   // mean over the batch
  Tensor grad;         // dL/dlogits, [N, classes]
};

/// Computes mean cross-entropy of logits [N,C] against integer labels and
/// the gradient w.r.t. the logits. Labels must be in [0, C).
LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace safelight::nn
