// Builders for the paper's three CNN models (Table I).
//
//   CNN_1    — LeNet-5-shaped MNIST classifier: 2 conv + 3 FC layers.
//   ResNet18 — 17 conv + 1 FC (basic blocks 2-2-2-2, option-A shortcuts).
//   VGG16_v  — VGG16 variant with 6 conv + 3 FC layers.
//
// Each builder takes a ModelConfig so the experiments can run
// width/resolution-reduced instances on the 2-core reproduction host while
// the same code constructs the full-scale models (see nn/model_spec.hpp for
// the analytic Table I parameter counts, which avoid allocating the 123.5M
// parameter VGG16_v).
#pragma once

#include <memory>
#include <vector>

#include "nn/sequential.hpp"

namespace safelight::nn {

struct ModelConfig {
  std::size_t in_channels = 1;
  std::size_t image_size = 28;
  std::size_t classes = 10;
  /// Base width. CNN_1 ignores it (fixed LeNet layout); ResNet18 uses it as
  /// the stem width (paper scale: 64); VGG16_v multiplies the conv ladder
  /// [64,128,128,256,512,512] by width/64.
  std::size_t width = 64;
  /// VGG16_v hidden classifier width (paper scale: 4096).
  std::size_t fc_dim = 4096;
  /// VGG16_v dropout probability in the classifier (0 disables).
  float dropout = 0.5f;
  std::uint64_t seed = 7;
};

/// Model identifiers used throughout benches, the zoo, and reports.
enum class ModelId { kCnn1, kResNet18, kVgg16v };

std::string to_string(ModelId id);
ModelId model_id_from_string(const std::string& name);

/// The paper's three CNN models, in figure order (the default model set of
/// the `safelight` CLI and the bench binaries).
std::vector<ModelId> paper_models();

std::unique_ptr<Sequential> make_cnn1(const ModelConfig& config);
std::unique_ptr<Sequential> make_resnet18(const ModelConfig& config);
std::unique_ptr<Sequential> make_vgg16v(const ModelConfig& config);

/// Dispatch by id.
std::unique_ptr<Sequential> make_model(ModelId id, const ModelConfig& config);

}  // namespace safelight::nn
