// Elementwise activations.
#pragma once

#include "nn/layer.hpp"

namespace safelight::nn {

class ReLU final : public Layer {
 public:
  ReLU() = default;

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }
  Shape output_shape(const Shape& in) const override { return in; }

 private:
  std::vector<bool> mask_;  // true where input > 0
  Shape cached_shape_;
};

/// Row-wise softmax over the last dimension of a [N, C] tensor. Forward-only
/// utility (the loss uses fused log-softmax); provided for examples that want
/// class probabilities.
Tensor softmax2d(const Tensor& logits);

}  // namespace safelight::nn
