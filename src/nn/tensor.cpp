#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace safelight::nn {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {
  for (std::size_t d : shape_) {
    require(d > 0, "Tensor: zero-sized dimension in " + shape_to_string(shape_));
  }
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  require(data_.size() == shape_numel(shape_),
          "Tensor: data size " + std::to_string(data_.size()) +
              " does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

std::size_t Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) {
    throw std::out_of_range("Tensor::dim: index " + std::to_string(i) +
                            " out of rank " + std::to_string(shape_.size()));
  }
  return shape_[i];
}

float& Tensor::at_flat(std::size_t flat) {
  if (flat >= data_.size()) {
    throw std::out_of_range("Tensor::at_flat: " + std::to_string(flat) +
                            " >= " + std::to_string(data_.size()));
  }
  return data_[flat];
}

float Tensor::at_flat(std::size_t flat) const {
  return const_cast<Tensor*>(this)->at_flat(flat);
}

namespace {

std::size_t flatten_index(const Shape& shape,
                          std::initializer_list<std::size_t> idx) {
  require(idx.size() == shape.size(),
          "Tensor::at: rank mismatch (got " + std::to_string(idx.size()) +
              " indices for shape " + shape_to_string(shape) + ")");
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (std::size_t i : idx) {
    if (i >= shape[axis]) {
      throw std::out_of_range("Tensor::at: index " + std::to_string(i) +
                              " out of bound " + std::to_string(shape[axis]) +
                              " on axis " + std::to_string(axis));
    }
    flat = flat * shape[axis] + i;
    ++axis;
  }
  return flat;
}

}  // namespace

float& Tensor::at(std::initializer_list<std::size_t> idx) {
  return data_[flatten_index(shape_, idx)];
}

float Tensor::at(std::initializer_list<std::size_t> idx) const {
  return data_[flatten_index(shape_, idx)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor copy = *this;
  copy.reshape_inplace(std::move(new_shape));
  return copy;
}

void Tensor::reshape_inplace(Shape new_shape) {
  require(shape_numel(new_shape) == data_.size(),
          "Tensor::reshape: numel mismatch " + shape_to_string(shape_) +
              " -> " + shape_to_string(new_shape));
  shape_ = std::move(new_shape);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::check_same_shape(const Tensor& rhs, const char* op) const {
  require(shape_ == rhs.shape_,
          std::string("Tensor::") + op + ": shape mismatch " +
              shape_to_string(shape_) + " vs " + shape_to_string(rhs.shape_));
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  check_same_shape(rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  check_same_shape(rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Tensor& Tensor::add_scaled(const Tensor& rhs, float scale) {
  check_same_shape(rhs, "add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * rhs.data_[i];
  }
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::min() const {
  require(!data_.empty(), "Tensor::min: empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  require(!data_.empty(), "Tensor::max: empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float best = 0.0f;
  for (float v : data_) best = std::max(best, std::abs(v));
  return best;
}

double Tensor::sum_squares() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

bool Tensor::all_finite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](float v) { return std::isfinite(v); });
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "max_abs_diff: shape mismatch");
  float best = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    best = std::max(best, std::abs(a[i] - b[i]));
  }
  return best;
}

}  // namespace safelight::nn
