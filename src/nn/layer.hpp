// Layer abstraction for the from-scratch CNN stack.
//
// Every layer implements forward (with a train flag for layers that behave
// differently at training time) and backward (must be called after a
// forward(train=true) on the same input). Parameters are exposed through
// Param handles; the accelerator mapping distinguishes conv weights (mapped
// onto the CONV block's MRs), linear weights (FC block) and electronic-domain
// parameters (biases, batch-norm — never mapped onto MRs, hence immune to MR
// attacks, exactly as in the paper's weight-stationary mapping).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace safelight::nn {

/// What kind of compute a parameter participates in; drives MR mapping.
enum class ParamKind {
  kConvWeight,    // mapped to the CONV block MR banks
  kLinearWeight,  // mapped to the FC block MR banks
  kElectronic,    // bias / batch-norm / other parameters kept electronic
};

/// A trainable tensor with its gradient accumulator.
struct Param {
  std::string name;
  ParamKind kind = ParamKind::kElectronic;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, ParamKind k, Tensor v)
      : name(std::move(n)), kind(k), value(std::move(v)),
        grad(Tensor::zeros(value.shape())) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Layer {
 public:
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  Layer(Layer&&) = default;
  Layer& operator=(Layer&&) = default;

  /// Computes the layer output. When `train` is true, state needed by
  /// backward (inputs, masks, statistics) is cached.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Propagates the loss gradient. Must follow forward(train=true);
  /// accumulates into each Param::grad and returns dL/dx.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (possibly empty). Pointers remain valid for the
  /// lifetime of the layer.
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable persistent state (e.g. batch-norm running statistics)
  /// that must be saved/restored together with the parameters.
  virtual std::vector<Tensor*> state_tensors() { return {}; }

  /// Diagnostic name, e.g. "Conv2d(3->16,k3,s1,p1)".
  virtual std::string name() const = 0;

  /// Output shape for a given input shape (batch dim included).
  virtual Shape output_shape(const Shape& in) const = 0;

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }

 protected:
  Layer() = default;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Kaiming-He normal initialization: N(0, sqrt(2 / fan_in)).
void kaiming_init(Tensor& w, std::size_t fan_in, Rng& rng);

}  // namespace safelight::nn
