#include "nn/gemm_ref.hpp"

namespace safelight::nn {

void gemm_ref(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, bool accumulate,
              const float* row_bias) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = accumulate ? crow[j] : 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      crow[j] = row_bias ? acc + row_bias[i] : acc;
    }
  }
}

void gemm_bt_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, bool accumulate,
                 const float* col_bias) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = accumulate ? crow[j] : 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = col_bias ? acc + col_bias[j] : acc;
    }
  }
}

void gemm_at_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = accumulate ? crow[j] : 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * m + i] * b[p * n + j];
      crow[j] = acc;
    }
  }
}

}  // namespace safelight::nn
