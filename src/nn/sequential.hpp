// Sequential model container.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace safelight::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference to the added layer for chaining.
  Layer& add(LayerPtr layer);

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x, bool train) override;

  /// Resumes a forward pass at `begin_layer` from a previously computed
  /// activation `h` (the output of layer begin_layer - 1). forward(x, t) is
  /// exactly forward_from(0, x, t); splitting a pass at any boundary yields
  /// bitwise-identical outputs. This is the entry point of the attack
  /// sweep's prefix-activation cache: scenarios that only corrupt layers
  /// >= L re-use the cached clean activations for layers < L.
  Tensor forward_from(std::size_t begin_layer, const Tensor& h, bool train);

  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<Tensor*> state_tensors() override;
  std::string name() const override;
  Shape output_shape(const Shape& in) const override;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Total trainable scalar parameters.
  std::size_t num_parameters();

  /// Inference helper: argmax class per row of the [N, classes] output.
  std::vector<int> predict(const Tensor& x);

  /// Fraction of correct predictions over a labeled batch.
  double accuracy(const Tensor& x, const std::vector<int>& labels);

  /// Multi-line human-readable architecture summary.
  std::string summary();

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace safelight::nn
