// Naive reference GEMM kernels (golden semantics for the packed kernels).
//
// These are the plain triple loops the optimized kernels in nn/gemm.hpp must
// reproduce bit for bit: per output element, terms are accumulated over k in
// ascending order through one accumulator, and the optional bias is added
// last. They run serially with no blocking, packing or vector-width
// assumptions, so they double as an always-correct fallback and as the
// baseline side of the microbench's kernel-speedup ratio (BM_GemmRef).
#pragma once

#include <cstddef>

namespace safelight::nn {

/// Reference semantics of nn::gemm (C = A * B, optional per-row bias).
void gemm_ref(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, bool accumulate = false,
              const float* row_bias = nullptr);

/// Reference semantics of nn::gemm_bt (C = A * B^T, optional per-col bias).
void gemm_bt_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, bool accumulate = false,
                 const float* col_bias = nullptr);

/// Reference semantics of nn::gemm_at (C = A^T * B).
void gemm_at_ref(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, bool accumulate = false);

}  // namespace safelight::nn
