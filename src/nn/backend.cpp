#include "nn/backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "nn/gemm.hpp"

namespace safelight::nn::backend {

namespace {

// __builtin_cpu_supports reads bits the dynamic loader filled in; the
// explicit __builtin_cpu_init() keeps the probes correct even when called
// before main (static initializers). Non-x86 builds have no variant TUs
// compiled in, so the probes are never consulted there.
bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// The AVX-512 variant is compiled with f/bw/dq/vl (the gcc >= skylake-avx512
// baseline the old -march=native build assumed); all four bits must be
// present before any of its code runs.
bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

class CpuBackend final : public ComputeBackend {
 public:
  CpuBackend(const char* name, int priority, bool (*probe)(),
             const GemmKernels* kernels)
      : name_(name), priority_(priority), probe_(probe), kernels_(kernels) {}

  const char* name() const override { return name_; }
  int priority() const override { return priority_; }
  bool supported() const override {
    return probe_ == nullptr || probe_();
  }
  const GemmKernels& gemm_kernels() const override { return *kernels_; }

 private:
  const char* name_;
  int priority_;
  bool (*probe_)();  // nullptr = unconditionally supported (scalar)
  const GemmKernels* kernels_;
};

std::vector<const ComputeBackend*> build_registry() {
  static const CpuBackend scalar("scalar", 0, nullptr,
                                 detail::scalar_kernels());
  std::vector<const ComputeBackend*> list = {&scalar};
  if (const GemmKernels* kernels = detail::avx2_kernels()) {
    static const CpuBackend avx2("avx2", 10, &cpu_supports_avx2, kernels);
    list.push_back(&avx2);
  }
  if (const GemmKernels* kernels = detail::avx512_kernels()) {
    static const CpuBackend avx512("avx512", 20, &cpu_supports_avx512,
                                   kernels);
    list.push_back(&avx512);
  }
  std::sort(list.begin(), list.end(),
            [](const ComputeBackend* a, const ComputeBackend* b) {
              return a->priority() > b->priority();
            });
  return list;
}

std::string join_names(const std::vector<const ComputeBackend*>& backends,
                       bool supported_only) {
  std::string names;
  for (const ComputeBackend* backend : backends) {
    if (supported_only && !backend->supported()) continue;
    if (!names.empty()) names += ", ";
    names += backend->name();
  }
  return names;
}

// active() cache plus the ScopedBackend force. Both atomics: gemm calls
// arrive from pool threads while tests flip the force on the main thread
// before launching work.
std::atomic<const ComputeBackend*> g_active{nullptr};
std::atomic<const ComputeBackend*> g_forced{nullptr};
std::mutex g_resolve_mutex;

}  // namespace

const std::vector<const ComputeBackend*>& registered() {
  static const std::vector<const ComputeBackend*> list = build_registry();
  return list;
}

std::string registered_names() {
  return join_names(registered(), /*supported_only=*/false);
}

const ComputeBackend& resolve(const std::string& name) {
  const std::vector<const ComputeBackend*>& list = registered();
  if (name.empty() || name == "auto") {
    for (const ComputeBackend* backend : list) {
      if (backend->supported()) return *backend;
    }
    // Unreachable: scalar has no probe. Kept as a hard error, not UB.
    fail_argument("no supported compute backend (corrupt registry)");
  }
  for (const ComputeBackend* backend : list) {
    if (name == backend->name()) {
      require(backend->supported(),
              "compute backend '" + name +
                  "' is compiled in but not supported by this CPU "
                  "(supported here: auto, " +
                  join_names(list, /*supported_only=*/true) + ")");
      return *backend;
    }
  }
  fail_argument("unknown compute backend '" + name + "' (valid: auto, " +
                registered_names() + ")");
}

const ComputeBackend& active() {
  if (const ComputeBackend* forced =
          g_forced.load(std::memory_order_acquire)) {
    return *forced;
  }
  const ComputeBackend* cached = g_active.load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  const std::lock_guard<std::mutex> lock(g_resolve_mutex);
  cached = g_active.load(std::memory_order_relaxed);
  if (cached == nullptr) {
    cached = &resolve(config::backend());
    g_active.store(cached, std::memory_order_release);
  }
  return *cached;
}

void invalidate_cache() {
  g_active.store(nullptr, std::memory_order_release);
}

ScopedBackend::ScopedBackend(const ComputeBackend& backend)
    : previous_(g_forced.load(std::memory_order_acquire)) {
  g_forced.store(&backend, std::memory_order_release);
}

ScopedBackend::~ScopedBackend() {
  g_forced.store(previous_, std::memory_order_release);
}

std::string kernel_fingerprint(const ComputeBackend& backend) {
  // Deterministic probe problem: shapes exercise the unroll tail (k % 4),
  // partial row blocks (m % kMr) and partial panels (n % kNr), both bias
  // epilogues, accumulation, and all three entry points. A conforming
  // variant reproduces gemm_ref bit for bit, so the digest is the same on
  // every host and every variant of a conforming binary; it only changes
  // when the kernel's math changes — which is exactly what the distributed
  // handshake needs to detect.
  const ScopedBackend forced(backend);
  constexpr std::size_t kM = 7, kK = 13, kN = 37;
  float a[kM * kK], b[kK * kN], bt[kN * kK], at[kK * kM];
  float row_bias[kM], col_bias[kN];
  float c[kM * kN];
  std::uint32_t state = 0x9e3779b9u;
  const auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return static_cast<float>(state >> 8) / 16777216.0f - 0.5f;
  };
  for (float& v : a) v = next();
  for (float& v : b) v = next();
  for (float& v : bt) v = next();
  for (float& v : at) v = next();
  for (float& v : row_bias) v = next();
  for (float& v : col_bias) v = next();

  Fingerprint digest;
  for (float& v : c) v = next();
  gemm(a, b, c, kM, kK, kN, /*accumulate=*/true, row_bias);
  digest.mix_bytes(c, sizeof c);
  gemm_bt(a, bt, c, kM, kK, kN, /*accumulate=*/false, col_bias);
  digest.mix_bytes(c, sizeof c);
  gemm_at(at, b, c, kM, kK, kN, /*accumulate=*/false);
  digest.mix_bytes(c, sizeof c);
  return digest.hex16();
}

std::string kernel_fingerprint() { return kernel_fingerprint(active()); }

void announce(bool verbose) {
  const ComputeBackend& backend = active();
  if (metrics::armed()) {
    metrics::counter(std::string("backend.selected.") + backend.name()).add();
  }
  if (trace::armed()) {
    trace::RawEvent event;
    event.name = "backend.selected";
    event.cat = "backend";
    event.start_ns = trace::now_ns();
    event.str_args.emplace_back("backend", backend.name());
    event.str_args.emplace_back("kernel", kernel_fingerprint(backend));
    trace::record(std::move(event));
  }
  if (verbose) {
    log::info("backend", "gemm compute backend: %s (registered: %s)",
              backend.name(), registered_names().c_str());
  }
}

}  // namespace safelight::nn::backend
