// Training loop with L2 regularization and noise-aware training support.
//
// Noise-aware training (paper §V.B) evaluates each forward/backward pass at
// weights perturbed with Gaussian noise while the optimizer updates the
// clean weights; L2 regularization (paper §V.A) enters through the SGD
// weight-decay term. The mitigation variants of §VI combine both.
#pragma once

#include "nn/dataset.hpp"
#include "nn/noise.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace safelight::nn {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;     // L2 regularization strength
  float lr_decay = 0.5f;         // multiplicative step decay
  std::size_t lr_decay_every = 0;  // in epochs; 0 disables
  NoiseConfig noise;             // noise-aware training; sigma 0 disables
  std::uint64_t seed = 11;
  bool verbose = false;
};

struct TrainHistory {
  std::vector<double> train_loss;  // mean per epoch
  std::vector<double> test_acc;    // after each epoch (empty test -> skipped)
  double final_test_acc = 0.0;
};

/// Mean classification accuracy of `model` on `data` (eval mode, batched).
double evaluate(Sequential& model, const Dataset& data,
                std::size_t batch_size = 64);

/// Trains `model` in place; returns the per-epoch history.
TrainHistory train_model(Sequential& model, const Dataset& train,
                         const Dataset& test, const TrainConfig& config);

}  // namespace safelight::nn
