// Analytic model specifications for Table I.
//
// The paper's Table I reports parameter counts for the full-scale models
// (VGG16_v alone has 123.5M parameters, ~494 MB as float32). These specs
// compute the counts symbolically so the Table I bench never allocates the
// full models.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace safelight::nn {

struct ConvLayerSpec {
  std::size_t in_c = 0, out_c = 0, kernel = 0;
  bool bias = true;

  std::size_t params() const {
    return out_c * in_c * kernel * kernel + (bias ? out_c : 0);
  }
};

struct FcLayerSpec {
  std::size_t in_f = 0, out_f = 0;
  bool bias = true;

  std::size_t params() const { return out_f * in_f + (bias ? out_f : 0); }
};

struct ModelSpec {
  std::string name;
  std::string dataset;
  std::vector<ConvLayerSpec> convs;
  std::vector<FcLayerSpec> fcs;
  /// Electronic-domain parameters (batch-norm gammas/betas); included in the
  /// total but never mapped onto MRs.
  std::size_t electronic_params = 0;

  std::size_t conv_layer_count() const { return convs.size(); }
  std::size_t fc_layer_count() const { return fcs.size(); }
  std::size_t conv_params() const;
  std::size_t fc_params() const;
  std::size_t total_params() const;
};

/// CNN_1 (LeNet-5-shaped MNIST classifier, paper: 2.6K conv / 41.6K fc).
ModelSpec spec_cnn1();

/// ResNet18 with option-A shortcuts at the given stem width (paper scale 64;
/// the paper reports 4.7M conv parameters, which corresponds to width ~42 —
/// both are worth printing side by side).
ModelSpec spec_resnet18(std::size_t width = 64);

/// VGG16 variant with 6 conv + 3 FC at 224x224 (paper: 3.9M conv /
/// 119.6M fc / 123.5M total).
ModelSpec spec_vgg16v();

}  // namespace safelight::nn
