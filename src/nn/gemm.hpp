// Packed, register-tiled single-precision GEMM kernels.
//
// All convolution and fully-connected compute lowers onto these three
// routines. B is packed into kNr-wide column panels held in the thread-local
// scratch arena; a kMr x kNr register-blocked micro-kernel (unrolled by 4
// over k) then streams the panels. The compute itself is dispatched at
// runtime through the compute-backend registry (nn/backend.hpp): one fat
// binary carries scalar, AVX2 and AVX-512 variants of the kernel body and
// picks the best one the host CPU supports (override with --backend /
// SAFELIGHT_BACKEND).
//
// Numerics contract: every output element is reduced over k in ascending
// order through a single accumulator, with FMA contraction disabled, so
// results are bitwise-identical to the naive reference kernels in
// nn/gemm_ref.hpp regardless of tile shape, thread count, host ISA or
// backend choice (enforced per compiled-in variant by
// tests/gemm_equivalence_test.cpp).
//
// The optional fused bias is added once per output element after the
// reduction — the same rounding sequence as a separate bias pass, without
// re-traversing C.
#pragma once

#include <cstddef>

namespace safelight::nn {

/// C[m x n] = A[m x k] * B[k x n] (+ C when accumulate). Row-major, no
/// alias. When row_bias is non-null, bias[i] is added to every element of
/// output row i in the epilogue (Conv2d: one bias per output channel).
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate = false,
          const float* row_bias = nullptr);

/// C[m x n] = A[m x k] * B^T where B is [n x k]. Row-major, no alias. When
/// col_bias is non-null, bias[j] is added to every element of output column
/// j in the epilogue (Linear: one bias per output feature).
void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate = false,
             const float* col_bias = nullptr);

/// C[m x n] = A^T * B where A is [k x m], B is [k x n]. Row-major, no alias.
void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate = false);

}  // namespace safelight::nn
