// Blocked single-precision GEMM kernels.
//
// All convolution and fully-connected compute lowers onto these three
// routines. They are cache-blocked and parallelized over output rows with
// common/parallel.hpp; on the 2-core reproduction host they reach a few
// GFLOP/s, which sizes the experiment defaults in core/experiment_scale.
#pragma once

#include <cstddef>

namespace safelight::nn {

/// C[m x n] = A[m x k] * B[k x n] (+ C when accumulate). Row-major, no alias.
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n, bool accumulate = false);

/// C[m x n] = A[m x k] * B^T where B is [n x k]. Row-major, no alias.
void gemm_bt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate = false);

/// C[m x n] = A^T * B where A is [k x m], B is [k x n]. Row-major, no alias.
void gemm_at(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate = false);

}  // namespace safelight::nn
