#include "nn/dataset.hpp"

#include <numeric>

#include "common/error.hpp"

namespace safelight::nn {

Shape Dataset::sample_shape() const {
  require(images.rank() == 4, "Dataset: images must be [N,C,H,W]");
  return {images.dim(1), images.dim(2), images.dim(3)};
}

std::pair<Tensor, std::vector<int>> Dataset::batch(std::size_t begin,
                                                   std::size_t end) const {
  require(begin < end && end <= size(), "Dataset::batch: bad range");
  const std::size_t per_sample = images.numel() / size();
  Tensor out({end - begin, images.dim(1), images.dim(2), images.dim(3)});
  std::copy(images.data() + begin * per_sample,
            images.data() + end * per_sample, out.data());
  return {std::move(out),
          std::vector<int>(labels.begin() + static_cast<std::ptrdiff_t>(begin),
                           labels.begin() + static_cast<std::ptrdiff_t>(end))};
}

std::pair<Tensor, std::vector<int>> Dataset::gather(
    const std::vector<std::size_t>& indices) const {
  require(!indices.empty(), "Dataset::gather: empty index set");
  const std::size_t per_sample = images.numel() / size();
  Tensor out({indices.size(), images.dim(1), images.dim(2), images.dim(3)});
  std::vector<int> out_labels(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    require(indices[i] < size(), "Dataset::gather: index out of range");
    std::copy(images.data() + indices[i] * per_sample,
              images.data() + (indices[i] + 1) * per_sample,
              out.data() + i * per_sample);
    out_labels[i] = labels[indices[i]];
  }
  return {std::move(out), std::move(out_labels)};
}

Dataset Dataset::take(std::size_t n) const {
  n = std::min(n, size());
  require(n > 0, "Dataset::take: cannot take zero samples");
  auto [imgs, labs] = batch(0, n);
  Dataset out;
  out.images = std::move(imgs);
  out.labels = std::move(labs);
  out.num_classes = num_classes;
  out.name = name;
  return out;
}

void Dataset::validate() const {
  require(images.rank() == 4, "Dataset: images must be [N,C,H,W]");
  require(images.dim(0) == labels.size(),
          "Dataset: image/label count mismatch");
  require(num_classes > 0, "Dataset: num_classes must be positive");
  for (int label : labels) {
    require(label >= 0 && static_cast<std::size_t>(label) < num_classes,
            "Dataset: label out of range");
  }
  require(images.all_finite(), "Dataset: non-finite pixel values");
}

BatchIterator::BatchIterator(const Dataset& data, std::size_t batch_size,
                             Rng& rng, bool shuffle)
    : data_(data), batch_size_(batch_size), shuffle_(shuffle) {
  require(batch_size > 0, "BatchIterator: batch size must be positive");
  reset(rng);
}

void BatchIterator::reset(Rng& rng) {
  if (shuffle_) {
    order_ = rng.permutation(data_.size());
  } else {
    order_.resize(data_.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
  }
  cursor_ = 0;
}

bool BatchIterator::next(Tensor& images, std::vector<int>& labels) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t end = std::min(order_.size(), cursor_ + batch_size_);
  std::vector<std::size_t> indices(
      order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
      order_.begin() + static_cast<std::ptrdiff_t>(end));
  auto [imgs, labs] = data_.gather(indices);
  images = std::move(imgs);
  labels = std::move(labs);
  cursor_ = end;
  return true;
}

}  // namespace safelight::nn
