#include "nn/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace safelight::nn {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  require(num_classes > 0, "ConfusionMatrix: need at least one class");
}

std::size_t ConfusionMatrix::index(int truth, int prediction) const {
  require(truth >= 0 && static_cast<std::size_t>(truth) < classes_,
          "ConfusionMatrix: truth label out of range");
  require(prediction >= 0 &&
              static_cast<std::size_t>(prediction) < classes_,
          "ConfusionMatrix: prediction out of range");
  return static_cast<std::size_t>(truth) * classes_ +
         static_cast<std::size_t>(prediction);
}

void ConfusionMatrix::record(int truth, int prediction) {
  ++counts_[index(truth, prediction)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int truth, int prediction) const {
  return counts_[index(truth, prediction)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    correct += counts_[c * classes_ + c];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int truth) const {
  const std::size_t row = static_cast<std::size_t>(truth) * classes_;
  std::size_t row_total = 0;
  for (std::size_t p = 0; p < classes_; ++p) row_total += counts_[row + p];
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(truth, truth)) /
         static_cast<double>(row_total);
}

double ConfusionMatrix::precision(int prediction) const {
  std::size_t col_total = 0;
  for (std::size_t t = 0; t < classes_; ++t) {
    col_total += counts_[t * classes_ + static_cast<std::size_t>(prediction)];
  }
  if (col_total == 0) return 0.0;
  return static_cast<double>(count(prediction, prediction)) /
         static_cast<double>(col_total);
}

double ConfusionMatrix::balanced_accuracy() const {
  double sum = 0.0;
  std::size_t seen = 0;
  for (std::size_t t = 0; t < classes_; ++t) {
    std::size_t row_total = 0;
    for (std::size_t p = 0; p < classes_; ++p) {
      row_total += counts_[t * classes_ + p];
    }
    if (row_total == 0) continue;
    ++seen;
    sum += recall(static_cast<int>(t));
  }
  return seen == 0 ? 0.0 : sum / static_cast<double>(seen);
}

double ConfusionMatrix::prediction_collapse() const {
  if (total_ == 0) return 0.0;
  std::size_t best = 0;
  for (std::size_t p = 0; p < classes_; ++p) {
    std::size_t col_total = 0;
    for (std::size_t t = 0; t < classes_; ++t) {
      col_total += counts_[t * classes_ + p];
    }
    best = std::max(best, col_total);
  }
  return static_cast<double>(best) / static_cast<double>(total_);
}

std::string ConfusionMatrix::render() const {
  std::ostringstream os;
  os << "truth\\pred";
  for (std::size_t p = 0; p < classes_; ++p) os << '\t' << p;
  os << '\n';
  for (std::size_t t = 0; t < classes_; ++t) {
    os << t;
    for (std::size_t p = 0; p < classes_; ++p) {
      os << '\t' << counts_[t * classes_ + p];
    }
    os << '\n';
  }
  return os.str();
}

ConfusionMatrix confusion_matrix(Sequential& model, const Dataset& data,
                                 std::size_t batch_size) {
  data.validate();
  ConfusionMatrix matrix(data.num_classes);
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(data.size(), begin + batch_size);
    auto [images, labels] = data.batch(begin, end);
    const std::vector<int> preds = model.predict(images);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      matrix.record(labels[i], preds[i]);
    }
  }
  return matrix;
}

}  // namespace safelight::nn
