// Spatial pooling layers.
#pragma once

#include "nn/layer.hpp"

namespace safelight::nn {

/// Max pooling with square window; window == stride (non-overlapping), the
/// configuration used by every model in the paper.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  Shape output_shape(const Shape& in) const override;

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
  Shape cached_in_shape_;
};

/// Global average pooling: [N,C,H,W] -> [N,C,1,1].
class GlobalAvgPool final : public Layer {
 public:
  GlobalAvgPool() = default;

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "GlobalAvgPool"; }
  Shape output_shape(const Shape& in) const override;

 private:
  Shape cached_in_shape_;
};

/// Flattens [N,...] -> [N,F].
class Flatten final : public Layer {
 public:
  Flatten() = default;

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }
  Shape output_shape(const Shape& in) const override;

 private:
  Shape cached_in_shape_;
};

}  // namespace safelight::nn
