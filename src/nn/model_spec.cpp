#include "nn/model_spec.hpp"

namespace safelight::nn {

std::size_t ModelSpec::conv_params() const {
  std::size_t total = 0;
  for (const auto& c : convs) total += c.params();
  return total;
}

std::size_t ModelSpec::fc_params() const {
  std::size_t total = 0;
  for (const auto& f : fcs) total += f.params();
  return total;
}

std::size_t ModelSpec::total_params() const {
  return conv_params() + fc_params() + electronic_params;
}

ModelSpec spec_cnn1() {
  ModelSpec s;
  s.name = "CNN_1";
  s.dataset = "MNIST";
  s.convs = {{1, 6, 5, true}, {6, 16, 5, true}};
  s.fcs = {{256, 120, true}, {120, 84, true}, {84, 10, true}};
  return s;
}

ModelSpec spec_resnet18(std::size_t width) {
  ModelSpec s;
  s.name = "ResNet18";
  s.dataset = "CIFAR10";
  const std::size_t w = width;
  auto conv3 = [](std::size_t in, std::size_t out) {
    return ConvLayerSpec{in, out, 3, /*bias=*/false};
  };
  s.convs.push_back(conv3(3, w));  // stem
  const std::size_t widths[4] = {w, 2 * w, 4 * w, 8 * w};
  std::size_t in_c = w;
  std::size_t bn_channels = w;  // stem BN
  for (std::size_t stage = 0; stage < 4; ++stage) {
    const std::size_t out_c = widths[stage];
    // Two basic blocks per stage; two 3x3 convs + two BNs per block.
    s.convs.push_back(conv3(in_c, out_c));
    s.convs.push_back(conv3(out_c, out_c));
    s.convs.push_back(conv3(out_c, out_c));
    s.convs.push_back(conv3(out_c, out_c));
    bn_channels += 8 * out_c;
    in_c = out_c;
  }
  s.fcs = {{8 * w, 10, true}};
  s.electronic_params = 2 * bn_channels;  // gamma + beta per channel
  return s;
}

ModelSpec spec_vgg16v() {
  ModelSpec s;
  s.name = "VGG16_v";
  s.dataset = "Imagenette";
  const std::size_t ladder[6] = {64, 128, 128, 256, 512, 512};
  std::size_t in_c = 3;
  for (std::size_t out_c : ladder) {
    s.convs.push_back({in_c, out_c, 3, true});
    in_c = out_c;
  }
  // Five pools: 224 -> 7; classifier input 512*7*7 = 25088.
  s.fcs = {{25088, 4096, true}, {4096, 4096, true}, {4096, 10, true}};
  return s;
}

}  // namespace safelight::nn
