// AVX2 variant of the packed GEMM kernel. src/CMakeLists.txt compiles this
// translation unit with -mavx2 (plus -ffp-contract=off — no FMA, see the
// numerics contract) and defines SAFELIGHT_BACKEND_AVX2 when the compiler
// supports the flag; otherwise the variant is absent from the registry and
// the getter reports that with nullptr. The kernels are reached only
// through the table, after the runtime __builtin_cpu_supports probe.
#include "nn/backend.hpp"

#if defined(SAFELIGHT_BACKEND_AVX2)

namespace safelight::nn::backend {

namespace {
#include "nn/gemm_variant.inl"
}  // namespace

const GemmKernels* detail::avx2_kernels() { return &kVariantKernels; }

}  // namespace safelight::nn::backend

#else

namespace safelight::nn::backend {

const GemmKernels* detail::avx2_kernels() { return nullptr; }

}  // namespace safelight::nn::backend

#endif
