// AVX-512 variant of the packed GEMM kernel. src/CMakeLists.txt compiles
// this translation unit with -mavx512f/bw/dq/vl -mprefer-vector-width=512
// (plus -ffp-contract=off) and defines SAFELIGHT_BACKEND_AVX512 when the
// compiler supports the flags; otherwise the variant is absent from the
// registry. The runtime probe requires the same four feature bits before
// any of these kernels is reachable — this TU is exactly the code that
// used to SIGILL on pre-AVX-512 hosts under whole-kernel -march=native.
#include "nn/backend.hpp"

#if defined(SAFELIGHT_BACKEND_AVX512)

namespace safelight::nn::backend {

namespace {
#include "nn/gemm_variant.inl"
}  // namespace

const GemmKernels* detail::avx512_kernels() { return &kVariantKernels; }

}  // namespace safelight::nn::backend

#else

namespace safelight::nn::backend {

const GemmKernels* detail::avx512_kernels() { return nullptr; }

}  // namespace safelight::nn::backend

#endif
