// Dense float32 tensor with row-major contiguous storage.
//
// This is the numeric workhorse of the CNN stack: activations are [N,C,H,W]
// (or [N,F] after flatten), parameters are [outC,inC,kH,kW] / [out,in].
// The class keeps value semantics (copyable, movable) per the Core
// Guidelines; all shape errors throw std::invalid_argument.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace safelight::nn {

using Shape = std::vector<std::size_t>;

/// Returns the element count of a shape (product of dims; 1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// Renders a shape as "[2, 3, 4]" for diagnostics.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty rank-0 tensor with a single zero element is NOT created; a
  /// default-constructed tensor has no elements and empty shape.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit contents; data.size() must equal shape_numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);

  /// 1-D tensor from an initializer list (test convenience).
  static Tensor from(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Dimension i; throws std::out_of_range for invalid i.
  std::size_t dim(std::size_t i) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](std::size_t flat) { return data_[flat]; }
  float operator[](std::size_t flat) const { return data_[flat]; }

  /// Bounds-checked flat access.
  float& at_flat(std::size_t flat);
  float at_flat(std::size_t flat) const;

  /// Multi-dimensional access (bounds-checked, rank-checked).
  float& at(std::initializer_list<std::size_t> idx);
  float at(std::initializer_list<std::size_t> idx) const;

  /// Returns a reshaped copy sharing no storage; numel must match.
  Tensor reshaped(Shape new_shape) const;

  /// In-place reshape; numel must match.
  void reshape_inplace(Shape new_shape);

  void fill(float value);

  // ---- element-wise arithmetic (shapes must match exactly) ----
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float scalar);
  Tensor& add_scaled(const Tensor& rhs, float scale);  // this += scale * rhs

  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, float scalar) { return lhs *= scalar; }

  // ---- reductions ----
  float sum() const;
  float min() const;
  float max() const;
  float abs_max() const;
  /// Sum of squared elements (used by the L2 regularization term).
  double sum_squares() const;

  /// True when every element is finite (no NaN/Inf).
  bool all_finite() const;

 private:
  void check_same_shape(const Tensor& rhs, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Max absolute element-wise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace safelight::nn
