#include "nn/trainer.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"
#include "nn/loss.hpp"

namespace safelight::nn {

double evaluate(Sequential& model, const Dataset& data,
                std::size_t batch_size) {
  require(data.size() > 0, "evaluate: empty dataset");
  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(data.size(), begin + batch_size);
    auto [images, labels] = data.batch(begin, end);
    const std::vector<int> preds = model.predict(images);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TrainHistory train_model(Sequential& model, const Dataset& train,
                         const Dataset& test, const TrainConfig& config) {
  require(config.epochs > 0, "train_model: epochs must be positive");
  train.validate();

  Rng rng(seed_combine(config.seed, 0x7124));
  const std::vector<Param*> params = model.params();
  Sgd opt(params, SgdConfig{config.lr, config.momentum, config.weight_decay,
                            /*decay_electronic=*/false});
  NoiseInjector injector(config.noise, seed_combine(config.seed, 0x401E));

  TrainHistory history;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.lr_decay_every > 0 && epoch > 0 &&
        epoch % config.lr_decay_every == 0) {
      opt.set_lr(opt.lr() * config.lr_decay);
    }
    BatchIterator batches(train, config.batch_size, rng, /*shuffle=*/true);
    Tensor images;
    std::vector<int> labels;
    double loss_sum = 0.0;
    std::size_t batch_count = 0;
    while (batches.next(images, labels)) {
      // Noise-aware training: gradients are taken at perturbed weights,
      // the update is applied to the clean weights.
      injector.perturb(params);
      const Tensor logits = model.forward(images, /*train=*/true);
      LossResult loss = cross_entropy(logits, labels);
      // Divergence guard: a non-finite loss (exploding high-sigma noise
      // runs) would poison the weights with NaNs; skip this step. Healthy
      // runs are bit-identical with or without the guard.
      if (!std::isfinite(loss.loss) || !loss.grad.all_finite()) {
        injector.restore(params);
        opt.zero_grad();
        continue;
      }
      model.backward(loss.grad);
      injector.restore(params);
      opt.step();
      opt.zero_grad();
      loss_sum += loss.loss;
      ++batch_count;
    }
    history.train_loss.push_back(
        batch_count == 0 ? std::numeric_limits<double>::quiet_NaN()
                         : loss_sum / static_cast<double>(batch_count));
    if (test.size() > 0) {
      history.test_acc.push_back(evaluate(model, test));
    }
    if (config.verbose) {
      std::printf("  epoch %2zu  loss %.4f  test_acc %.4f\n", epoch + 1,
                  history.train_loss.back(),
                  history.test_acc.empty() ? -1.0 : history.test_acc.back());
      std::fflush(stdout);
    }
  }
  history.final_test_acc =
      history.test_acc.empty() ? 0.0 : history.test_acc.back();
  return history;
}

}  // namespace safelight::nn
