#include "nn/noise.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::nn {

NoiseInjector::NoiseInjector(NoiseConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  require(config_.sigma >= 0.0f, "NoiseInjector: sigma must be >= 0");
}

void NoiseInjector::perturb(const std::vector<Param*>& params) {
  if (!config_.enabled()) return;
  SAFELIGHT_ASSERT(!active_, "NoiseInjector::perturb called twice");
  saved_.clear();
  saved_.reserve(params.size());
  for (Param* p : params) {
    saved_.push_back(p->value);
    if (!config_.perturb_electronic && p->kind == ParamKind::kElectronic) {
      continue;
    }
    Tensor& w = p->value;
    switch (config_.mode) {
      case NoiseMode::kRelativeToStd: {
        // Per-tensor standard deviation (mean assumed ~0 for weights).
        const double ms =
            w.sum_squares() / static_cast<double>(w.numel());
        const double stddev =
            static_cast<double>(config_.sigma) * std::sqrt(ms);
        // Non-finite weights (a diverged run) make stddev NaN; leave the
        // tensor alone rather than poisoning the RNG or throwing.
        if (stddev == 0.0 || !std::isfinite(stddev)) break;
        for (std::size_t i = 0; i < w.numel(); ++i) {
          w[i] += static_cast<float>(rng_.gaussian(0.0, stddev));
        }
        break;
      }
      case NoiseMode::kRelativeToMax: {
        const float scale = w.abs_max();
        if (scale == 0.0f) break;
        const double stddev = static_cast<double>(config_.sigma) * scale;
        for (std::size_t i = 0; i < w.numel(); ++i) {
          w[i] += static_cast<float>(rng_.gaussian(0.0, stddev));
        }
        break;
      }
      case NoiseMode::kAbsolute: {
        for (std::size_t i = 0; i < w.numel(); ++i) {
          w[i] += static_cast<float>(rng_.gaussian(0.0, config_.sigma));
        }
        break;
      }
      case NoiseMode::kProportional: {
        for (std::size_t i = 0; i < w.numel(); ++i) {
          const double stddev =
              static_cast<double>(config_.sigma) * std::abs(w[i]);
          w[i] += static_cast<float>(rng_.gaussian(0.0, stddev));
        }
        break;
      }
    }
  }
  active_ = true;
}

void NoiseInjector::restore(const std::vector<Param*>& params) {
  if (!active_) return;
  SAFELIGHT_ASSERT(saved_.size() == params.size(),
                   "NoiseInjector::restore: parameter set changed");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = saved_[i];
  }
  saved_.clear();
  active_ = false;
}

}  // namespace safelight::nn
