#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  require(channels > 0, "BatchNorm2d: channels must be positive");
  require(momentum > 0.0f && momentum <= 1.0f,
          "BatchNorm2d: momentum must be in (0,1]");
  gamma_ = Param("bn.gamma", ParamKind::kElectronic,
                 Tensor::full({channels_}, 1.0f));
  beta_ = Param("bn.beta", ParamKind::kElectronic, Tensor({channels_}));
  running_mean_ = Tensor({channels_});
  running_var_ = Tensor::full({channels_}, 1.0f);
}

Shape BatchNorm2d::output_shape(const Shape& in) const {
  require(in.size() == 4 && in[1] == channels_,
          "BatchNorm2d: expected [N," + std::to_string(channels_) + ",H,W]");
  return in;
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  (void)output_shape(x.shape());
  const std::size_t batch = x.dim(0), hw = x.dim(2) * x.dim(3);
  const std::size_t per_channel = batch * hw;
  Tensor out(x.shape());

  if (train) {
    cached_input_ = x;
    batch_mean_.assign(channels_, 0.0);
    batch_var_.assign(channels_, 0.0);
    for (std::size_t c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (std::size_t n = 0; n < batch; ++n) {
        const float* plane = x.data() + (n * channels_ + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          sum += plane[i];
          sq += static_cast<double>(plane[i]) * plane[i];
        }
      }
      const double mean = sum / static_cast<double>(per_channel);
      // Biased variance, matching the normalization used in backward.
      const double var = sq / static_cast<double>(per_channel) - mean * mean;
      batch_mean_[c] = mean;
      batch_var_[c] = var < 0.0 ? 0.0 : var;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(batch_var_[c]);
    }
    for (std::size_t c = 0; c < channels_; ++c) {
      const float inv_std =
          1.0f / std::sqrt(static_cast<float>(batch_var_[c]) + eps_);
      const float mean = static_cast<float>(batch_mean_[c]);
      const float g = gamma_.value[c], b = beta_.value[c];
      for (std::size_t n = 0; n < batch; ++n) {
        const float* in_plane = x.data() + (n * channels_ + c) * hw;
        float* out_plane = out.data() + (n * channels_ + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          out_plane[i] = (in_plane[i] - mean) * inv_std * g + b;
        }
      }
    }
  } else {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float mean = running_mean_[c];
      const float g = gamma_.value[c], b = beta_.value[c];
      for (std::size_t n = 0; n < batch; ++n) {
        const float* in_plane = x.data() + (n * channels_ + c) * hw;
        float* out_plane = out.data() + (n * channels_ + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          out_plane[i] = (in_plane[i] - mean) * inv_std * g + b;
        }
      }
    }
    cached_input_ = Tensor();
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  require(!cached_input_.empty(),
          "BatchNorm2d::backward called without forward(train=true)");
  const Tensor& x = cached_input_;
  require(grad_out.shape() == x.shape(),
          "BatchNorm2d::backward: grad shape mismatch");
  const std::size_t batch = x.dim(0), hw = x.dim(2) * x.dim(3);
  const auto m = static_cast<double>(batch * hw);
  Tensor grad_in(x.shape());

  for (std::size_t c = 0; c < channels_; ++c) {
    const double mean = batch_mean_[c];
    const double var = batch_var_[c];
    const double inv_std = 1.0 / std::sqrt(var + static_cast<double>(eps_));
    const double g = gamma_.value[c];

    // First pass: sum(dy), sum(dy * xhat).
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* xp = x.data() + (n * channels_ + c) * hw;
      const float* gp = grad_out.data() + (n * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        const double xhat = (xp[i] - mean) * inv_std;
        sum_dy += gp[i];
        sum_dy_xhat += gp[i] * xhat;
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    // Second pass: dx = (g*inv_std/m) * (m*dy - sum_dy - xhat*sum_dy_xhat).
    const double scale = g * inv_std / m;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* xp = x.data() + (n * channels_ + c) * hw;
      const float* gp = grad_out.data() + (n * channels_ + c) * hw;
      float* op = grad_in.data() + (n * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        const double xhat = (xp[i] - mean) * inv_std;
        op[i] = static_cast<float>(
            scale * (m * gp[i] - sum_dy - xhat * sum_dy_xhat));
      }
    }
  }
  return grad_in;
}

std::string BatchNorm2d::name() const {
  return "BatchNorm2d(" + std::to_string(channels_) + ")";
}

}  // namespace safelight::nn
