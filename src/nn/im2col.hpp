// im2col / col2im lowering for 2-D convolution.
//
// Convolution forward becomes one GEMM per batch over the unrolled patch
// matrix; backward-to-input uses col2im to scatter patch gradients back.
#pragma once

#include <cstddef>

namespace safelight::nn {

/// Geometry of one conv lowering. All fields in elements (not bytes).
struct ConvGeom {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t k_h = 0, k_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (in_h + 2 * pad - k_h) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - k_w) / stride + 1; }
  /// Rows of the patch matrix: in_c * k_h * k_w.
  std::size_t patch_len() const { return in_c * k_h * k_w; }
  /// Columns of the patch matrix: out_h * out_w.
  std::size_t out_hw() const { return out_h() * out_w(); }
  /// True when the geometry produces at least one output pixel.
  bool valid() const {
    return in_h + 2 * pad >= k_h && in_w + 2 * pad >= k_w && stride > 0 &&
           in_c > 0 && k_h > 0 && k_w > 0;
  }
};

/// Unrolls a single image [C,H,W] into columns [patch_len x out_hw].
/// Out-of-bounds (padding) taps contribute zeros.
void im2col(const float* image, const ConvGeom& g, float* columns);

/// Scatters columns [patch_len x out_hw] back into an image [C,H,W],
/// accumulating overlapping contributions. `image` must be zeroed by the
/// caller beforehand.
void col2im(const float* columns, const ConvGeom& g, float* image);

}  // namespace safelight::nn
