#include "nn/sequential.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace safelight::nn {

Layer& Sequential::add(LayerPtr layer) {
  require(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  return forward_from(0, x, train);
}

Tensor Sequential::forward_from(std::size_t begin_layer, const Tensor& h,
                                bool train) {
  require(begin_layer <= layers_.size(),
          "Sequential::forward_from: layer index out of range");
  Tensor cur = h;
  for (std::size_t i = begin_layer; i < layers_.size(); ++i) {
    cur = layers_[i]->forward(cur, train);
  }
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::state_tensors() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* t : layer->state_tensors()) out.push_back(t);
  }
  return out;
}

std::string Sequential::name() const {
  return "Sequential(" + std::to_string(layers_.size()) + " layers)";
}

Shape Sequential::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

Layer& Sequential::layer(std::size_t i) {
  require(i < layers_.size(), "Sequential::layer: index out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  require(i < layers_.size(), "Sequential::layer: index out of range");
  return *layers_[i];
}

std::size_t Sequential::num_parameters() {
  std::size_t total = 0;
  for (Param* p : params()) total += p->value.numel();
  return total;
}

std::vector<int> Sequential::predict(const Tensor& x) {
  Tensor logits = forward(x, /*train=*/false);
  require(logits.rank() == 2, "Sequential::predict: output must be [N,C]");
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  std::vector<int> out(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    out[n] = static_cast<int>(
        std::max_element(row, row + classes) - row);
  }
  return out;
}

double Sequential::accuracy(const Tensor& x, const std::vector<int>& labels) {
  require(x.dim(0) == labels.size(),
          "Sequential::accuracy: batch/label count mismatch");
  const std::vector<int> preds = predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

std::string Sequential::summary() {
  std::ostringstream os;
  os << "Sequential with " << layers_.size() << " layers, "
     << num_parameters() << " parameters\n";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    os << "  [" << i << "] " << layers_[i]->name() << '\n';
  }
  return os.str();
}

}  // namespace safelight::nn
