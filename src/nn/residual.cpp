#include "nn/residual.hpp"

#include "common/error.hpp"

namespace safelight::nn {

BasicBlock::BasicBlock(std::size_t in_c, std::size_t out_c, std::size_t stride,
                       Rng& rng)
    : in_c_(in_c), out_c_(out_c), stride_(stride),
      conv1_(in_c, out_c, 3, stride, 1, rng, /*bias=*/false),
      bn1_(out_c),
      conv2_(out_c, out_c, 3, 1, 1, rng, /*bias=*/false),
      bn2_(out_c) {
  require(stride == 1 || stride == 2, "BasicBlock: stride must be 1 or 2");
  require(out_c >= in_c,
          "BasicBlock: option-A shortcut requires out_c >= in_c");
}

Shape BasicBlock::output_shape(const Shape& in) const {
  return bn2_.output_shape(
      conv2_.output_shape(conv1_.output_shape(in)));
}

Tensor BasicBlock::shortcut_forward(const Tensor& x) const {
  if (stride_ == 1 && in_c_ == out_c_) return x;
  const std::size_t batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const std::size_t out_h = (in_h - 1) / stride_ + 1;
  const std::size_t out_w = (in_w - 1) / stride_ + 1;
  Tensor out({batch, out_c_, out_h, out_w});  // zero-filled => channel pad
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < in_c_; ++c) {
      const float* src = x.data() + (n * in_c_ + c) * in_h * in_w;
      float* dst = out.data() + (n * out_c_ + c) * out_h * out_w;
      for (std::size_t h = 0; h < out_h; ++h) {
        for (std::size_t w = 0; w < out_w; ++w) {
          dst[h * out_w + w] = src[(h * stride_) * in_w + w * stride_];
        }
      }
    }
  }
  return out;
}

Tensor BasicBlock::shortcut_backward(const Tensor& grad,
                                     const Shape& in_shape) const {
  if (stride_ == 1 && in_c_ == out_c_) return grad;
  const std::size_t batch = in_shape[0], in_h = in_shape[2],
                    in_w = in_shape[3];
  const std::size_t out_h = grad.dim(2), out_w = grad.dim(3);
  Tensor grad_in(in_shape);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < in_c_; ++c) {
      const float* src = grad.data() + (n * out_c_ + c) * out_h * out_w;
      float* dst = grad_in.data() + (n * in_c_ + c) * in_h * in_w;
      for (std::size_t h = 0; h < out_h; ++h) {
        for (std::size_t w = 0; w < out_w; ++w) {
          dst[(h * stride_) * in_w + w * stride_] = src[h * out_w + w];
        }
      }
    }
  }
  return grad_in;
}

Tensor BasicBlock::forward(const Tensor& x, bool train) {
  if (train) cached_in_shape_ = x.shape();
  Tensor h = conv1_.forward(x, train);
  h = bn1_.forward(h, train);
  if (train) relu1_mask_.assign(h.numel(), false);
  for (std::size_t i = 0; i < h.numel(); ++i) {
    if (h[i] > 0.0f) {
      if (train) relu1_mask_[i] = true;
    } else {
      h[i] = 0.0f;
    }
  }
  h = conv2_.forward(h, train);
  h = bn2_.forward(h, train);
  h += shortcut_forward(x);
  if (train) relu2_mask_.assign(h.numel(), false);
  for (std::size_t i = 0; i < h.numel(); ++i) {
    if (h[i] > 0.0f) {
      if (train) relu2_mask_[i] = true;
    } else {
      h[i] = 0.0f;
    }
  }
  return h;
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  require(!relu2_mask_.empty(),
          "BasicBlock::backward called without forward(train=true)");
  require(grad_out.numel() == relu2_mask_.size(),
          "BasicBlock::backward: grad size mismatch");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    if (!relu2_mask_[i]) g[i] = 0.0f;
  }
  // The post-ReLU gradient splits into the residual branch and the shortcut.
  Tensor g_main = bn2_.backward(g);
  g_main = conv2_.backward(g_main);
  for (std::size_t i = 0; i < g_main.numel(); ++i) {
    if (!relu1_mask_[i]) g_main[i] = 0.0f;
  }
  g_main = bn1_.backward(g_main);
  g_main = conv1_.backward(g_main);

  Tensor g_short = shortcut_backward(g, cached_in_shape_);
  g_main += g_short;
  return g_main;
}

std::vector<Param*> BasicBlock::params() {
  std::vector<Param*> out;
  for (Layer* l : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_,
                                                &bn2_}) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> BasicBlock::state_tensors() {
  std::vector<Tensor*> out;
  for (Layer* l : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_,
                                                &bn2_}) {
    for (Tensor* t : l->state_tensors()) out.push_back(t);
  }
  return out;
}

std::string BasicBlock::name() const {
  return "BasicBlock(" + std::to_string(in_c_) + "->" +
         std::to_string(out_c_) + ",s" + std::to_string(stride_) + ")";
}

}  // namespace safelight::nn
