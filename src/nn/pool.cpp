#include "nn/pool.hpp"

#include "common/error.hpp"

namespace safelight::nn {

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  require(window >= 1, "MaxPool2d: window must be >= 1");
}

Shape MaxPool2d::output_shape(const Shape& in) const {
  require(in.size() == 4, "MaxPool2d: expected [N,C,H,W]");
  require(in[2] >= window_ && in[3] >= window_,
          "MaxPool2d: input smaller than window");
  return {in[0], in[1], in[2] / window_, in[3] / window_};
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  const Shape out_shape = output_shape(x.shape());
  const std::size_t batch = x.dim(0), ch = x.dim(1), in_h = x.dim(2),
                    in_w = x.dim(3);
  const std::size_t out_h = out_shape[2], out_w = out_shape[3];
  Tensor out(out_shape);
  if (train) {
    argmax_.assign(out.numel(), 0);
    cached_in_shape_ = x.shape();
  }
  std::size_t oi = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.data() + (n * ch + c) * in_h * in_w;
      for (std::size_t oh = 0; oh < out_h; ++oh) {
        for (std::size_t ow = 0; ow < out_w; ++ow, ++oi) {
          float best = plane[(oh * window_) * in_w + ow * window_];
          std::size_t best_idx = (oh * window_) * in_w + ow * window_;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const std::size_t idx =
                  (oh * window_ + dy) * in_w + (ow * window_ + dx);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oi] = best;
          if (train) {
            argmax_[oi] = (n * ch + c) * in_h * in_w + best_idx;
          }
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  require(!argmax_.empty(),
          "MaxPool2d::backward called without forward(train=true)");
  require(grad_out.numel() == argmax_.size(),
          "MaxPool2d::backward: grad size mismatch");
  Tensor grad_in(cached_in_shape_);
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(" + std::to_string(window_) + ")";
}

Shape GlobalAvgPool::output_shape(const Shape& in) const {
  require(in.size() == 4, "GlobalAvgPool: expected [N,C,H,W]");
  return {in[0], in[1], 1, 1};
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  const Shape out_shape = output_shape(x.shape());
  const std::size_t batch = x.dim(0), ch = x.dim(1);
  const std::size_t hw = x.dim(2) * x.dim(3);
  Tensor out(out_shape);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.data() + (n * ch + c) * hw;
      double acc = 0.0;
      for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
      out[n * ch + c] = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
  if (train) cached_in_shape_ = x.shape();
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  require(!cached_in_shape_.empty(),
          "GlobalAvgPool::backward called without forward(train=true)");
  const std::size_t batch = cached_in_shape_[0], ch = cached_in_shape_[1];
  const std::size_t hw = cached_in_shape_[2] * cached_in_shape_[3];
  require(grad_out.numel() == batch * ch,
          "GlobalAvgPool::backward: grad size mismatch");
  Tensor grad_in(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float g = grad_out[n * ch + c] * inv;
      float* plane = grad_in.data() + (n * ch + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_in;
}

Shape Flatten::output_shape(const Shape& in) const {
  require(!in.empty(), "Flatten: empty shape");
  std::size_t features = 1;
  for (std::size_t i = 1; i < in.size(); ++i) features *= in[i];
  return {in[0], features};
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  if (train) cached_in_shape_ = x.shape();
  return x.reshaped(output_shape(x.shape()));
}

Tensor Flatten::backward(const Tensor& grad_out) {
  require(!cached_in_shape_.empty(),
          "Flatten::backward called without forward(train=true)");
  return grad_out.reshaped(cached_in_shape_);
}

}  // namespace safelight::nn
