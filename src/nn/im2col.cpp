#include "nn/im2col.hpp"

namespace safelight::nn {

void im2col(const float* image, const ConvGeom& g, float* columns) {
  const std::size_t out_h = g.out_h();
  const std::size_t out_w = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_c; ++c) {
    for (std::size_t kh = 0; kh < g.k_h; ++kh) {
      for (std::size_t kw = 0; kw < g.k_w; ++kw, ++row) {
        float* out_row = columns + row * out_h * out_w;
        for (std::size_t oh = 0; oh < out_h; ++oh) {
          // ih/iw computed in signed space because padding can go negative.
          const long ih = static_cast<long>(oh * g.stride + kh) -
                          static_cast<long>(g.pad);
          const bool row_ok =
              ih >= 0 && ih < static_cast<long>(g.in_h);
          for (std::size_t ow = 0; ow < out_w; ++ow) {
            const long iw = static_cast<long>(ow * g.stride + kw) -
                            static_cast<long>(g.pad);
            const bool ok = row_ok && iw >= 0 && iw < static_cast<long>(g.in_w);
            out_row[oh * out_w + ow] =
                ok ? image[(c * g.in_h + static_cast<std::size_t>(ih)) * g.in_w +
                           static_cast<std::size_t>(iw)]
                   : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, const ConvGeom& g, float* image) {
  const std::size_t out_h = g.out_h();
  const std::size_t out_w = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_c; ++c) {
    for (std::size_t kh = 0; kh < g.k_h; ++kh) {
      for (std::size_t kw = 0; kw < g.k_w; ++kw, ++row) {
        const float* in_row = columns + row * out_h * out_w;
        for (std::size_t oh = 0; oh < out_h; ++oh) {
          const long ih = static_cast<long>(oh * g.stride + kh) -
                          static_cast<long>(g.pad);
          if (ih < 0 || ih >= static_cast<long>(g.in_h)) continue;
          for (std::size_t ow = 0; ow < out_w; ++ow) {
            const long iw = static_cast<long>(ow * g.stride + kw) -
                            static_cast<long>(g.pad);
            if (iw < 0 || iw >= static_cast<long>(g.in_w)) continue;
            image[(c * g.in_h + static_cast<std::size_t>(ih)) * g.in_w +
                  static_cast<std::size_t>(iw)] += in_row[oh * out_w + ow];
          }
        }
      }
    }
  }
}

}  // namespace safelight::nn
