#include "dist/protocol.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/json.hpp"

namespace safelight::dist {

namespace {

/// %.17g: enough significant digits that strtod returns the identical
/// double, making the scenario id (and thus the store key) reproduce
/// exactly on the worker side.
std::string fraction_to_wire(double fraction) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", fraction);
  return buf;
}

double fraction_from_wire(const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  require(end != begin && *end == '\0',
          "dist protocol: malformed fraction '" + text + "'");
  return value;
}

const char* event_type_name(EventMessage::Type type) {
  switch (type) {
    case EventMessage::Type::kHello: return "hello";
    case EventMessage::Type::kHeartbeat: return "heartbeat";
    case EventMessage::Type::kDone: return "done";
    case EventMessage::Type::kFatal: break;
  }
  return "fatal";
}

}  // namespace

std::string encode_task(const TaskMessage& task) {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("type").value("task");
  json.key("id").value(task.id);
  json.key("model").value(task.model);
  json.key("scale").value(task.scale);
  json.key("variant").value(task.variant);
  json.key("l2").value(fraction_to_wire(task.l2_strength));
  json.key("store_stem").value(task.store_stem);
  json.key("fingerprint").value(task.fingerprint);
  json.key("baseline").value(task.baseline);
  json.key("scenarios").begin_array();
  for (const auto& scenario : task.scenarios) {
    json.begin_object();
    json.key("vector").value(attack::to_string(scenario.vector));
    json.key("target").value(attack::to_string(scenario.target));
    json.key("fraction").value(fraction_to_wire(scenario.fraction));
    json.key("seed").value(static_cast<std::uint64_t>(scenario.seed));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

std::string encode_shutdown() {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("type").value("shutdown");
  json.end_object();
  return std::move(json).str();
}

bool is_shutdown(const std::string& line) {
  return JsonValue::parse(line).at("type").as_string() == "shutdown";
}

TaskMessage decode_task(const std::string& line) {
  const JsonValue doc = JsonValue::parse(line);
  require(doc.at("type").as_string() == "task",
          "dist protocol: expected a task message (got type '" +
              doc.at("type").as_string() + "')");
  TaskMessage task;
  task.id = doc.at("id").as_uint();
  task.model = doc.at("model").as_string();
  task.scale = doc.at("scale").as_string();
  task.variant = doc.at("variant").as_string();
  task.l2_strength = fraction_from_wire(doc.at("l2").as_string());
  task.store_stem = doc.at("store_stem").as_string();
  task.fingerprint = doc.at("fingerprint").as_string();
  task.baseline = doc.at("baseline").as_bool();
  for (const JsonValue& entry : doc.at("scenarios").as_array()) {
    attack::AttackScenario scenario;
    scenario.vector =
        attack::vector_from_string(entry.at("vector").as_string());
    scenario.target =
        attack::target_from_string(entry.at("target").as_string());
    scenario.fraction = fraction_from_wire(entry.at("fraction").as_string());
    scenario.seed = entry.at("seed").as_uint();
    scenario.validate();
    task.scenarios.push_back(scenario);
  }
  return task;
}

std::string encode_event(const EventMessage& event) {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("type").value(event_type_name(event.type));
  switch (event.type) {
    case EventMessage::Type::kHello:
      json.key("pid").value(event.pid);
      break;
    case EventMessage::Type::kHeartbeat:
      break;
    case EventMessage::Type::kDone:
      json.key("id").value(event.task_id);
      json.key("evaluated").value(event.evaluated);
      json.key("cached").value(event.cached);
      break;
    case EventMessage::Type::kFatal:
      json.key("id").value(event.task_id);
      json.key("message").value(event.message);
      break;
  }
  json.end_object();
  return std::move(json).str();
}

EventMessage decode_event(const std::string& line) {
  const JsonValue doc = JsonValue::parse(line);
  const std::string& type = doc.at("type").as_string();
  EventMessage event;
  if (type == "hello") {
    event.type = EventMessage::Type::kHello;
    event.pid = doc.at("pid").as_uint();
  } else if (type == "heartbeat") {
    event.type = EventMessage::Type::kHeartbeat;
  } else if (type == "done") {
    event.type = EventMessage::Type::kDone;
    event.task_id = doc.at("id").as_uint();
    event.evaluated = doc.at("evaluated").as_uint();
    event.cached = doc.at("cached").as_uint();
  } else if (type == "fatal") {
    event.type = EventMessage::Type::kFatal;
    event.task_id = doc.at("id").as_uint();
    event.message = doc.at("message").as_string();
  } else {
    fail_argument("dist protocol: unknown event type '" + type + "'");
  }
  return event;
}

}  // namespace safelight::dist
