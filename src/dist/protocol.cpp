#include "dist/protocol.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/json.hpp"

namespace safelight::dist {

namespace {

/// %.17g: enough significant digits that strtod returns the identical
/// double — scenario fractions reproduce the store key bit for bit, and
/// telemetry values (span args, metric sums) survive the pipe unchanged.
std::string double_to_wire(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

double double_from_wire(const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  require(end != begin && *end == '\0',
          "dist protocol: malformed number '" + text + "'");
  return value;
}

const char* event_type_name(EventMessage::Type type) {
  switch (type) {
    case EventMessage::Type::kHello: return "hello";
    case EventMessage::Type::kHeartbeat: return "heartbeat";
    case EventMessage::Type::kDone: return "done";
    case EventMessage::Type::kTrace: return "trace";
    case EventMessage::Type::kMetrics: return "metrics";
    case EventMessage::Type::kFatal: break;
  }
  return "fatal";
}

void encode_span(JsonWriter& json, const trace::RawEvent& span) {
  json.begin_object();
  json.key("name").value(span.name);
  json.key("cat").value(span.cat);
  json.key("start_ns").value(static_cast<std::uint64_t>(span.start_ns));
  json.key("dur_ns").value(static_cast<std::uint64_t>(span.dur_ns));
  json.key("tid").value(static_cast<std::uint64_t>(span.tid));
  json.key("num").begin_object();
  for (const auto& [key, value] : span.num_args) {
    json.key(key).value(double_to_wire(value));
  }
  json.end_object();
  json.key("str").begin_object();
  for (const auto& [key, value] : span.str_args) {
    json.key(key).value(value);
  }
  json.end_object();
  json.end_object();
}

trace::RawEvent decode_span(const JsonValue& doc) {
  trace::RawEvent span;
  span.name = doc.at("name").as_string();
  span.cat = doc.at("cat").as_string();
  span.start_ns = doc.at("start_ns").as_uint();
  span.dur_ns = doc.at("dur_ns").as_uint();
  span.tid = static_cast<std::uint32_t>(doc.at("tid").as_uint());
  for (const auto& [key, value] : doc.at("num").as_object()) {
    span.num_args.emplace_back(key, double_from_wire(value.as_string()));
  }
  for (const auto& [key, value] : doc.at("str").as_object()) {
    span.str_args.emplace_back(key, value.as_string());
  }
  return span;
}

void encode_metrics(JsonWriter& json, const metrics::Snapshot& snapshot) {
  json.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters) {
    json.key(name).value(value);
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : snapshot.gauges) {
    json.key(name).value(double_to_wire(value));
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, histogram] : snapshot.histograms) {
    json.key(name).begin_object();
    json.key("count").value(histogram.count);
    json.key("sum").value(double_to_wire(histogram.sum));
    json.key("min").value(double_to_wire(histogram.min));
    json.key("max").value(double_to_wire(histogram.max));
    // Sparse buckets keyed by index: this is what makes the snapshot
    // mergeable on the coordinator (bucket counts just add).
    json.key("buckets").begin_object();
    for (const auto& [index, count] : histogram.buckets) {
      json.key(std::to_string(index)).value(count);
    }
    json.end_object();
    json.end_object();
  }
  json.end_object();
}

metrics::Snapshot decode_metrics(const JsonValue& doc) {
  metrics::Snapshot snapshot;
  for (const auto& [name, value] : doc.at("counters").as_object()) {
    snapshot.counters.emplace(name, value.as_uint());
  }
  for (const auto& [name, value] : doc.at("gauges").as_object()) {
    snapshot.gauges.emplace(name, double_from_wire(value.as_string()));
  }
  for (const auto& [name, entry] : doc.at("histograms").as_object()) {
    metrics::HistogramSnapshot histogram;
    histogram.count = entry.at("count").as_uint();
    histogram.sum = double_from_wire(entry.at("sum").as_string());
    histogram.min = double_from_wire(entry.at("min").as_string());
    histogram.max = double_from_wire(entry.at("max").as_string());
    for (const auto& [index, count] : entry.at("buckets").as_object()) {
      char* end = nullptr;
      const long bucket = std::strtol(index.c_str(), &end, 10);
      require(end != index.c_str() && *end == '\0' && bucket >= 0 &&
                  bucket < metrics::kTotalBuckets,
              "dist protocol: malformed histogram bucket '" + index + "'");
      histogram.buckets.emplace(static_cast<int>(bucket), count.as_uint());
    }
    snapshot.histograms.emplace(name, std::move(histogram));
  }
  return snapshot;
}

}  // namespace

std::string encode_task(const TaskMessage& task) {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("type").value("task");
  json.key("id").value(task.id);
  json.key("model").value(task.model);
  json.key("scale").value(task.scale);
  json.key("variant").value(task.variant);
  json.key("l2").value(double_to_wire(task.l2_strength));
  json.key("store_stem").value(task.store_stem);
  json.key("fingerprint").value(task.fingerprint);
  json.key("baseline").value(task.baseline);
  json.key("scenarios").begin_array();
  for (const auto& scenario : task.scenarios) {
    json.begin_object();
    json.key("vector").value(attack::to_string(scenario.vector));
    json.key("target").value(attack::to_string(scenario.target));
    json.key("fraction").value(double_to_wire(scenario.fraction));
    json.key("seed").value(static_cast<std::uint64_t>(scenario.seed));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

std::string encode_shutdown() {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("type").value("shutdown");
  json.end_object();
  return std::move(json).str();
}

bool is_shutdown(const std::string& line) {
  return JsonValue::parse(line).at("type").as_string() == "shutdown";
}

TaskMessage decode_task(const std::string& line) {
  const JsonValue doc = JsonValue::parse(line);
  require(doc.at("type").as_string() == "task",
          "dist protocol: expected a task message (got type '" +
              doc.at("type").as_string() + "')");
  TaskMessage task;
  task.id = doc.at("id").as_uint();
  task.model = doc.at("model").as_string();
  task.scale = doc.at("scale").as_string();
  task.variant = doc.at("variant").as_string();
  task.l2_strength = double_from_wire(doc.at("l2").as_string());
  task.store_stem = doc.at("store_stem").as_string();
  task.fingerprint = doc.at("fingerprint").as_string();
  task.baseline = doc.at("baseline").as_bool();
  for (const JsonValue& entry : doc.at("scenarios").as_array()) {
    attack::AttackScenario scenario;
    scenario.vector =
        attack::vector_from_string(entry.at("vector").as_string());
    scenario.target =
        attack::target_from_string(entry.at("target").as_string());
    scenario.fraction = double_from_wire(entry.at("fraction").as_string());
    scenario.seed = entry.at("seed").as_uint();
    scenario.validate();
    task.scenarios.push_back(scenario);
  }
  return task;
}

std::string encode_event(const EventMessage& event) {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("type").value(event_type_name(event.type));
  switch (event.type) {
    case EventMessage::Type::kHello:
      json.key("pid").value(event.pid);
      json.key("backend").value(event.backend);
      json.key("kernel").value(event.kernel);
      break;
    case EventMessage::Type::kHeartbeat:
      break;
    case EventMessage::Type::kDone:
      json.key("id").value(event.task_id);
      json.key("evaluated").value(event.evaluated);
      json.key("cached").value(event.cached);
      break;
    case EventMessage::Type::kFatal:
      json.key("id").value(event.task_id);
      json.key("message").value(event.message);
      break;
    case EventMessage::Type::kTrace:
      json.key("spans").begin_array();
      for (const trace::RawEvent& span : event.spans) {
        encode_span(json, span);
      }
      json.end_array();
      break;
    case EventMessage::Type::kMetrics:
      encode_metrics(json, event.metrics);
      break;
  }
  json.end_object();
  return std::move(json).str();
}

EventMessage decode_event(const std::string& line) {
  const JsonValue doc = JsonValue::parse(line);
  const std::string& type = doc.at("type").as_string();
  EventMessage event;
  if (type == "hello") {
    event.type = EventMessage::Type::kHello;
    event.pid = doc.at("pid").as_uint();
    // Lenient on purpose (see EventMessage): a hello without these fields
    // decodes with them empty so the coordinator can reject the stale
    // binary with a mismatch error that names the fix.
    if (doc.has("backend")) event.backend = doc.at("backend").as_string();
    if (doc.has("kernel")) event.kernel = doc.at("kernel").as_string();
  } else if (type == "heartbeat") {
    event.type = EventMessage::Type::kHeartbeat;
  } else if (type == "done") {
    event.type = EventMessage::Type::kDone;
    event.task_id = doc.at("id").as_uint();
    event.evaluated = doc.at("evaluated").as_uint();
    event.cached = doc.at("cached").as_uint();
  } else if (type == "fatal") {
    event.type = EventMessage::Type::kFatal;
    event.task_id = doc.at("id").as_uint();
    event.message = doc.at("message").as_string();
  } else if (type == "trace") {
    event.type = EventMessage::Type::kTrace;
    for (const JsonValue& entry : doc.at("spans").as_array()) {
      event.spans.push_back(decode_span(entry));
    }
  } else if (type == "metrics") {
    event.type = EventMessage::Type::kMetrics;
    event.metrics = decode_metrics(doc);
  } else {
    fail_argument("dist protocol: unknown event type '" + type + "'");
  }
  return event;
}

}  // namespace safelight::dist
