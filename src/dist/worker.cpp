#include "dist/worker.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "attacks/corruption.hpp"
#include "common/config.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/result_store.hpp"
#include "core/variants.hpp"
#include "core/zoo.hpp"
#include "dist/protocol.hpp"
#include "nn/backend.hpp"
#include "nn/models.hpp"

namespace safelight::dist {

namespace {

/// Serializes event lines onto the protocol fd: the heartbeat thread and
/// the task loop share it, and an interleaved half-line would corrupt the
/// stream. Write failures are swallowed — a dead coordinator (EPIPE) is
/// detected by the task loop's EOF, not here.
class ProtocolWriter {
 public:
  explicit ProtocolWriter(int fd) : fd_(fd) {}

  void send(const EventMessage& event) {
    const std::string line = encode_event(event);
    std::lock_guard<std::mutex> guard(mutex_);
    const char* data = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
  std::mutex mutex_;
};

/// Emits {"type":"heartbeat"} every interval until destroyed. SIGSTOP (the
/// hang seam) freezes this thread with the rest of the process, which is
/// precisely what lets the coordinator's timeout fire.
class HeartbeatThread {
 public:
  HeartbeatThread(ProtocolWriter& writer, double interval_s)
      : writer_(writer),
        interval_(interval_s),
        thread_([this] { run(); }) {}

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      lock.unlock();
      if (trace::armed()) {
        // Instant marker on this worker's track: the merged fleet trace
        // shows exactly when each worker last proved liveness.
        trace::RawEvent event;
        event.name = "dist.heartbeat";
        event.cat = "dist";
        event.start_ns = trace::now_ns();
        trace::record(std::move(event));
      }
      EventMessage beat;
      beat.type = EventMessage::Type::kHeartbeat;
      writer_.send(beat);
      lock.lock();
    }
  }

  ProtocolWriter& writer_;
  std::chrono::duration<double> interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Blocking '\n'-delimited reader over the protocol-in fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next complete line (terminator stripped), or nullopt on EOF. A
  /// trailing fragment with no terminator is discarded: a coordinator that
  /// died mid-write never finished that command.
  std::optional<std::string> next_line() {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (n == 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Everything the worker keeps alive per store stem: the trained model, the
/// evaluator conditioned from it, and this worker's own store file. Tasks
/// of one variant arrive in chunks; caching the deployment across them is
/// what makes small chunk sizes affordable.
struct StemState {
  std::unique_ptr<nn::Sequential> model;
  std::unique_ptr<core::AttackEvaluator> evaluator;
  std::unique_ptr<core::ResultStore> store;
};

/// Chaos/fault seams, read once from the environment (see worker.hpp).
struct Seams {
  std::string poison;     // SAFELIGHT_DIST_POISON
  std::string hang;       // SAFELIGHT_DIST_HANG
  std::string hang_once;  // SAFELIGHT_DIST_HANG_ONCE sentinel path
};

Seams read_seams() {
  Seams seams;
  if (const char* value = std::getenv("SAFELIGHT_DIST_POISON")) {
    seams.poison = value;
  }
  if (const char* value = std::getenv("SAFELIGHT_DIST_HANG")) {
    seams.hang = value;
  }
  if (const char* value = std::getenv("SAFELIGHT_DIST_HANG_ONCE")) {
    seams.hang_once = value;
  }
  return seams;
}

void apply_seams(const Seams& seams, const std::string& scenario_id) {
  if (!seams.poison.empty() &&
      scenario_id.find(seams.poison) != std::string::npos) {
    std::_Exit(41);  // deterministic poison: fails identically on retry
  }
  if (!seams.hang.empty() &&
      scenario_id.find(seams.hang) != std::string::npos) {
    bool should_hang = true;
    if (!seams.hang_once.empty()) {
      // Only the first process to create the sentinel hangs, so the
      // reassigned task completes on the replacement worker.
      const int fd =
          ::open(seams.hang_once.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
      if (fd >= 0) {
        ::close(fd);
      } else {
        should_hang = false;
      }
    }
    if (should_hang) ::raise(SIGSTOP);  // silences the heartbeat thread too
  }
}

StemState& state_for(std::map<std::string, StemState>& stems,
                     core::ModelZoo& zoo, const std::string& store_dir,
                     const TaskMessage& task) {
  auto it = stems.find(task.store_stem);
  if (it != stems.end()) return it->second;

  const core::ExperimentSetup setup = core::experiment_setup(
      nn::model_id_from_string(task.model), config::parse_scale(task.scale));
  const core::VariantSpec variant = core::variant_by_name(
      task.variant, static_cast<float>(task.l2_strength));

  StemState state;
  // The coordinator trains every referenced zoo entry before dispatching,
  // so this is a cache load; training here anyway (e.g. after a corrupted
  // entry) is correct, just slow.
  state.model = zoo.get_or_train(setup, variant, /*verbose=*/false);
  state.evaluator = std::make_unique<core::AttackEvaluator>(
      setup, *state.model, variant.name, /*cache_dir=*/"",
      attack::CorruptionConfig{});
  state.store = std::make_unique<core::ResultStore>(
      store_dir + "/" + task.store_stem + ".sweep.csv");
  return stems.emplace(task.store_stem, std::move(state)).first->second;
}

void run_task(const TaskMessage& task, StemState& state, const Seams& seams,
              const std::atomic<bool>* cancel, EventMessage& done) {
  // Refuse physics the coordinator and this binary disagree on: a silently
  // different corruption model would cache wrong accuracies under keys the
  // assembly run trusts.
  const std::string local_fingerprint =
      attack::config_fingerprint(attack::CorruptionConfig{});
  if (task.fingerprint != local_fingerprint) {
    throw std::runtime_error(
        "worker: corruption fingerprint mismatch (task " + task.fingerprint +
        " vs local " + local_fingerprint +
        "); coordinator and worker binaries disagree on attack physics");
  }

  const std::size_t eval_count = state.evaluator->setup().eval_count;
  if (task.baseline) {
    const std::string key = core::baseline_store_key(eval_count);
    if (state.store->contains(key)) {
      ++done.cached;
    } else {
      state.store->put(key, state.evaluator->baseline_accuracy());
      ++done.evaluated;
    }
  }
  for (const auto& scenario : task.scenarios) {
    if (cancel != nullptr && cancel->load()) {
      throw core::ExperimentCancelled("worker");
    }
    const std::string key = core::scenario_store_key(scenario, eval_count);
    if (state.store->contains(key)) {
      ++done.cached;
      continue;
    }
    apply_seams(seams, scenario.id());
    state.store->put(key, state.evaluator->evaluate_scenario(scenario));
    ++done.evaluated;
  }
}

/// Ships every span buffered since the last call. Sent after each task
/// (so a later crash loses at most one task's spans) and at shutdown.
void ship_trace(ProtocolWriter& writer) {
  if (!trace::armed()) return;
  EventMessage event;
  event.type = EventMessage::Type::kTrace;
  event.spans = trace::drain();
  if (!event.spans.empty()) writer.send(event);
}

}  // namespace

int run_worker(const WorkerOptions& options) {
  ProtocolWriter writer(options.protocol_out);
  EventMessage hello;
  hello.type = EventMessage::Type::kHello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  // Handshake payload: which variant this worker dispatches to, and the
  // digest of its kernel numerics. The coordinator rejects a mismatched
  // digest before any task is assigned (a SAFELIGHT_DIST_BIN binary with
  // different math must not contribute store rows).
  hello.backend = nn::backend::active().name();
  hello.kernel = nn::backend::kernel_fingerprint();
  if (const char* fake = std::getenv("SAFELIGHT_DIST_FAKE_KERNEL")) {
    // Test seam: advertise a bogus fingerprint so dist_test can prove the
    // coordinator's rejection path without building a second binary.
    if (fake[0] != '\0') hello.kernel = fake;
  }
  writer.send(hello);

  HeartbeatThread heartbeat(writer, options.heartbeat_interval_s);
  std::filesystem::create_directories(options.store_dir);
  core::ModelZoo zoo(options.zoo_dir);
  const Seams seams = read_seams();
  std::map<std::string, StemState> stems;

  LineReader reader(options.protocol_in);
  while (auto line = reader.next_line()) {
    if (line->empty()) continue;
    if (is_shutdown(*line)) break;
    const TaskMessage task = decode_task(*line);
    EventMessage done;
    done.type = EventMessage::Type::kDone;
    done.task_id = task.id;
    try {
      StemState& state =
          state_for(stems, zoo, options.store_dir, task);
      {
        trace::Span task_span("dist", "worker.task");
        task_span.arg("task", static_cast<double>(task.id));
        run_task(task, state, seams, options.cancel, done);
        task_span.arg("evaluated", static_cast<double>(done.evaluated))
            .arg("cached", static_cast<double>(done.cached));
      }
      writer.send(done);
    } catch (const core::ExperimentCancelled&) {
      throw;  // CLI maps this to exit 130 like the in-process path
    } catch (const std::exception& error) {
      EventMessage fatal;
      fatal.type = EventMessage::Type::kFatal;
      fatal.task_id = task.id;
      fatal.message = error.what();
      writer.send(fatal);
    }
    ship_trace(writer);
  }
  // Final telemetry, after the shutdown command: the trailing span buffer
  // (heartbeats since the last task) and one metrics snapshot — counters
  // and histogram buckets merge additively on the coordinator, so exactly
  // one snapshot per worker lifetime keeps the fleet totals honest.
  ship_trace(writer);
  if (metrics::armed()) {
    EventMessage event;
    event.type = EventMessage::Type::kMetrics;
    event.metrics = metrics::snapshot();
    writer.send(event);
  }
  return 0;
}

}  // namespace safelight::dist
