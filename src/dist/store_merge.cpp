#include "dist/store_merge.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "common/fault.hpp"
#include "core/result_store.hpp"

namespace safelight::dist {

namespace {

/// Truncates `path` back to its last complete line, exactly like
/// ResultStore's open-time repair: a coordinator killed mid-merge leaves a
/// torn row that the next merge must not extend into a corrupt one.
void truncate_torn_tail(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  in.close();
  const std::size_t last_newline = content.rfind('\n');
  const std::size_t keep =
      last_newline == std::string::npos ? 0 : last_newline + 1;
  if (keep != content.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, keep, ec);
  }
}

}  // namespace

MergeStats merge_stores(const std::vector<std::string>& source_csvs,
                        const std::string& dest_csv) {
  MergeStats stats;
  // Exclusive writer for the whole merge: a concurrent sweep appending to
  // the canonical store mid-merge would interleave rows unpredictably.
  core::StoreWriterLock lock(dest_csv);
  truncate_torn_tail(dest_csv);

  // key -> value bytes already durable in the destination (or appended
  // earlier in this merge) — the conflict/dedup baseline.
  std::unordered_map<std::string, std::string> merged;
  for (auto& entry : core::read_store_entries(dest_csv)) {
    merged.emplace(std::move(entry.key), std::move(entry.value));
  }

  std::ofstream out;  // opened lazily: a no-op merge must not create files
  for (const std::string& source : source_csvs) {
    if (!std::filesystem::exists(source)) continue;
    ++stats.sources;
    for (auto& entry : core::read_store_entries(source)) {
      const auto it = merged.find(entry.key);
      if (it != merged.end()) {
        if (it->second != entry.value) {
          throw std::runtime_error(
              "safelight: store merge conflict on key '" + entry.key +
              "': '" + dest_csv + "' has value " + it->second + " but '" +
              source + "' has value " + entry.value +
              " (evaluation must be deterministic; refusing to poison the "
              "canonical store)");
        }
        ++stats.duplicates;
        continue;
      }
      if (!out.is_open()) {
        const bool fresh = !std::filesystem::exists(dest_csv) ||
                           std::filesystem::file_size(dest_csv) == 0;
        out.open(dest_csv, std::ios::app | std::ios::binary);
        if (fresh && out) out << "key,accuracy\n";
      }
      out << entry.key << ',' << entry.value << '\n';
      out.flush();
      fault::ptp("store.merge.append");  // crash: this row durable, rest not
      merged.emplace(std::move(entry.key), std::move(entry.value));
      ++stats.appended;
    }
  }
  return stats;
}

}  // namespace safelight::dist
