#include "dist/plan.hpp"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

#include "attacks/corruption.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "core/result_store.hpp"

namespace safelight::dist {

namespace {

/// Keys already durable in the canonical store of `stem_path` (read-only:
/// the planner must not lock or truncate a store the assembly run will
/// open later).
std::unordered_set<std::string> cached_keys(const std::string& stem_path) {
  std::unordered_set<std::string> keys;
  for (auto& entry : core::read_store_entries(stem_path + ".sweep.csv")) {
    keys.insert(std::move(entry.key));
  }
  return keys;
}

}  // namespace

DistPlanner::DistPlanner(std::string experiment, core::ExperimentSpec spec)
    : experiment_(std::move(experiment)), spec_(std::move(spec)) {
  require(shardable(experiment_),
          "DistPlanner: experiment '" + experiment_ + "' is not shardable");
  require(!spec_.cache_dir.empty(),
          "DistPlanner: spec.cache_dir must be set (distribution works by "
          "warming the persistent result stores)");
}

bool DistPlanner::shardable(const std::string& experiment) {
  return experiment == "susceptibility" || experiment == "mitigation" ||
         experiment == "robust_compare";
}

std::vector<TaskMessage> DistPlanner::plan_sweeps(
    core::ModelZoo& zoo, const core::ExperimentSpec& spec,
    const std::vector<core::VariantSpec>& variants,
    const std::vector<attack::AttackScenario>& grid,
    const PlanOptions& options) {
  const core::ExperimentSetup setup = spec.resolved_setup();
  const std::string fingerprint = attack::config_fingerprint(spec.corruption);

  struct VariantWork {
    const core::VariantSpec* variant;
    std::string stem;  // file stem, no directory
    bool baseline = false;
    std::vector<attack::AttackScenario> pending;
  };
  std::vector<VariantWork> work;
  std::size_t total_pending = 0;
  for (const auto& variant : variants) {
    // Train (or load) here, in the coordinator: workers racing to train one
    // zoo entry would duplicate minutes of work per collision.
    auto model = zoo.get_or_train(setup, variant, spec.verbose);
    const std::string stem_path =
        core::sweep_store_stem(spec.cache_dir, setup, variant.name,
                               core::weights_checksum(*model),
                               spec.corruption);
    const auto cached = cached_keys(stem_path);

    VariantWork vw;
    vw.variant = &variant;
    vw.stem = std::filesystem::path(stem_path).filename().string();
    vw.baseline =
        cached.count(core::baseline_store_key(setup.eval_count)) == 0;
    std::unordered_set<std::string> fresh;
    for (const auto& scenario : grid) {
      scenario.validate();
      const std::string key =
          core::scenario_store_key(scenario, setup.eval_count);
      if (cached.count(key) == 0 && fresh.insert(key).second) {
        vw.pending.push_back(scenario);
      }
    }
    total_pending += vw.pending.size() + (vw.baseline ? 1 : 0);
    if (vw.baseline || !vw.pending.empty()) work.push_back(std::move(vw));
  }

  std::size_t chunk = options.chunk_size;
  if (chunk == 0) {
    const std::size_t workers = std::max<std::size_t>(options.workers, 1);
    chunk = std::clamp<std::size_t>(total_pending / (workers * 4), 1, 32);
  }

  std::vector<TaskMessage> tasks;
  for (const auto& vw : work) {
    bool first = true;
    for (std::size_t begin = 0;
         begin < vw.pending.size() || (first && vw.baseline);
         begin += chunk) {
      TaskMessage task;
      task.id = next_task_id_++;
      task.model = nn::to_string(setup.model);
      task.scale = to_string(setup.scale);
      task.variant = vw.variant->name;
      task.l2_strength = spec.l2_strength;
      task.store_stem = vw.stem;
      task.fingerprint = fingerprint;
      task.baseline = first && vw.baseline;  // ride on the first chunk
      const std::size_t end = std::min(begin + chunk, vw.pending.size());
      task.scenarios.assign(vw.pending.begin() + begin,
                            vw.pending.begin() + end);
      tasks.push_back(std::move(task));
      first = false;
    }
  }
  return tasks;
}

std::optional<std::vector<TaskMessage>> DistPlanner::next_round(
    core::ModelZoo& zoo, const PlanOptions& options) {
  if (experiment_ == "susceptibility") {
    if (stage_++ > 0) return std::nullopt;
    return plan_sweeps(
        zoo, spec_, {core::variant_by_name("Original")},
        attack::paper_scenario_grid(spec_.seed_count, spec_.base_seed),
        options);
  }
  if (experiment_ == "mitigation") {
    if (stage_++ > 0) return std::nullopt;
    return plan_sweeps(
        zoo, spec_, core::paper_variants(spec_.l2_strength),
        attack::paper_scenario_grid(spec_.seed_count, spec_.base_seed),
        options);
  }
  // robust_compare: round 1 warms the mitigation selection sweep, round 2
  // (after the selection ran against the merged cache) warms the
  // Original-vs-robust comparison grid.
  if (stage_ == 0) {
    stage_ = 1;
    if (spec_.robust_variant.empty()) {
      const core::ExperimentSpec selection =
          core::robust_compare_selection_spec(spec_);
      return plan_sweeps(
          zoo, selection, core::paper_variants(selection.l2_strength),
          attack::paper_scenario_grid(selection.seed_count,
                                      selection.base_seed),
          options);
    }
    // Pinned robust variant: no selection round needed; fall through to the
    // comparison round immediately.
  }
  if (stage_ == 1) {
    stage_ = 2;
    std::string robust_name = spec_.robust_variant;
    if (robust_name.empty()) {
      // Every selection cell is cached now, so this is assembly-only work.
      core::RunContext context(zoo);
      robust_name = core::ExperimentRegistry::global()
                        .run(core::robust_compare_selection_spec(spec_),
                             context)
                        .as<core::MitigationReport>()
                        .best_robust()
                        .variant.name;
    }
    return plan_sweeps(
        zoo, spec_,
        {core::variant_by_name("Original"),
         core::variant_by_name(robust_name, spec_.l2_strength)},
        core::robust_compare_grid(spec_), options);
  }
  return std::nullopt;
}

}  // namespace safelight::dist
