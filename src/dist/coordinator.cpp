#include "dist/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/zoo.hpp"
#include "common/config.hpp"
#include "dist/plan.hpp"
#include "dist/protocol.hpp"
#include "dist/store_merge.hpp"
#include "nn/backend.hpp"

extern char** environ;

namespace safelight::dist {

namespace {

// Alias of the header-pinned steady clock (see coordinator.hpp): all
// silence/backoff/deadline arithmetic below goes through this one name.
using Clock = CoordinatorClock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// SIGPIPE -> SIG_IGN for the coordinator's lifetime: writing a task to a
/// worker that just died must surface as EPIPE (handled, task requeued),
/// not kill the coordinator.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &previous_);
  }
  ~SigpipeGuard() { ::sigaction(SIGPIPE, &previous_, nullptr); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  struct sigaction previous_ {};
};

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == fault::kPlugPulledExitCode) {
      return "plug pulled (injected crash, exit 42)";
    }
    return "exited with code " + std::to_string(code);
  }
  if (WIFSIGNALED(status)) {
    return std::string("killed by signal ") + std::to_string(WTERMSIG(status));
  }
  return "ended with status " + std::to_string(status);
}

struct WorkerSlot {
  int slot = 0;
  int generation = 0;  // bumped per (re)spawn; feeds the chaos seed
  pid_t pid = -1;
  int task_fd = -1;   // write end: coordinator -> worker stdin
  int event_fd = -1;  // read end:  worker stdout -> coordinator
  bool alive = false;
  bool idle = false;
  std::optional<std::uint64_t> current_task;
  std::string buffer;  // partial protocol line
  Clock::time_point last_heard{};
};

struct TaskState {
  TaskMessage task;
  std::size_t failures = 0;
  std::string last_error;
  Clock::time_point eligible_at{};  // backoff gate for re-dispatch
  std::size_t assigned = 0;         // live workers running this task
  bool speculated = false;          // one work-stealing duplicate max
  bool completed = false;
  bool quarantined = false;
  // Trace bookkeeping: the dispatch->done "dist.task" span crosses event-
  // loop iterations, so its start is parked here (trace-armed runs only).
  std::uint64_t dispatch_ns = 0;
  int dispatch_slot = -1;
};

class Coordinator {
 public:
  Coordinator(std::string experiment, const core::ExperimentSpec& spec,
              core::ModelZoo& zoo, const DistOptions& options,
              DistSummary& summary)
      : experiment_(std::move(experiment)),
        spec_(spec),
        zoo_(zoo),
        options_(options),
        summary_(summary),
        planner_(experiment_, spec) {
    require(options_.workers >= 1, "run_distributed: workers must be >= 1");
    // The fingerprint every worker hello must match: identical across
    // hosts and backend variants for a conforming binary, different only
    // when the kernel math differs (nn/backend.hpp).
    expected_kernel_ = nn::backend::kernel_fingerprint();
    binary_ = options_.binary;
    if (binary_.empty()) {
      if (const char* env = std::getenv("SAFELIGHT_DIST_BIN")) binary_ = env;
    }
    if (binary_.empty()) binary_ = "/proc/self/exe";

    dist_dir_ = spec_.cache_dir + "/dist";
    std::filesystem::create_directories(dist_dir_ + "/logs");
    slots_.resize(options_.workers);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].slot = static_cast<int>(i);
      std::filesystem::create_directories(slot_store_dir(slots_[i]));
    }
  }

  ~Coordinator() {
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) continue;
      ::kill(slot.pid, SIGKILL);
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      close_slot(slot);
    }
  }

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  DistStatus run() {
    const Clock::time_point start = Clock::now();
    if (trace::armed()) {
      // One merged fleet trace: the coordinator's own spans are pid 1, each
      // worker slot gets a stable pid (respawns keep their predecessor's
      // track — the slot, not the generation, is the unit of scheduling).
      trace::set_track_name(1, "coordinator");
      for (const WorkerSlot& slot : slots_) {
        trace::set_track_name(
            2 + static_cast<std::uint32_t>(slot.slot),
            "worker w" + std::to_string(slot.slot));
      }
    }
    DistStatus status = DistStatus::kComplete;
    while (auto tasks = planner_.next_round(
               zoo_, {options_.workers, options_.chunk_size})) {
      ++summary_.rounds;
      if (tasks->empty()) continue;
      run_round(*tasks);
      if (!summary_.quarantined.empty()) {
        // A later round planned on top of a quarantined one would silently
        // recompute the lost cells in-process; stop loudly instead.
        status = DistStatus::kQuarantined;
        break;
      }
    }
    shutdown_workers();
    summary_.workers = options_.workers;
    summary_.wall_seconds = seconds_between(start, Clock::now());
    std::printf(
        "[dist] summary: workers=%zu tasks=%zu completed=%zu retries=%zu "
        "steals=%zu hang_kills=%zu crashes=%zu quarantined=%zu rounds=%zu "
        "merged_rows=%zu merge_duplicates=%zu wall=%.2fs\n",
        summary_.workers, summary_.tasks, summary_.completed,
        summary_.retries, summary_.steals, summary_.hang_kills,
        summary_.crashes, summary_.quarantined.size(), summary_.rounds,
        summary_.merged_rows, summary_.merge_duplicates,
        summary_.wall_seconds);
    std::fflush(stdout);
    return status;
  }

 private:
  std::string slot_store_dir(const WorkerSlot& slot) const {
    return dist_dir_ + "/w" + std::to_string(slot.slot);
  }

  // ---- process management -------------------------------------------------

  std::vector<std::string> worker_env(const WorkerSlot& slot) const {
    const bool chaos = options_.chaos_kill_prob > 0.0;
    std::vector<std::string> env;
    for (char** entry = environ; *entry != nullptr; ++entry) {
      const std::string value(*entry);
      if (value.rfind("SAFELIGHT_DIST_HEARTBEAT_INTERVAL=", 0) == 0) continue;
      if (value.rfind("SAFELIGHT_BACKEND=", 0) == 0) continue;
      if (chaos && value.rfind("SAFELIGHT_FAULT_", 0) == 0) continue;
      // Telemetry knobs never pass through: a worker must not clobber the
      // coordinator's output files. Buffering mode is injected below iff
      // the matching subsystem is armed here — the spans/metrics then ship
      // home over the pipe instead.
      if (value.rfind("SAFELIGHT_TRACE=", 0) == 0) continue;
      if (value.rfind("SAFELIGHT_METRICS=", 0) == 0) continue;
      if (value.rfind("SAFELIGHT_TRACE_PIPE=", 0) == 0) continue;
      if (value.rfind("SAFELIGHT_METRICS_PIPE=", 0) == 0) continue;
      env.push_back(value);
    }
    if (trace::armed()) env.push_back("SAFELIGHT_TRACE_PIPE=1");
    if (metrics::armed()) env.push_back("SAFELIGHT_METRICS_PIPE=1");
    // The coordinator's effective backend choice (flag > env > "auto")
    // propagates so a forced --backend governs the whole fleet; "auto"
    // stays "auto" — each node picks the best variant its own CPU
    // supports, which is safe because conforming variants are bitwise-
    // identical (and the hello handshake enforces "conforming").
    env.push_back("SAFELIGHT_BACKEND=" + config::backend());
    const double interval =
        std::clamp(options_.heartbeat_timeout_s / 4.0, 0.02, 1.0);
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", interval);
    env.push_back(std::string("SAFELIGHT_DIST_HEARTBEAT_INTERVAL=") + buffer);
    if (chaos) {
      // Arm the plug-pull harness in the worker only: every fault point,
      // independent draws, a seed unique per slot *and* generation so a
      // respawned worker does not replay its predecessor's kill schedule.
      env.push_back("SAFELIGHT_FAULT_MODE=independent");
      std::snprintf(buffer, sizeof buffer, "%.17g", options_.chaos_kill_prob);
      env.push_back(std::string("SAFELIGHT_FAULT_PROB=") + buffer);
      env.push_back("SAFELIGHT_FAULT_SEED=" +
                    std::to_string(options_.chaos_seed +
                                   static_cast<std::uint64_t>(slot.slot) *
                                       1000 +
                                   static_cast<std::uint64_t>(
                                       slot.generation)));
    }
    return env;
  }

  void spawn(WorkerSlot& slot) {
    ++slot.generation;
    int task_pipe[2];
    int event_pipe[2];
    // O_CLOEXEC on every coordinator-held end: a sibling worker inheriting
    // a copy of this pipe would keep it open forever and break EOF/EPIPE
    // detection. The child's std fds are re-created by dup2 below.
    if (::pipe2(task_pipe, O_CLOEXEC) != 0 ||
        ::pipe2(event_pipe, O_CLOEXEC) != 0) {
      throw std::runtime_error(std::string("safelight: pipe2 failed: ") +
                               std::strerror(errno));
    }

    const std::string slot_name = std::to_string(slot.slot);
    const std::string store_dir = slot_store_dir(slot);
    const std::string log_path =
        dist_dir_ + "/logs/w" + slot_name + ".log";
    std::vector<std::string> args = {binary_,      "worker",
                                     "--slot",     slot_name,
                                     "--store-dir", store_dir,
                                     "--zoo",      zoo_.directory()};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    std::vector<std::string> env = worker_env(slot);
    std::vector<char*> envp;
    envp.reserve(env.size() + 1);
    for (std::string& entry : env) envp.push_back(entry.data());
    envp.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error(std::string("safelight: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      ::dup2(task_pipe[0], 0);
      ::dup2(event_pipe[1], 1);
      const int log_fd =
          ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, 2);
        if (log_fd > 2) ::close(log_fd);
      }
      ::execve(binary_.c_str(), argv.data(), envp.data());
      ::_exit(127);  // exec failed; stderr already points at the log
    }

    ::close(task_pipe[0]);
    ::close(event_pipe[1]);
    slot.pid = pid;
    slot.task_fd = task_pipe[1];
    slot.event_fd = event_pipe[0];
    slot.alive = true;
    slot.idle = true;
    slot.current_task.reset();
    slot.buffer.clear();
    slot.last_heard = Clock::now();
    if (options_.verbose) {
      log::info("dist", "worker w%d generation %d spawned (pid %d)",
                slot.slot, slot.generation, static_cast<int>(pid));
    }
  }

  void close_slot(WorkerSlot& slot) {
    if (slot.task_fd >= 0) ::close(slot.task_fd);
    if (slot.event_fd >= 0) ::close(slot.event_fd);
    slot.task_fd = -1;
    slot.event_fd = -1;
    slot.alive = false;
    slot.idle = false;
    slot.buffer.clear();
  }

  /// Non-blocking drain of a dead worker's event pipe: a done/fatal line it
  /// managed to write before dying must be processed before the death
  /// accounting (a completed task is not requeued just because its worker
  /// exited afterwards).
  void drain_events(WorkerSlot& slot) {
    if (slot.event_fd < 0) return;
    const int flags = ::fcntl(slot.event_fd, F_GETFL);
    if (flags >= 0) ::fcntl(slot.event_fd, F_SETFL, flags | O_NONBLOCK);
    char chunk[4096];
    while (true) {
      const ssize_t n = ::read(slot.event_fd, chunk, sizeof chunk);
      if (n <= 0) break;
      slot.buffer.append(chunk, static_cast<std::size_t>(n));
    }
    process_lines(slot);
  }

  /// Processes a worker death: bookkeeping plus requeue/quarantine of its
  /// in-flight task. `hung` marks heartbeat-timeout kills.
  void handle_death(WorkerSlot& slot, const std::string& error, bool hung) {
    drain_events(slot);
    const std::optional<std::uint64_t> task_id = slot.current_task;
    slot.current_task.reset();
    close_slot(slot);
    if (shutting_down_) return;
    if (hung) {
      ++summary_.hang_kills;
      static metrics::Counter& hang_kills =
          metrics::counter("dist.hang_kills");
      hang_kills.add();
    } else {
      ++summary_.crashes;
      static metrics::Counter& crashes = metrics::counter("dist.crashes");
      crashes.add();
    }
    if (options_.verbose || hung) {
      log::warn("dist", "worker w%d (pid %d) died: %s", slot.slot,
                static_cast<int>(slot.pid), error.c_str());
    }
    if (!task_id) return;
    TaskState& state = tasks_.at(*task_id);
    if (state.assigned > 0) --state.assigned;
    if (!state.completed && !state.quarantined && state.assigned == 0) {
      fail_task(state, error);
    }
  }

  /// Reaps any slot whose process has exited (crash or injected kill).
  void reap_exited() {
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) continue;
      int status = 0;
      const pid_t pid = ::waitpid(slot.pid, &status, WNOHANG);
      if (pid == slot.pid) {
        handle_death(slot, describe_exit(status), /*hung=*/false);
      }
    }
  }

  void check_heartbeats() {
    const Clock::time_point now = Clock::now();
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) continue;
      const double silence = seconds_between(slot.last_heard, now);
      if (silence <= options_.heartbeat_timeout_s) continue;
      log::warn("dist",
                "worker w%d (pid %d) silent for %.1fs "
                "(timeout %.1fs); killing",
                slot.slot, static_cast<int>(slot.pid), silence,
                options_.heartbeat_timeout_s);
      ::kill(slot.pid, SIGKILL);  // works on SIGSTOPped processes too
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      handle_death(slot,
                   "no heartbeat for " + std::to_string(silence) +
                       "s (killed)",
                   /*hung=*/true);
    }
  }

  void respawn_dead() {
    if (round_finished_ >= round_total_) return;
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) spawn(slot);
    }
  }

  // ---- task lifecycle -----------------------------------------------------

  void fail_task(TaskState& state, const std::string& error) {
    ++state.failures;
    state.last_error = error;
    state.speculated = false;
    if (state.failures > options_.max_task_retries) {
      quarantine(state);
      return;
    }
    ++summary_.retries;
    static metrics::Counter& retries = metrics::counter("dist.retries");
    retries.add();
    if (trace::armed()) {
      trace::RawEvent event;
      event.name = "dist.retry";
      event.cat = "dist";
      event.start_ns = trace::now_ns();
      event.num_args.emplace_back("task",
                                  static_cast<double>(state.task.id));
      event.num_args.emplace_back("failures",
                                  static_cast<double>(state.failures));
      trace::record(std::move(event));
    }
    const double delay =
        std::min(options_.retry_cap_s,
                 options_.retry_base_s *
                     std::ldexp(1.0, static_cast<int>(state.failures) - 1));
    state.eligible_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(delay));
    pending_.push_back(state.task.id);
    if (options_.verbose) {
      log::info("dist", "task %llu requeued (failure %zu, backoff %.2fs): %s",
                static_cast<unsigned long long>(state.task.id),
                state.failures, delay, error.c_str());
    }
  }

  void quarantine(TaskState& state) {
    state.quarantined = true;
    ++round_finished_;
    QuarantinedTask record;
    record.id = state.task.id;
    record.variant = state.task.variant;
    if (state.task.baseline) record.scenario_ids.push_back("baseline");
    for (const auto& scenario : state.task.scenarios) {
      record.scenario_ids.push_back(scenario.id());
    }
    record.failures = state.failures;
    record.last_error = state.last_error;
    std::string joined;
    for (const std::string& id : record.scenario_ids) {
      if (!joined.empty()) joined += ", ";
      joined += id;
    }
    log::error("dist",
               "QUARANTINED task %llu (variant %s): %s after %zu "
               "failures (last error: %s)",
               static_cast<unsigned long long>(record.id),
               record.variant.c_str(), joined.c_str(), record.failures,
               record.last_error.c_str());
    summary_.quarantined.push_back(std::move(record));
  }

  /// Writes one task line to a worker; false (with the slot torn down) when
  /// the worker died under us.
  bool send_task(WorkerSlot& slot, const TaskMessage& task) {
    const std::string line = encode_task(task);
    const char* data = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::write(slot.task_fd, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        // EPIPE: death discovered on write; the reaper does the accounting.
        ::kill(slot.pid, SIGKILL);
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        handle_death(slot, describe_exit(status), /*hung=*/false);
        return false;
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  void dispatch() {
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive || !slot.idle) continue;
      const Clock::time_point now = Clock::now();

      std::optional<std::uint64_t> chosen;
      bool speculative = false;
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (tasks_.at(*it).eligible_at <= now) {
          chosen = *it;
          pending_.erase(it);
          break;
        }
      }
      if (!chosen && pending_.empty()) {
        // Work-stealing: duplicate the oldest in-flight task once. A
        // straggler (or a worker about to die) no longer gates the round.
        for (auto& [id, state] : tasks_) {
          if (!state.completed && !state.quarantined && state.assigned > 0 &&
              !state.speculated) {
            chosen = id;
            speculative = true;
            break;
          }
        }
      }
      if (!chosen) continue;

      TaskState& state = tasks_.at(*chosen);
      if (!send_task(slot, state.task)) {
        if (!speculative && !state.completed && !state.quarantined) {
          pending_.push_front(*chosen);  // never dispatched; not a failure
        }
        continue;
      }
      ++state.assigned;
      static metrics::Counter& dispatches =
          metrics::counter("dist.dispatches");
      dispatches.add();
      if (trace::armed()) {
        state.dispatch_ns = trace::now_ns();
        state.dispatch_slot = slot.slot;
        trace::RawEvent event;
        event.name = "dist.dispatch";
        event.cat = "dist";
        event.start_ns = state.dispatch_ns;
        event.num_args.emplace_back("task",
                                    static_cast<double>(state.task.id));
        event.num_args.emplace_back("worker",
                                    static_cast<double>(slot.slot));
        trace::record(std::move(event));
      }
      if (speculative) {
        state.speculated = true;
        ++summary_.steals;
        static metrics::Counter& steals = metrics::counter("dist.steals");
        steals.add();
        if (trace::armed()) {
          trace::RawEvent event;
          event.name = "dist.steal";
          event.cat = "dist";
          event.start_ns = trace::now_ns();
          event.num_args.emplace_back("task",
                                      static_cast<double>(state.task.id));
          event.num_args.emplace_back("worker",
                                      static_cast<double>(slot.slot));
          trace::record(std::move(event));
        }
        if (options_.verbose) {
          log::info("dist", "task %llu speculatively duplicated on w%d",
                    static_cast<unsigned long long>(*chosen), slot.slot);
        }
      }
      slot.current_task = *chosen;
      slot.idle = false;
    }
  }

  /// Startup handshake: a worker advertising different kernel numerics is
  /// a hard error before any task reaches it. Retrying would fail the same
  /// way (the mismatch is a property of the binary, not the task), and
  /// letting it run would merge store rows computed with different math —
  /// so this throws out of the event loop instead of going through the
  /// requeue machinery.
  void check_hello(const WorkerSlot& slot, const EventMessage& event) {
    if (event.kernel == expected_kernel_) {
      if (options_.verbose) {
        log::info("dist", "worker w%d hello: backend %s, kernel %s",
                  slot.slot, event.backend.c_str(), event.kernel.c_str());
      }
      return;
    }
    const std::string advertised =
        event.kernel.empty()
            ? "no kernel fingerprint (binary predates the compute-backend "
              "registry)"
            : "kernel " + event.kernel + " (backend '" + event.backend + "')";
    const std::string message =
        "worker w" + std::to_string(slot.slot) + " (" + binary_ +
        ") advertises " + advertised + " but the coordinator expects kernel " +
        expected_kernel_ +
        "; SAFELIGHT_DIST_BIN points at a binary whose GEMM numerics "
        "differ, and merging its results would poison the stores — rebuild "
        "the worker binary from the same sources";
    log::error("dist", "%s", message.c_str());
    throw std::runtime_error(message);
  }

  void on_done(WorkerSlot& slot, const EventMessage& event) {
    slot.current_task.reset();
    slot.idle = true;
    const auto it = tasks_.find(event.task_id);
    if (it == tasks_.end()) return;
    TaskState& state = it->second;
    if (state.assigned > 0) --state.assigned;
    if (state.completed || state.quarantined) return;
    state.completed = true;
    ++summary_.completed;
    ++round_finished_;
    static metrics::Counter& completed =
        metrics::counter("dist.tasks_completed");
    completed.add();
    if (trace::armed() && state.dispatch_ns != 0) {
      trace::RawEvent span;
      span.name = "dist.task";
      span.cat = "dist";
      span.start_ns = state.dispatch_ns;
      span.dur_ns = trace::now_ns() - state.dispatch_ns;
      span.num_args.emplace_back("task",
                                 static_cast<double>(state.task.id));
      span.num_args.emplace_back("worker",
                                 static_cast<double>(state.dispatch_slot));
      span.num_args.emplace_back("evaluated",
                                 static_cast<double>(event.evaluated));
      span.num_args.emplace_back("cached",
                                 static_cast<double>(event.cached));
      trace::record(std::move(span));
    }
  }

  void on_fatal(WorkerSlot& slot, const EventMessage& event) {
    slot.current_task.reset();
    slot.idle = true;
    const auto it = tasks_.find(event.task_id);
    if (it == tasks_.end()) return;
    TaskState& state = it->second;
    if (state.assigned > 0) --state.assigned;
    if (!state.completed && !state.quarantined && state.assigned == 0) {
      fail_task(state, "worker reported: " + event.message);
    }
  }

  void process_lines(WorkerSlot& slot) {
    while (true) {
      const std::size_t newline = slot.buffer.find('\n');
      if (newline == std::string::npos) return;
      const std::string line = slot.buffer.substr(0, newline);
      slot.buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      EventMessage event;
      try {
        event = decode_event(line);
      } catch (const std::exception& error) {
        log::warn("dist", "worker w%d sent an undecodable line (%s); ignored",
                  slot.slot, error.what());
        continue;
      }
      switch (event.type) {
        case EventMessage::Type::kHello:
          check_hello(slot, event);
          break;
        case EventMessage::Type::kHeartbeat:
          break;  // last_heard was updated by the read itself
        case EventMessage::Type::kDone:
          on_done(slot, event);
          break;
        case EventMessage::Type::kFatal:
          on_fatal(slot, event);
          break;
        case EventMessage::Type::kTrace:
          // Worker spans land under the slot's stable pid: one merged
          // fleet trace, one track per worker slot.
          trace::ingest(2 + static_cast<std::uint32_t>(slot.slot),
                        std::move(event.spans));
          break;
        case EventMessage::Type::kMetrics:
          metrics::ingest(event.metrics);
          break;
      }
      if (!slot.alive) return;  // handler tore the slot down
    }
  }

  void poll_events(int timeout_ms) {
    std::vector<struct pollfd> fds;
    std::vector<WorkerSlot*> owners;
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) continue;
      fds.push_back({slot.event_fd, POLLIN, 0});
      owners.push_back(&slot);
    }
    if (fds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return;
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready <= 0) return;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WorkerSlot& slot = *owners[i];
      char chunk[4096];
      const ssize_t n = ::read(slot.event_fd, chunk, sizeof chunk);
      if (n > 0) {
        slot.last_heard = Clock::now();
        slot.buffer.append(chunk, static_cast<std::size_t>(n));
        process_lines(slot);
      } else if (n == 0) {
        // EOF: the worker exited; reap it here so the death is attributed
        // before the next dispatch round.
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        handle_death(slot, describe_exit(status), /*hung=*/false);
      }
    }
  }

  // ---- rounds -------------------------------------------------------------

  void run_round(const std::vector<TaskMessage>& round_tasks) {
    summary_.tasks += round_tasks.size();
    round_total_ = round_tasks.size();
    round_finished_ = 0;
    std::vector<std::string> stems;
    for (const TaskMessage& task : round_tasks) {
      if (std::find(stems.begin(), stems.end(), task.store_stem) ==
          stems.end()) {
        stems.push_back(task.store_stem);
      }
      TaskState state;
      state.task = task;
      pending_.push_back(task.id);
      tasks_.emplace(task.id, std::move(state));
    }
    // The planner may have spent a while training/merging since the last
    // event read; do not count that silence against the workers.
    const Clock::time_point round_start = Clock::now();
    for (WorkerSlot& slot : slots_) {
      if (slot.alive) slot.last_heard = round_start;
    }

    bool cancelled = false;
    while (round_finished_ < round_total_) {
      if (options_.cancel != nullptr && options_.cancel->load()) {
        cancelled = true;
        break;
      }
      reap_exited();
      check_heartbeats();
      respawn_dead();
      dispatch();
      poll_events(/*timeout_ms=*/100);
    }

    if (cancelled) shutdown_workers();
    merge_round(stems);  // partial results survive a cancel
    if (cancelled) throw core::ExperimentCancelled(experiment_);
  }

  void merge_round(const std::vector<std::string>& stems) {
    trace::Span merge_span("dist", "dist.merge");
    merge_span.arg("stems", static_cast<double>(stems.size()));
    static metrics::Counter& merged_rows =
        metrics::counter("dist.merged_rows");
    static metrics::Counter& merge_duplicates =
        metrics::counter("dist.merge_duplicates");
    for (const std::string& stem : stems) {
      std::vector<std::string> sources;
      for (const WorkerSlot& slot : slots_) {
        sources.push_back(slot_store_dir(slot) + "/" + stem + ".sweep.csv");
      }
      const MergeStats stats =
          merge_stores(sources, spec_.cache_dir + "/" + stem + ".sweep.csv");
      summary_.merged_rows += stats.appended;
      summary_.merge_duplicates += stats.duplicates;
      merged_rows.add(stats.appended);
      merge_duplicates.add(stats.duplicates);
    }
  }

  void shutdown_workers() {
    shutting_down_ = true;
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) continue;
      const std::string line = encode_shutdown();
      // Best-effort; a dead worker is reaped below either way.
      [[maybe_unused]] const ssize_t n =
          ::write(slot.task_fd, line.data(), line.size());
      ::close(slot.task_fd);
      slot.task_fd = -1;
    }
    // Keep reading event pipes until EOF: workers flush their final
    // telemetry (trailing span buffer, one metrics snapshot) between the
    // shutdown command and exit, and a payload larger than the pipe buffer
    // would deadlock a worker against a coordinator that only waitpid()s.
    const auto drain_until = [&](Clock::time_point deadline) {
      while (Clock::now() < deadline) {
        std::vector<struct pollfd> fds;
        std::vector<WorkerSlot*> owners;
        for (WorkerSlot& slot : slots_) {
          if (!slot.alive) continue;
          fds.push_back({slot.event_fd, POLLIN, 0});
          owners.push_back(&slot);
        }
        if (fds.empty()) return true;
        if (::poll(fds.data(), fds.size(), 50) <= 0) continue;
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
          WorkerSlot& slot = *owners[i];
          char chunk[4096];
          const ssize_t bytes = ::read(slot.event_fd, chunk, sizeof chunk);
          if (bytes > 0) {
            slot.buffer.append(chunk, static_cast<std::size_t>(bytes));
            process_lines(slot);
          } else if (bytes == 0) {
            int status = 0;
            ::waitpid(slot.pid, &status, 0);
            close_slot(slot);
          }
        }
      }
      return false;
    };
    const auto reap_until = [&](Clock::time_point deadline) {
      while (Clock::now() < deadline) {
        bool any_alive = false;
        for (WorkerSlot& slot : slots_) {
          if (!slot.alive) continue;
          int status = 0;
          if (::waitpid(slot.pid, &status, WNOHANG) == slot.pid) {
            close_slot(slot);
          } else {
            any_alive = true;
          }
        }
        if (!any_alive) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      return false;
    };
    if (!drain_until(Clock::now() + std::chrono::seconds(5))) {
      for (WorkerSlot& slot : slots_) {
        if (slot.alive) ::kill(slot.pid, SIGTERM);
      }
      if (!reap_until(Clock::now() + std::chrono::seconds(2))) {
        for (WorkerSlot& slot : slots_) {
          if (!slot.alive) continue;
          ::kill(slot.pid, SIGKILL);
          int status = 0;
          ::waitpid(slot.pid, &status, 0);
          close_slot(slot);
        }
      }
    }
    shutting_down_ = false;
  }

  std::string experiment_;
  const core::ExperimentSpec& spec_;
  core::ModelZoo& zoo_;
  const DistOptions& options_;
  DistSummary& summary_;
  DistPlanner planner_;
  std::string binary_;
  std::string expected_kernel_;
  std::string dist_dir_;
  std::vector<WorkerSlot> slots_;
  std::map<std::uint64_t, TaskState> tasks_;  // ordered: oldest-first steal
  std::deque<std::uint64_t> pending_;
  std::size_t round_total_ = 0;
  std::size_t round_finished_ = 0;
  bool shutting_down_ = false;
};

}  // namespace

DistStatus run_distributed(const std::string& experiment,
                           const core::ExperimentSpec& spec,
                           core::ModelZoo& zoo, const DistOptions& options,
                           DistSummary& summary) {
  SigpipeGuard sigpipe;
  Coordinator coordinator(experiment, spec, zoo, options, summary);
  return coordinator.run();
}

}  // namespace safelight::dist
