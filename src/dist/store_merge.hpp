// Multi-writer result-store merge.
//
// Workers never touch the canonical result stores: each appends to its own
// per-slot store directory, and the coordinator folds those stores into the
// canonical one here after a round completes. Merging is the only moment
// two writers' outputs meet, so this is where the multi-writer invariants
// are enforced:
//   * duplicate keys with byte-identical values deduplicate silently
//     (evaluation is deterministic, so speculative/retried tasks produce
//     exactly the same bytes);
//   * duplicate keys with differing value bytes are a hard error — that can
//     only mean non-deterministic evaluation or store corruption, and
//     either must stop the run before the canonical cache is poisoned;
//   * torn tails in worker stores (a chaos kill mid-append) are skipped by
//     the tolerant reader, never merged;
//   * the canonical store is held under its StoreWriterLock for the whole
//     merge, and appended rows reuse ResultStore's exact row format, so the
//     merged file is indistinguishable from one a single process wrote.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace safelight::dist {

struct MergeStats {
  std::size_t sources = 0;     // source files that existed and were read
  std::size_t appended = 0;    // rows newly appended to the destination
  std::size_t duplicates = 0;  // byte-identical rows already present
};

/// Merges every store in `source_csvs` (missing files are skipped) into
/// `dest_csv`, which may or may not exist yet. Acquires the destination's
/// writer lock; throws std::runtime_error when another live process holds
/// it or when two values for one key differ in bytes (the error names the
/// key, the files and both values). The destination's own torn tail (a
/// coordinator crash mid-merge) is truncated away first — the merge is
/// crash-resumable like every other durable write in SafeLight, and carries
/// a fault::ptp("store.merge.append") point to prove it.
MergeStats merge_stores(const std::vector<std::string>& source_csvs,
                        const std::string& dest_csv);

}  // namespace safelight::dist
