// Worker side of the distributed sweep: one process, one task at a time.
//
// A worker is the `safelight worker` subcommand, spawned by the
// coordinator with its stdin/stdout turned into the NDJSON protocol pipes
// (stderr goes to a per-slot log file). It evaluates the scenarios of each
// task with the same AttackEvaluator the in-process pipeline uses, and
// appends results to its *own* store directory — never to the canonical
// stores — keyed exactly as the pipeline would key them. Incremental
// resume comes for free: a respawned worker (same slot, next generation)
// reopens its slot's stores, takes over the crashed predecessor's stale
// writer locks, and skips every scenario already durable there.
//
// A heartbeat thread writes {"type":"heartbeat"} every interval so the
// coordinator can distinguish "busy evaluating" from "hung": SIGSTOP (or a
// livelock) silences the heartbeat, and the coordinator SIGKILLs after its
// timeout.
//
// Test seams (environment variables, only read here):
//   SAFELIGHT_DIST_POISON      scenario-id substring; evaluating a matching
//                              scenario _Exits(41) — a deterministic
//                              "poison task" that fails on every retry.
//   SAFELIGHT_DIST_HANG        scenario-id substring; a matching scenario
//                              raises SIGSTOP instead of evaluating.
//   SAFELIGHT_DIST_HANG_ONCE   path of a sentinel file; when set, only the
//                              process that O_EXCL-creates it hangs, so a
//                              reassigned task completes on the next worker.
#pragma once

#include <atomic>

#include <string>

namespace safelight::dist {

struct WorkerOptions {
  std::string zoo_dir;    // shared model zoo (entries pre-trained)
  std::string store_dir;  // this worker's private store directory
  int protocol_in = 0;    // fd carrying coordinator commands
  int protocol_out = 1;   // fd carrying worker events
  double heartbeat_interval_s = 1.0;
  /// Cooperative cancellation (SIGINT/SIGTERM): checked between scenarios;
  /// throws core::ExperimentCancelled so the CLI exits 130.
  const std::atomic<bool>* cancel = nullptr;
};

/// Runs the task loop until shutdown or EOF on `protocol_in`; returns the
/// process exit code (0). Task-level failures are reported as fatal events
/// and do not kill the worker.
int run_worker(const WorkerOptions& options);

}  // namespace safelight::dist
