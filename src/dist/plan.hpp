// Shard planner: turns one (experiment, spec) into rounds of worker tasks.
//
// The distributed layer never reimplements an experiment — it only *warms
// the caches* the in-process experiment will read. The planner therefore
// answers exactly one question per round: "which (variant, scenario) cells
// of this experiment's sweeps are not yet in the canonical result stores?"
// Those cells are chunked into TaskMessages; once the workers have filled
// them and the coordinator has merged the per-worker stores, the ordinary
// registry run replays the experiment with every lookup hitting cache, so
// the distributed output is byte-identical to a single-process run by
// construction.
//
// Rounds exist because robust_compare has a sequential dependency: the
// robust variant is unknown until the mitigation selection sweep finishes.
// Round 1 shards that selection sweep; between rounds the planner runs
// mitigation in-process (now fully cached, seconds) to pick the variant,
// then round 2 shards the Original-vs-robust comparison grid. The
// selection spec and comparison grid come from the same helpers
// (robust_compare_selection_spec / robust_compare_grid) the experiment
// itself uses, so the cache keys agree by construction, not by convention.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "dist/protocol.hpp"

namespace safelight::dist {

/// Tunables of one planning pass.
struct PlanOptions {
  std::size_t workers = 1;
  /// Scenarios per task; 0 picks clamp(pending / (workers * 4), 1, 32) —
  /// small enough that a lost task forfeits little work, large enough that
  /// per-task protocol and model-load overhead stays amortized.
  std::size_t chunk_size = 0;
};

class DistPlanner {
 public:
  /// `spec` must carry a non-empty cache_dir (there is nothing to
  /// distribute without persistent stores).
  DistPlanner(std::string experiment, core::ExperimentSpec spec);

  /// True when `experiment` decomposes into independent pipeline sweeps.
  /// detection and campaign do not (their stores are per-deployment trace
  /// caches with their own formats); the CLI runs them in-process with a
  /// loud note instead.
  static bool shardable(const std::string& experiment);

  /// Plans the next round: trains every referenced variant through `zoo`
  /// (workers only ever load finished entries), reads the canonical stores
  /// and returns tasks for the uncached cells only. An empty vector is a
  /// valid round (everything already cached); nullopt means planning is
  /// finished. Between-round experiment stages (robust_compare's variant
  /// selection) run in here, against the merged caches.
  std::optional<std::vector<TaskMessage>> next_round(
      core::ModelZoo& zoo, const PlanOptions& options);

 private:
  std::vector<TaskMessage> plan_sweeps(
      core::ModelZoo& zoo, const core::ExperimentSpec& spec,
      const std::vector<core::VariantSpec>& variants,
      const std::vector<attack::AttackScenario>& grid,
      const PlanOptions& options);

  std::string experiment_;
  core::ExperimentSpec spec_;
  int stage_ = 0;
  std::uint64_t next_task_id_ = 1;
};

}  // namespace safelight::dist
