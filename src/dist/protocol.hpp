// Coordinator <-> worker pipe protocol of the distributed sweep layer.
//
// One JSON document per line (NDJSON), written with common/json's compact
// writer and parsed back with JsonValue — no third-party dependency, and
// both directions are strict: an unknown type, a missing field or trailing
// garbage is a protocol error, not a silent skip. Scenarios travel as full
// descriptors (vector/target/fraction/seed), never as grid indices, so a
// coordinator and a worker built from slightly different grid code cannot
// disagree about which cell a task means. Fractions are shipped as %.17g
// strings: the scenario's store key contains the double, and a decimal
// round-trip through 17 significant digits reproduces it bit for bit.
//
// Coordinator -> worker commands:
//   {"type":"task", "id":N, "model":"cnn1", "scale":"tiny",
//    "variant":"l2+n3", "l2":3e-04, "store_stem":"...", "fingerprint":"...",
//    "baseline":true, "scenarios":[{"vector":"hotspot","target":"CONV+FC",
//    "fraction":"0.050000000000000003","seed":1003}, ...]}
//   {"type":"shutdown"}
//
// Worker -> coordinator events:
//   {"type":"hello","pid":N,"backend":"avx512","kernel":"<16-hex digest>"}
//   {"type":"heartbeat"}
//   {"type":"done","id":N,"evaluated":K,"cached":M}
//   {"type":"fatal","id":N,"message":"..."}
//   {"type":"trace","spans":[{"name":"...","cat":"...","start_ns":N,
//    "dur_ns":N,"tid":N,"num":{...},"str":{...}}, ...]}
//   {"type":"metrics","counters":{...},"gauges":{...},"histograms":{...}}
//
// Telemetry events exist so an armed coordinator can merge the whole
// fleet's observability into one Chrome trace / one metrics registry: a
// worker in SAFELIGHT_TRACE_PIPE buffering mode drains its span buffer
// after every task (and at shutdown), and ships one metrics snapshot right
// before exiting. Doubles ride as %.17g strings, same as fractions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/scenario.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace safelight::dist {

/// One shard of sweep work: evaluate `scenarios` (plus, when `baseline` is
/// set, the clean baseline) for `variant` of (model, scale), recording
/// results in the worker's own store file `<store_dir>/<store_stem>.sweep.csv`
/// under exactly the keys the in-process pipeline would use.
struct TaskMessage {
  std::uint64_t id = 0;
  std::string model;        // nn::to_string(ModelId) name
  std::string scale;        // "tiny" | "default" | "full"
  std::string variant;      // VariantSpec name (variant_by_name-resolvable)
  double l2_strength = 0.0;
  std::string store_stem;   // store file stem, no directory, no extension
  /// attack::config_fingerprint of the corruption physics. The worker
  /// recomputes its own and refuses the task on a mismatch — a coordinator
  /// and worker disagreeing on physics must fail loudly, not poison a store.
  std::string fingerprint;
  bool baseline = false;
  std::vector<attack::AttackScenario> scenarios;
};

/// Worker -> coordinator event.
struct EventMessage {
  enum class Type { kHello, kHeartbeat, kDone, kFatal, kTrace, kMetrics };
  Type type = Type::kHeartbeat;
  std::uint64_t pid = 0;        // kHello
  /// kHello: the worker's selected compute backend and its kernel-numerics
  /// fingerprint (nn::backend::kernel_fingerprint). The coordinator refuses
  /// a worker whose fingerprint differs from its own — a mismatched
  /// SAFELIGHT_DIST_BIN binary must fail the handshake, not merge results
  /// computed with different math. Decoded leniently (empty when absent)
  /// so a pre-registry binary's hello still parses and is rejected with an
  /// actionable error instead of the undecodable-line warn path.
  std::string backend;          // kHello
  std::string kernel;           // kHello
  std::uint64_t task_id = 0;    // kDone / kFatal
  std::uint64_t evaluated = 0;  // kDone: scenarios computed fresh
  std::uint64_t cached = 0;     // kDone: already present in the worker store
  std::string message;          // kFatal: exception text
  std::vector<trace::RawEvent> spans;  // kTrace: drained span buffer
  metrics::Snapshot metrics;           // kMetrics: worker registry snapshot
};

/// Encoders return one complete line including the trailing '\n'.
std::string encode_task(const TaskMessage& task);
std::string encode_shutdown();
std::string encode_event(const EventMessage& event);

/// True when `line` is a shutdown command. Malformed JSON still throws.
bool is_shutdown(const std::string& line);

/// Decoders throw std::invalid_argument (with the parse position or the
/// offending field) on anything malformed.
TaskMessage decode_task(const std::string& line);
EventMessage decode_event(const std::string& line);

}  // namespace safelight::dist
