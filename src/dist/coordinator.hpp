// Fault-tolerant sweep coordinator.
//
// Spawns N `safelight worker` subprocesses, streams the DistPlanner's task
// rounds to them over NDJSON pipes, and survives everything a worker can do
// wrong:
//   * crash (any exit, including PR 6's injected std::_Exit(42) plug pulls)
//     -> the in-flight task is requeued with capped exponential backoff and
//        the slot is respawned; the replacement resumes from the slot's own
//        store, so progress is monotone even under high kill probability;
//   * hang (SIGSTOP, livelock) -> heartbeat silence past the timeout gets
//     the process SIGKILLed and handled like a crash;
//   * poison task (fails deterministically every time) -> after
//     max_task_retries + 1 failures the task is quarantined: the sweep
//     completes without it, the report names every lost scenario, and the
//     run exits nonzero instead of pretending to be complete.
// Work-stealing: when the queue drains, an idle worker speculatively
// duplicates the oldest in-flight task (once per task). Evaluation is
// deterministic, so a duplicate's rows merge as byte-identical duplicates —
// speculation can only hide stragglers, never corrupt results.
//
// After each round the per-slot stores are folded into the canonical ones
// (dist/store_merge.hpp), and the caller replays the experiment in-process
// against the warmed cache — distributed output is therefore byte-identical
// to a single-process run by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace safelight::dist {

/// The clock every piece of coordinator liveness bookkeeping runs on —
/// heartbeat silence, retry backoff eligibility, drain/reap deadlines. It
/// must be steady: on a wall clock, one NTP step would instantly expire
/// every worker's heartbeat window and mass-kill a healthy fleet. Pinned
/// by a static_assert here and a test in tests/dist_test.cpp so a refactor
/// cannot quietly reintroduce system_clock.
using CoordinatorClock = std::chrono::steady_clock;
static_assert(CoordinatorClock::is_steady,
              "coordinator timing must use a steady clock");

struct DistOptions {
  std::size_t workers = 2;
  /// Heartbeat silence that declares a worker hung (SIGKILL + requeue).
  double heartbeat_timeout_s = 10.0;
  /// Re-dispatches of one task before it is quarantined (i.e. a task is
  /// given up after max_task_retries + 1 failures).
  std::size_t max_task_retries = 3;
  /// Requeue backoff: min(retry_cap_s, retry_base_s * 2^(failures-1)).
  double retry_base_s = 0.2;
  double retry_cap_s = 5.0;
  /// > 0 arms PR 6 fault injection *inside the workers only* (independent
  /// mode, every fault point, per-slot/generation seeds derived from
  /// chaos_seed) — the chaos harness that proves crash recovery end to end.
  double chaos_kill_prob = 0.0;
  std::uint64_t chaos_seed = 1;
  /// Scenarios per task; 0 = auto (see PlanOptions).
  std::size_t chunk_size = 0;
  /// Worker binary; empty resolves SAFELIGHT_DIST_BIN, then /proc/self/exe.
  std::string binary;
  bool verbose = false;
  /// Cooperative cancel: workers are shut down, the partial round is merged
  /// (completed scenarios stay cached), then ExperimentCancelled is thrown.
  const std::atomic<bool>* cancel = nullptr;
};

/// One task given up on after exhausting its retries.
struct QuarantinedTask {
  std::uint64_t id = 0;
  std::string variant;
  std::vector<std::string> scenario_ids;  // includes "baseline" when lost
  std::size_t failures = 0;
  std::string last_error;
};

struct DistSummary {
  std::size_t workers = 0;
  std::size_t tasks = 0;      // tasks planned across all rounds
  std::size_t completed = 0;  // tasks finished (done event received)
  std::size_t retries = 0;    // requeues after a failure
  std::size_t crashes = 0;    // worker deaths (incl. injected plug pulls)
  std::size_t hang_kills = 0; // heartbeat-timeout SIGKILLs
  std::size_t steals = 0;     // work-stealing speculative duplicates sent
  std::size_t rounds = 0;
  std::size_t merged_rows = 0;
  std::size_t merge_duplicates = 0;
  std::vector<QuarantinedTask> quarantined;
  double wall_seconds = 0.0;
};

enum class DistStatus {
  kComplete,     // every planned task finished; caches fully warmed
  kQuarantined,  // sweep finished minus quarantined tasks; caller must
                 // surface the loss and exit nonzero
};

/// Runs `experiment` (must be DistPlanner::shardable) distributed across
/// options.workers subprocesses, warming spec.cache_dir's stores. Prints a
/// one-line machine-parsable summary ("[dist] summary: ...") on completion.
/// Throws core::ExperimentCancelled on cancel, std::runtime_error on a
/// store-merge conflict or spawn failure.
DistStatus run_distributed(const std::string& experiment,
                           const core::ExperimentSpec& spec,
                           core::ModelZoo& zoo, const DistOptions& options,
                           DistSummary& summary);

}  // namespace safelight::dist
