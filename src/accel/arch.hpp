// CrossLight-style non-coherent ONN accelerator architecture (paper Fig. 3).
//
// The photonic substrate splits into a CONV block accelerating convolution
// layers and an FC block accelerating fully-connected layers. Paper-scale
// dimensions: CONV = 100 VDP units of 20x20 MRs, FC = 60 VDP units of
// 150x150 MRs. `scaled()` shrinks both blocks proportionally for the
// reduced-scale experiments while preserving the mapping pressure
// (parameters-per-slot ratio) that drives the paper's multi-pass corruption
// effect.
#pragma once

#include <cstddef>
#include <string>

#include "photonics/converters.hpp"
#include "photonics/microring.hpp"
#include "photonics/mr_bank.hpp"
#include "photonics/wdm.hpp"

namespace safelight::accel {

enum class BlockKind { kConv, kFc };

std::string to_string(BlockKind kind);

struct BlockDims {
  std::size_t units = 0;
  std::size_t banks_per_unit = 0;  // VDP rows per unit
  std::size_t mrs_per_bank = 0;    // WDM channels per bank

  std::size_t bank_count() const { return units * banks_per_unit; }
  std::size_t slot_count() const { return bank_count() * mrs_per_bank; }
  void validate() const;
};

struct AcceleratorConfig {
  BlockDims conv{100, 20, 20};
  BlockDims fc{60, 150, 150};
  /// Per-block MR designs: the FC block's dense WDM grid (150 channels per
  /// FSR) requires a much higher loaded Q than the CONV block's 20 channels.
  phot::MrGeometry conv_mr{};
  phot::MrGeometry fc_mr{};
  phot::WeightEncoding encoding{};
  double center_wavelength_nm = 1550.0;
  unsigned dac_bits = 10;
  unsigned adc_bits = 8;

  void validate() const;
  const BlockDims& block(BlockKind kind) const;
  const phot::MrGeometry& geometry(BlockKind kind) const;

  /// WDM grid of one bank of `kind` (channel count = mrs_per_bank, spacing =
  /// FSR / channels).
  phot::WdmGrid bank_grid(BlockKind kind) const;

  /// Paper-scale CrossLight configuration.
  static AcceleratorConfig crosslight();

  /// Proportionally reduced configuration: unit counts are divided by
  /// `factor` (min 1 unit per block); per-unit bank/MR dimensions are kept
  /// so bank-level attack semantics are unchanged.
  static AcceleratorConfig scaled(std::size_t factor);
};

}  // namespace safelight::accel
