// Slot addressing: locating a single MR inside a block.
#pragma once

#include <cstddef>
#include <string>

#include "accel/arch.hpp"

namespace safelight::accel {

/// Address of one MR (one weight slot) inside the accelerator.
struct SlotAddress {
  BlockKind block = BlockKind::kConv;
  std::size_t unit = 0;
  std::size_t bank = 0;
  std::size_t mr = 0;

  bool operator==(const SlotAddress&) const = default;
  std::string to_string() const;
};

/// Address of one MR bank (hotspot attacks are bank-granular).
struct BankAddress {
  BlockKind block = BlockKind::kConv;
  std::size_t unit = 0;
  std::size_t bank = 0;

  bool operator==(const BankAddress&) const = default;
  std::string to_string() const;
};

/// Flat index <-> structured address conversions. Slots are laid out
/// MR-fastest: consecutive flat indices fill one bank's wavelengths before
/// moving to the next bank — so consecutive mapped weights share a bank,
/// which is what makes hotspot attacks corrupt *clusters* of weights.
std::size_t slot_flat_index(const BlockDims& dims, const SlotAddress& addr);
SlotAddress slot_from_flat(const BlockDims& dims, BlockKind block,
                           std::size_t flat);

std::size_t bank_flat_index(const BlockDims& dims, const BankAddress& addr);
BankAddress bank_from_flat(const BlockDims& dims, BlockKind block,
                           std::size_t flat);

/// The bank containing a slot.
BankAddress bank_of_slot(const SlotAddress& addr);

}  // namespace safelight::accel
