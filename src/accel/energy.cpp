#include "accel/energy.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"

namespace safelight::accel {

namespace {

/// Recursively counts MACs. Conv MACs = out_elems * in_c * k * k; FC MACs =
/// out * in. Composite layers (BasicBlock) are approximated through their
/// parameter tensors: a 3x3 conv weight of shape [out_c, in_c*9] applied at
/// the layer's output resolution — we conservatively use the input shape
/// tracking below instead, so composite layers need explicit handling.
void count_layer(nn::Layer& layer, const nn::Shape& in_shape,
                 MacCounts& counts) {
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    const nn::Shape out = conv->output_shape(in_shape);
    const std::size_t out_elems = out[0] * out[1] * out[2] * out[3];
    counts.conv_macs += out_elems * conv->in_channels() * conv->kernel() *
                        conv->kernel();
    return;
  }
  if (auto* linear = dynamic_cast<nn::Linear*>(&layer)) {
    counts.fc_macs +=
        in_shape[0] * linear->in_features() * linear->out_features();
    return;
  }
  // Composite layers: approximate by their conv parameter volume times the
  // output spatial area (exact for stride-1 blocks, conservative otherwise).
  const nn::Shape out = layer.output_shape(in_shape);
  for (nn::Param* p : layer.params()) {
    if (p->kind == nn::ParamKind::kConvWeight && out.size() == 4) {
      counts.conv_macs += p->value.numel() * out[2] * out[3] * out[0];
    } else if (p->kind == nn::ParamKind::kLinearWeight) {
      counts.fc_macs += p->value.numel() * in_shape[0];
    }
  }
}

}  // namespace

MacCounts count_macs(nn::Sequential& model, const nn::Shape& input_shape) {
  require(!input_shape.empty(), "count_macs: empty input shape");
  MacCounts counts;
  nn::Shape shape = input_shape;
  for (std::size_t i = 0; i < model.size(); ++i) {
    count_layer(model.layer(i), shape, counts);
    shape = model.layer(i).output_shape(shape);
  }
  return counts;
}

double EnergyReport::macs_per_nj(std::size_t macs) const {
  const double nj = total_uj() * 1e3;
  return nj > 0.0 ? static_cast<double>(macs) / nj : 0.0;
}

EnergyReport estimate_inference(const MacCounts& macs,
                                const AcceleratorConfig& config,
                                const EnergyModel& model) {
  config.validate();
  require(model.clock_ghz > 0.0, "EnergyModel: clock must be positive");

  EnergyReport report;
  // Cycle counts: each block retires slot_count MACs per symbol cycle.
  const double conv_cycles =
      std::ceil(static_cast<double>(macs.conv_macs) /
                static_cast<double>(config.conv.slot_count()));
  const double fc_cycles =
      std::ceil(static_cast<double>(macs.fc_macs) /
                static_cast<double>(config.fc.slot_count()));
  // CONV and FC blocks run concurrently; latency is the longer pipeline.
  const double cycles = std::max(conv_cycles, fc_cycles);
  report.latency_us = cycles / (model.clock_ghz * 1e3);

  const double active_mrs = static_cast<double>(
      config.conv.slot_count() + config.fc.slot_count());
  const double active_banks = static_cast<double>(
      config.conv.bank_count() + config.fc.bank_count());
  const double channels = active_mrs;  // one carrier per MR column

  // Static power integrated over the latency window.
  const double laser_mw =
      channels * model.laser_mw_per_channel / model.laser_wall_plug_efficiency;
  report.laser_uj = laser_mw * report.latency_us * 1e-3;
  const double tuning_mw = active_mrs * (model.eo_actuation_uw_per_mr * 1e-3 +
                                         model.to_bias_mw_per_mr);
  report.tuning_uj = tuning_mw * report.latency_us * 1e-3;

  // Per-event energies: one DAC conversion per MAC operand pair, one
  // ADC + PD sample per bank per cycle.
  const double total_macs = static_cast<double>(macs.total());
  report.converter_uj = (total_macs * model.dac_pj_per_conversion +
                         cycles * active_banks * model.adc_pj_per_conversion) *
                        1e-6;
  report.detector_uj = cycles * active_banks * model.pd_pj_per_sample * 1e-6;
  return report;
}

}  // namespace safelight::accel
