#include "accel/slot.hpp"

#include "common/error.hpp"

namespace safelight::accel {

std::string SlotAddress::to_string() const {
  return safelight::accel::to_string(block) + "/u" + std::to_string(unit) +
         "/b" + std::to_string(bank) + "/m" + std::to_string(mr);
}

std::string BankAddress::to_string() const {
  return safelight::accel::to_string(block) + "/u" + std::to_string(unit) +
         "/b" + std::to_string(bank);
}

std::size_t slot_flat_index(const BlockDims& dims, const SlotAddress& addr) {
  require(addr.unit < dims.units && addr.bank < dims.banks_per_unit &&
              addr.mr < dims.mrs_per_bank,
          "slot_flat_index: address out of range: " + addr.to_string());
  return (addr.unit * dims.banks_per_unit + addr.bank) * dims.mrs_per_bank +
         addr.mr;
}

SlotAddress slot_from_flat(const BlockDims& dims, BlockKind block,
                           std::size_t flat) {
  require(flat < dims.slot_count(), "slot_from_flat: index out of range");
  SlotAddress addr;
  addr.block = block;
  addr.mr = flat % dims.mrs_per_bank;
  const std::size_t bank_flat = flat / dims.mrs_per_bank;
  addr.bank = bank_flat % dims.banks_per_unit;
  addr.unit = bank_flat / dims.banks_per_unit;
  return addr;
}

std::size_t bank_flat_index(const BlockDims& dims, const BankAddress& addr) {
  require(addr.unit < dims.units && addr.bank < dims.banks_per_unit,
          "bank_flat_index: address out of range: " + addr.to_string());
  return addr.unit * dims.banks_per_unit + addr.bank;
}

BankAddress bank_from_flat(const BlockDims& dims, BlockKind block,
                           std::size_t flat) {
  require(flat < dims.bank_count(), "bank_from_flat: index out of range");
  BankAddress addr;
  addr.block = block;
  addr.bank = flat % dims.banks_per_unit;
  addr.unit = flat / dims.banks_per_unit;
  return addr;
}

BankAddress bank_of_slot(const SlotAddress& addr) {
  return BankAddress{addr.block, addr.unit, addr.bank};
}

}  // namespace safelight::accel
