// Accelerator inference executor.
//
// The fast experiment path follows the paper's methodology: the simulator
// "modif[ies] the models' parameters based on their mapping to the ONN
// accelerator" and then runs inference. The executor owns the deployment
// conditioning (per-tensor normalization + DAC-resolution quantization of
// every MR-mapped weight) and, optionally, ADC-resolution quantization of
// the photodetected partial sums after each mapped layer. With attacks
// disabled the executor's output provably matches the pure software forward
// pass within quantizer resolution (integration-tested).
//
// Every forward entry point is a window [begin_layer, end_layer) over the
// same per-layer walk, so a pass split at any boundary is bitwise-identical
// to an unsplit pass. The attack sweep exploits this: activations of the
// layers *before* the first corrupted one are computed once per sweep
// (forward_prefix) and every scenario resumes from them (forward_from /
// evaluate_from) — see core::AttackEvaluator.
#pragma once

#include <functional>
#include <vector>

#include "accel/arch.hpp"
#include "nn/dataset.hpp"
#include "nn/sequential.hpp"

namespace safelight::accel {

/// Hook invoked after each MR-mapped layer's forward pass; used by attack
/// models that corrupt the electronic read-out (e.g. compromised ADCs) and
/// by defense monitors that sample it. Arguments: the layer's output tensor
/// (mutable), the block that computed it, and the ADC full-scale magnitude
/// chosen for the tensor.
using ReadoutHook =
    std::function<void(nn::Tensor&, BlockKind, float full_scale)>;

/// How a registered read-out hook interacts with the activations it sees.
/// The distinction drives the prefix-activation cache: a mutating hook
/// (ADC trojan payload) corrupts the outputs of clean layers too, so cached
/// clean activations would be wrong and the sweep must take the slow path.
/// An observing hook (range monitor, telemetry tap) leaves every tensor
/// untouched, so cached prefixes stay valid — but note that a prefix-cached
/// evaluation resumes after the cached boundary, so observers only see the
/// mapped layers at or after it.
enum class ReadoutHookKind { kMutating, kObserving };

struct ExecutorOptions {
  bool quantize_weights = true;      // DAC resolution on imprinted weights
  bool quantize_activations = false; // ADC resolution on mapped-layer outputs
};

class OnnExecutor {
 public:
  explicit OnnExecutor(AcceleratorConfig config, ExecutorOptions options = {});

  const AcceleratorConfig& config() const { return config_; }
  const ExecutorOptions& options() const { return options_; }

  /// Emulates weight deployment onto the MR banks: each conv/linear weight
  /// tensor is normalized by its abs-max and snapped to DAC resolution
  /// (in place). Electronic parameters are untouched.
  void condition_weights(nn::Sequential& model) const;

  /// Forward pass through the accelerator.
  nn::Tensor forward(nn::Sequential& model, const nn::Tensor& x) const;

  /// Forward through layers [0, end_layer) only; returns the boundary
  /// activation that forward_from resumes bitwise-identically from.
  nn::Tensor forward_prefix(nn::Sequential& model, const nn::Tensor& x,
                            std::size_t end_layer) const;

  /// Resumes a forward pass at begin_layer from a boundary activation.
  nn::Tensor forward_from(nn::Sequential& model, const nn::Tensor& h,
                          std::size_t begin_layer) const;

  /// Classification accuracy of `model` on `data` via this executor.
  double evaluate(nn::Sequential& model, const nn::Dataset& data,
                  std::size_t batch_size = 64) const;

  /// Boundary activations of every batch of `data` at end_layer, in batch
  /// order (the cacheable prefix of a sweep's evaluations). Batching must
  /// match the evaluate_from call that consumes them.
  std::vector<nn::Tensor> prefix_activations(nn::Sequential& model,
                                             const nn::Dataset& data,
                                             std::size_t end_layer,
                                             std::size_t batch_size = 64) const;

  /// evaluate(), but every batch's forward resumes at begin_layer from the
  /// matching entry of `prefix` (computed by prefix_activations with the
  /// same batch_size). Bitwise-identical to evaluate() whenever the layers
  /// before begin_layer are in the state the prefix was computed with.
  double evaluate_from(nn::Sequential& model, const nn::Dataset& data,
                       std::size_t begin_layer,
                       const std::vector<nn::Tensor>& prefix,
                       std::size_t batch_size = 64) const;

  /// Replaces the whole hook stack with one hook (or clears it, with
  /// nullptr). While any hook is installed, forward() walks the model layer
  /// by layer even when activation quantization is off. `kind` defaults to
  /// kMutating (the safe assumption); register monitors that never modify
  /// the tensor as kObserving so accuracy sweeps keep their
  /// prefix-activation cache.
  void set_readout_hook(ReadoutHook hook,
                        ReadoutHookKind kind = ReadoutHookKind::kMutating) {
    readout_hooks_.clear();
    if (hook) push_readout_hook(std::move(hook), kind);
  }

  /// Stacks a hook on top of the installed ones. Hooks run in push order
  /// after each mapped layer: mutating payloads (ADC trojans) first-pushed
  /// see the raw read-out, observers pushed on top see what the electronics
  /// downstream would — which is how campaign sweeps run defense monitors
  /// concurrently with an active read-out attack. Pop is strictly LIFO
  /// (ScopedObservingHook enforces it by scoping).
  void push_readout_hook(ReadoutHook hook,
                         ReadoutHookKind kind = ReadoutHookKind::kMutating) {
    readout_hooks_.push_back({std::move(hook), kind});
  }

  /// Removes the most recently pushed hook; throws when the stack is empty.
  void pop_readout_hook();

  bool has_readout_hook() const { return !readout_hooks_.empty(); }
  std::size_t readout_hook_count() const { return readout_hooks_.size(); }

  /// True when any installed hook may modify activations (the condition
  /// that invalidates cached clean prefixes; see core::AttackEvaluator).
  bool has_mutating_readout_hook() const {
    for (const auto& entry : readout_hooks_) {
      if (entry.kind == ReadoutHookKind::kMutating) return true;
    }
    return false;
  }

 private:
  /// Shared layer walk over [begin_layer, end_layer): plain forwards plus,
  /// per mapped layer, ADC quantization and the read-out hook when enabled.
  nn::Tensor walk(nn::Sequential& model, const nn::Tensor& h,
                  std::size_t begin_layer, std::size_t end_layer) const;

  /// Argmax-accuracy of `logits` rows against `labels`.
  static std::size_t count_correct(const nn::Tensor& logits,
                                   const std::vector<int>& labels);

  struct HookEntry {
    ReadoutHook hook;
    ReadoutHookKind kind = ReadoutHookKind::kMutating;
  };

  AcceleratorConfig config_;
  ExecutorOptions options_;
  std::vector<HookEntry> readout_hooks_;  // run in push order per layer
};

}  // namespace safelight::accel
