// Accelerator inference executor.
//
// The fast experiment path follows the paper's methodology: the simulator
// "modif[ies] the models' parameters based on their mapping to the ONN
// accelerator" and then runs inference. The executor owns the deployment
// conditioning (per-tensor normalization + DAC-resolution quantization of
// every MR-mapped weight) and, optionally, ADC-resolution quantization of
// the photodetected partial sums after each mapped layer. With attacks
// disabled the executor's output provably matches the pure software forward
// pass within quantizer resolution (integration-tested).
#pragma once

#include <functional>

#include "accel/arch.hpp"
#include "nn/dataset.hpp"
#include "nn/sequential.hpp"

namespace safelight::accel {

/// Hook invoked after each MR-mapped layer's forward pass; used by attack
/// models that corrupt the electronic read-out (e.g. compromised ADCs).
/// Arguments: the layer's output tensor (mutable), the block that computed
/// it, and the ADC full-scale magnitude chosen for the tensor.
using ReadoutHook =
    std::function<void(nn::Tensor&, BlockKind, float full_scale)>;

struct ExecutorOptions {
  bool quantize_weights = true;      // DAC resolution on imprinted weights
  bool quantize_activations = false; // ADC resolution on mapped-layer outputs
};

class OnnExecutor {
 public:
  explicit OnnExecutor(AcceleratorConfig config, ExecutorOptions options = {});

  const AcceleratorConfig& config() const { return config_; }
  const ExecutorOptions& options() const { return options_; }

  /// Emulates weight deployment onto the MR banks: each conv/linear weight
  /// tensor is normalized by its abs-max and snapped to DAC resolution
  /// (in place). Electronic parameters are untouched.
  void condition_weights(nn::Sequential& model) const;

  /// Forward pass through the accelerator.
  nn::Tensor forward(nn::Sequential& model, const nn::Tensor& x) const;

  /// Classification accuracy of `model` on `data` via this executor.
  double evaluate(nn::Sequential& model, const nn::Dataset& data,
                  std::size_t batch_size = 64) const;

  /// Installs (or clears, with nullptr) a read-out corruption hook. While a
  /// hook is installed, forward() walks the model layer by layer even when
  /// activation quantization is off.
  void set_readout_hook(ReadoutHook hook) { readout_hook_ = std::move(hook); }
  bool has_readout_hook() const { return static_cast<bool>(readout_hook_); }

 private:
  AcceleratorConfig config_;
  ExecutorOptions options_;
  ReadoutHook readout_hook_;
};

}  // namespace safelight::accel
