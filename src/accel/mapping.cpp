#include "accel/mapping.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace safelight::accel {

WeightStationaryMapping::WeightStationaryMapping(
    nn::Sequential& model, const AcceleratorConfig& config)
    : config_(config) {
  config_.validate();
  for (nn::Param* p : model.params()) {
    if (p->kind == nn::ParamKind::kConvWeight) {
      conv_ranges_.push_back(
          {p, conv_count_, conv_count_ + p->value.numel(), 0.0f});
      conv_count_ += p->value.numel();
    } else if (p->kind == nn::ParamKind::kLinearWeight) {
      fc_ranges_.push_back({p, fc_count_, fc_count_ + p->value.numel(), 0.0f});
      fc_count_ += p->value.numel();
    }
  }
  refresh_scales();
}

void WeightStationaryMapping::refresh_scales() {
  for (auto* ranges_ptr : {&conv_ranges_, &fc_ranges_}) {
    for (auto& range : *ranges_ptr) {
      range.scale = range.param->value.abs_max();
      if (range.scale == 0.0f) range.scale = 1.0f;  // all-zero tensor
    }
  }
}

const std::vector<WeightStationaryMapping::TensorRange>&
WeightStationaryMapping::ranges(BlockKind block) const {
  return block == BlockKind::kConv ? conv_ranges_ : fc_ranges_;
}

std::vector<WeightStationaryMapping::TensorRange>&
WeightStationaryMapping::ranges(BlockKind block) {
  return block == BlockKind::kConv ? conv_ranges_ : fc_ranges_;
}

std::size_t WeightStationaryMapping::weight_count(BlockKind block) const {
  return block == BlockKind::kConv ? conv_count_ : fc_count_;
}

std::size_t WeightStationaryMapping::passes(BlockKind block) const {
  const std::size_t count = weight_count(block);
  if (count == 0) return 0;
  const std::size_t slots = config_.block(block).slot_count();
  return (count + slots - 1) / slots;
}

SlotAddress WeightStationaryMapping::slot_of_weight(
    BlockKind block, std::size_t weight_index) const {
  require(weight_index < weight_count(block),
          "slot_of_weight: weight index out of range");
  const BlockDims& dims = config_.block(block);
  return slot_from_flat(dims, block, weight_index % dims.slot_count());
}

WeightRef WeightStationaryMapping::weight(BlockKind block,
                                          std::size_t weight_index) const {
  require(weight_index < weight_count(block),
          "weight: index out of range for block " + to_string(block));
  const auto& rs = ranges(block);
  // Ranges are sorted by construction; binary search the containing tensor.
  auto it = std::upper_bound(
      rs.begin(), rs.end(), weight_index,
      [](std::size_t idx, const TensorRange& r) { return idx < r.end; });
  SAFELIGHT_ASSERT(it != rs.end() && weight_index >= it->begin,
                   "weight: range lookup failed");
  return WeightRef{it->param, weight_index - it->begin};
}

std::vector<WeightRef> WeightStationaryMapping::weights_on_slot(
    const SlotAddress& addr) const {
  const BlockDims& dims = config_.block(addr.block);
  const std::size_t flat = slot_flat_index(dims, addr);
  const std::size_t count = weight_count(addr.block);
  std::vector<WeightRef> out;
  for (std::size_t w = flat; w < count; w += dims.slot_count()) {
    out.push_back(weight(addr.block, w));
  }
  return out;
}

std::vector<std::vector<WeightRef>> WeightStationaryMapping::bank_weights(
    const BankAddress& addr) const {
  const BlockDims& dims = config_.block(addr.block);
  const std::size_t bank_base =
      bank_flat_index(dims, addr) * dims.mrs_per_bank;
  const std::size_t count = weight_count(addr.block);
  const std::size_t pass_count = passes(addr.block);

  std::vector<std::vector<WeightRef>> out;
  for (std::size_t pass = 0; pass < pass_count; ++pass) {
    std::vector<WeightRef> group(dims.mrs_per_bank);
    bool any = false;
    for (std::size_t mr = 0; mr < dims.mrs_per_bank; ++mr) {
      const std::size_t w = pass * dims.slot_count() + bank_base + mr;
      if (w < count) {
        group[mr] = weight(addr.block, w);
        any = true;
      }
    }
    if (any) out.push_back(std::move(group));
  }
  return out;
}

float WeightStationaryMapping::scale_of(const nn::Param* param) const {
  for (const auto* ranges_ptr : {&conv_ranges_, &fc_ranges_}) {
    for (const auto& range : *ranges_ptr) {
      if (range.param == param) return range.scale;
    }
  }
  fail_argument("scale_of: parameter is not mapped onto MRs");
}

}  // namespace safelight::accel
