// Vector-dot-product (VDP) unit: the physically grounded compute tile.
//
// A VDP unit holds `banks_per_unit` MR banks on parallel waveguides; each
// bank computes one dot product of length mrs_per_bank and a photodetector
// per bank sums the WDM channels (paper Fig. 3). This class is the
// device-level reference model: integration tests validate that the fast
// experiment path (direct weight-tensor corruption) agrees with it, and the
// examples use it to demonstrate the attack mechanics of Figs. 4 and 5.
#pragma once

#include <vector>

#include "accel/arch.hpp"
#include "photonics/wdm.hpp"

namespace safelight::accel {

class VdpUnit {
 public:
  VdpUnit(std::size_t banks_per_unit, std::size_t mrs_per_bank,
          const phot::MrGeometry& geometry, double center_nm,
          phot::WeightEncoding encoding = {});

  std::size_t bank_count() const { return banks_.size(); }
  std::size_t width() const { return width_; }

  /// Imprints a weight matrix [banks][mrs]; |w| <= 1 (normalized).
  void set_weights(const std::vector<std::vector<double>>& weights);

  /// Matrix-vector product: one dot product per bank.
  std::vector<double> multiply(const std::vector<double>& activations) const;

  phot::MrBank& bank(std::size_t i);
  const phot::MrBank& bank(std::size_t i) const;

  const phot::WdmGrid& grid() const { return grid_; }

 private:
  std::size_t width_;
  phot::WdmGrid grid_;
  std::vector<phot::MrBank> banks_;
};

}  // namespace safelight::accel
