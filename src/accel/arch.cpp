#include "accel/arch.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace safelight::accel {

std::string to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::kConv: return "CONV";
    case BlockKind::kFc: break;
  }
  return "FC";
}

void BlockDims::validate() const {
  require(units > 0 && banks_per_unit > 0 && mrs_per_bank > 0,
          "BlockDims: all dimensions must be positive");
}

void AcceleratorConfig::validate() const {
  conv.validate();
  fc.validate();
  conv_mr.validate();
  fc_mr.validate();
  encoding.validate();
  require(center_wavelength_nm > 1000.0 && center_wavelength_nm < 2000.0,
          "AcceleratorConfig: center wavelength must be near-IR");
  require(dac_bits >= 2 && dac_bits <= 24,
          "AcceleratorConfig: DAC bits out of range");
  require(adc_bits >= 2 && adc_bits <= 24,
          "AcceleratorConfig: ADC bits out of range");
}

const BlockDims& AcceleratorConfig::block(BlockKind kind) const {
  return kind == BlockKind::kConv ? conv : fc;
}

const phot::MrGeometry& AcceleratorConfig::geometry(BlockKind kind) const {
  return kind == BlockKind::kConv ? conv_mr : fc_mr;
}

phot::WdmGrid AcceleratorConfig::bank_grid(BlockKind kind) const {
  const phot::Microring reference(geometry(kind), center_wavelength_nm);
  return phot::WdmGrid(block(kind).mrs_per_bank, center_wavelength_nm,
                       reference.fsr_nm());
}

AcceleratorConfig AcceleratorConfig::crosslight() {
  AcceleratorConfig config;  // defaults are the paper-scale dimensions
  config.fc_mr.q_factor = phot::kHighQ;
  config.validate();
  return config;
}

AcceleratorConfig AcceleratorConfig::scaled(std::size_t factor) {
  require(factor >= 1, "AcceleratorConfig::scaled: factor must be >= 1");
  AcceleratorConfig config = crosslight();
  config.conv.units = std::max<std::size_t>(1, config.conv.units / factor);
  config.fc.units = std::max<std::size_t>(1, config.fc.units / factor);
  config.validate();
  return config;
}

}  // namespace safelight::accel
