// Weight-stationary mapping of a CNN onto the accelerator's MR slots.
//
// All conv-layer weights (concatenated in layer order) stream into the CONV
// block's slots; FC weights stream into the FC block. A model with more
// weights than slots wraps around into additional *passes*: the same
// physical MR serves weight w, w + slots, w + 2*slots, ... over time
// (paper §IV: "All layers of the models were mapped using a
// weight-stationary approach" and large models require "multiple mappings
// for each layer onto the ONN accelerator"). A compromised MR therefore
// corrupts one weight per pass — the mechanism behind the paper's finding
// that VGG16_v degrades catastrophically.
//
// Biases and batch-norm parameters stay in the electronic domain and are
// never mapped (ParamKind::kElectronic).
#pragma once

#include <cstddef>
#include <vector>

#include "accel/slot.hpp"
#include "nn/sequential.hpp"

namespace safelight::accel {

/// Reference to one scalar weight inside a model.
struct WeightRef {
  nn::Param* param = nullptr;
  std::size_t offset = 0;  // flat index into param->value

  float read() const { return param->value[offset]; }
  void write(float v) const { param->value[offset] = v; }
};

class WeightStationaryMapping {
 public:
  /// Collects the model's MR-mapped weights. The mapping holds raw Param
  /// pointers; the model must outlive it.
  WeightStationaryMapping(nn::Sequential& model,
                          const AcceleratorConfig& config);

  const AcceleratorConfig& config() const { return config_; }

  std::size_t weight_count(BlockKind block) const;

  /// Number of temporal passes needed for a block (>= 1 when any weights
  /// exist, 0 for an unused block).
  std::size_t passes(BlockKind block) const;

  /// Slot serving mapped-weight index `w` of `block` (w < weight_count).
  SlotAddress slot_of_weight(BlockKind block, std::size_t weight_index) const;

  /// All weights served by a slot across passes (empty when the slot is
  /// beyond the last partial pass).
  std::vector<WeightRef> weights_on_slot(const SlotAddress& addr) const;

  /// All weights served by a bank, as mrs_per_bank groups in channel order:
  /// result[pass] = the bank's weight vector for that pass (entries may be
  /// missing in the final partial pass; missing slots carry param==nullptr).
  std::vector<std::vector<WeightRef>> bank_weights(
      const BankAddress& addr) const;

  /// The weight reference for a mapped index.
  WeightRef weight(BlockKind block, std::size_t weight_index) const;

  /// Per-tensor normalization scale (max |w|) used when imprinting; scales
  /// are captured at construction and after each refresh().
  float scale_of(const nn::Param* param) const;

  /// Re-captures normalization scales (call after retraining / reloading).
  void refresh_scales();

 private:
  struct TensorRange {
    nn::Param* param;
    std::size_t begin;  // inclusive, in block-concatenated weight space
    std::size_t end;    // exclusive
    float scale;        // max |w| captured at refresh
  };

  const std::vector<TensorRange>& ranges(BlockKind block) const;
  std::vector<TensorRange>& ranges(BlockKind block);

  AcceleratorConfig config_;
  std::vector<TensorRange> conv_ranges_;
  std::vector<TensorRange> fc_ranges_;
  std::size_t conv_count_ = 0;
  std::size_t fc_count_ = 0;
};

}  // namespace safelight::accel
