#include "accel/executor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace safelight::accel {

OnnExecutor::OnnExecutor(AcceleratorConfig config, ExecutorOptions options)
    : config_(std::move(config)), options_(options) {
  config_.validate();
}

void OnnExecutor::pop_readout_hook() {
  require(!readout_hooks_.empty(),
          "OnnExecutor::pop_readout_hook: hook stack is empty");
  readout_hooks_.pop_back();
}

void OnnExecutor::condition_weights(nn::Sequential& model) const {
  if (!options_.quantize_weights) return;
  const phot::Dac dac(
      phot::QuantizerConfig{config_.dac_bits, -1.0, 1.0});
  for (nn::Param* p : model.params()) {
    if (p->kind == nn::ParamKind::kElectronic) continue;
    float scale = p->value.abs_max();
    if (scale == 0.0f) continue;
    // One divide per tensor, not per element: the per-element work inside
    // every quantized pass is a multiply by the reciprocal.
    const double inv_scale = 1.0 / static_cast<double>(scale);
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const double normalized = static_cast<double>(p->value[i]) * inv_scale;
      p->value[i] = static_cast<float>(dac.quantize(normalized) * scale);
    }
  }
}

namespace {

bool layer_is_mapped(nn::Layer& layer) {
  for (nn::Param* p : layer.params()) {
    if (p->kind != nn::ParamKind::kElectronic) return true;
  }
  return false;
}

/// Which block computed this layer: conv weights -> CONV, else FC.
BlockKind layer_block(nn::Layer& layer) {
  for (nn::Param* p : layer.params()) {
    if (p->kind == nn::ParamKind::kConvWeight) return BlockKind::kConv;
  }
  return BlockKind::kFc;
}

void quantize_activations(nn::Tensor& t, const phot::Adc& adc) {
  float scale = t.abs_max();
  if (scale == 0.0f) return;
  const double inv_scale = 1.0 / static_cast<double>(scale);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double normalized = static_cast<double>(t[i]) * inv_scale;
    t[i] = static_cast<float>(adc.quantize(normalized) * scale);
  }
}

}  // namespace

nn::Tensor OnnExecutor::walk(nn::Sequential& model, const nn::Tensor& h,
                             std::size_t begin_layer,
                             std::size_t end_layer) const {
  require(begin_layer <= end_layer && end_layer <= model.size(),
          "OnnExecutor::walk: layer window out of range");
  if (!options_.quantize_activations && readout_hooks_.empty()) {
    if (end_layer == model.size()) {
      return model.forward_from(begin_layer, h, /*train=*/false);
    }
    nn::Tensor cur = h;
    for (std::size_t i = begin_layer; i < end_layer; ++i) {
      cur = model.layer(i).forward(cur, /*train=*/false);
    }
    return cur;
  }
  const phot::Adc adc(phot::QuantizerConfig{config_.adc_bits, -1.0, 1.0});
  nn::Tensor cur = h;
  for (std::size_t i = begin_layer; i < end_layer; ++i) {
    nn::Layer& layer = model.layer(i);
    cur = layer.forward(cur, /*train=*/false);
    if (!layer_is_mapped(layer)) continue;
    if (options_.quantize_activations) quantize_activations(cur, adc);
    for (const HookEntry& entry : readout_hooks_) {
      entry.hook(cur, layer_block(layer), cur.abs_max());
    }
  }
  return cur;
}

nn::Tensor OnnExecutor::forward(nn::Sequential& model,
                                const nn::Tensor& x) const {
  return walk(model, x, 0, model.size());
}

nn::Tensor OnnExecutor::forward_prefix(nn::Sequential& model,
                                       const nn::Tensor& x,
                                       std::size_t end_layer) const {
  return walk(model, x, 0, end_layer);
}

nn::Tensor OnnExecutor::forward_from(nn::Sequential& model,
                                     const nn::Tensor& h,
                                     std::size_t begin_layer) const {
  return walk(model, h, begin_layer, model.size());
}

std::size_t OnnExecutor::count_correct(const nn::Tensor& logits,
                                       const std::vector<int>& labels) {
  require(logits.rank() == 2, "OnnExecutor: output must be [N,C]");
  const std::size_t classes = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t n = 0; n < labels.size(); ++n) {
    const float* row = logits.data() + n * classes;
    const auto pred = static_cast<int>(
        std::max_element(row, row + classes) - row);
    if (pred == labels[n]) ++correct;
  }
  return correct;
}

double OnnExecutor::evaluate(nn::Sequential& model, const nn::Dataset& data,
                             std::size_t batch_size) const {
  require(data.size() > 0, "OnnExecutor::evaluate: empty dataset");
  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(data.size(), begin + batch_size);
    auto [images, labels] = data.batch(begin, end);
    const nn::Tensor logits = forward(model, images);
    correct += count_correct(logits, labels);
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<nn::Tensor> OnnExecutor::prefix_activations(
    nn::Sequential& model, const nn::Dataset& data, std::size_t end_layer,
    std::size_t batch_size) const {
  require(data.size() > 0, "OnnExecutor::prefix_activations: empty dataset");
  std::vector<nn::Tensor> prefix;
  prefix.reserve((data.size() + batch_size - 1) / batch_size);
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(data.size(), begin + batch_size);
    auto [images, labels] = data.batch(begin, end);
    (void)labels;
    prefix.push_back(forward_prefix(model, images, end_layer));
  }
  return prefix;
}

double OnnExecutor::evaluate_from(nn::Sequential& model,
                                  const nn::Dataset& data,
                                  std::size_t begin_layer,
                                  const std::vector<nn::Tensor>& prefix,
                                  std::size_t batch_size) const {
  require(data.size() > 0, "OnnExecutor::evaluate_from: empty dataset");
  require(prefix.size() == (data.size() + batch_size - 1) / batch_size,
          "OnnExecutor::evaluate_from: prefix/batch count mismatch");
  std::size_t correct = 0;
  std::size_t batch_index = 0;
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(data.size(), begin + batch_size);
    // Only the labels are needed: the images were already consumed when the
    // prefix was computed, so slicing avoids a per-batch image-tensor copy.
    const std::vector<int> labels(
        data.labels.begin() + static_cast<std::ptrdiff_t>(begin),
        data.labels.begin() + static_cast<std::ptrdiff_t>(end));
    const nn::Tensor logits =
        forward_from(model, prefix[batch_index++], begin_layer);
    correct += count_correct(logits, labels);
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace safelight::accel
