#include "accel/executor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace safelight::accel {

OnnExecutor::OnnExecutor(AcceleratorConfig config, ExecutorOptions options)
    : config_(std::move(config)), options_(options) {
  config_.validate();
}

void OnnExecutor::condition_weights(nn::Sequential& model) const {
  if (!options_.quantize_weights) return;
  const phot::Dac dac(
      phot::QuantizerConfig{config_.dac_bits, -1.0, 1.0});
  for (nn::Param* p : model.params()) {
    if (p->kind == nn::ParamKind::kElectronic) continue;
    float scale = p->value.abs_max();
    if (scale == 0.0f) continue;
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const double normalized = p->value[i] / scale;
      p->value[i] = static_cast<float>(dac.quantize(normalized) * scale);
    }
  }
}

namespace {

bool layer_is_mapped(nn::Layer& layer) {
  for (nn::Param* p : layer.params()) {
    if (p->kind != nn::ParamKind::kElectronic) return true;
  }
  return false;
}

/// Which block computed this layer: conv weights -> CONV, else FC.
BlockKind layer_block(nn::Layer& layer) {
  for (nn::Param* p : layer.params()) {
    if (p->kind == nn::ParamKind::kConvWeight) return BlockKind::kConv;
  }
  return BlockKind::kFc;
}

void quantize_activations(nn::Tensor& t, const phot::Adc& adc) {
  float scale = t.abs_max();
  if (scale == 0.0f) return;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double normalized = t[i] / scale;
    t[i] = static_cast<float>(adc.quantize(normalized) * scale);
  }
}

}  // namespace

nn::Tensor OnnExecutor::forward(nn::Sequential& model,
                                const nn::Tensor& x) const {
  if (!options_.quantize_activations && !readout_hook_) {
    return model.forward(x, /*train=*/false);
  }
  const phot::Adc adc(phot::QuantizerConfig{config_.adc_bits, -1.0, 1.0});
  nn::Tensor h = x;
  for (std::size_t i = 0; i < model.size(); ++i) {
    nn::Layer& layer = model.layer(i);
    h = layer.forward(h, /*train=*/false);
    if (!layer_is_mapped(layer)) continue;
    if (options_.quantize_activations) quantize_activations(h, adc);
    if (readout_hook_) {
      readout_hook_(h, layer_block(layer), h.abs_max());
    }
  }
  return h;
}

double OnnExecutor::evaluate(nn::Sequential& model, const nn::Dataset& data,
                             std::size_t batch_size) const {
  require(data.size() > 0, "OnnExecutor::evaluate: empty dataset");
  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(data.size(), begin + batch_size);
    auto [images, labels] = data.batch(begin, end);
    const nn::Tensor logits = forward(model, images);
    require(logits.rank() == 2, "OnnExecutor::evaluate: output must be [N,C]");
    const std::size_t classes = logits.dim(1);
    for (std::size_t n = 0; n < labels.size(); ++n) {
      const float* row = logits.data() + n * classes;
      const auto pred = static_cast<int>(
          std::max_element(row, row + classes) - row);
      if (pred == labels[n]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace safelight::accel
