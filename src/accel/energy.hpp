// First-order energy / latency model of the accelerator.
//
// CrossLight's pitch is performance-per-watt; this model gives SafeLight a
// comparable accounting so benches can report the (unchanged) energy cost of
// the software mitigations versus hypothetical hardware countermeasures.
// Parameters follow the paper's §II.B device figures (EO ~4 uW/nm,
// TO ~27 mW/FSR) and typical 28 nm mixed-signal converter energies.
#pragma once

#include <cstddef>

#include "accel/arch.hpp"
#include "nn/sequential.hpp"
#include "nn/tensor.hpp"

namespace safelight::accel {

/// MAC counts of one inference, split by block.
struct MacCounts {
  std::size_t conv_macs = 0;
  std::size_t fc_macs = 0;

  std::size_t total() const { return conv_macs + fc_macs; }
};

/// Walks the model with a sample input shape and counts MACs per block.
MacCounts count_macs(nn::Sequential& model, const nn::Shape& input_shape);

struct EnergyModel {
  double laser_mw_per_channel = 1.0;
  double laser_wall_plug_efficiency = 0.2;
  double eo_actuation_uw_per_mr = 4.0;   // holding an imprint
  double to_bias_mw_per_mr = 0.27;       // static thermal trim (1% FSR avg)
  double dac_pj_per_conversion = 0.8;
  double adc_pj_per_conversion = 2.6;
  double pd_pj_per_sample = 0.2;
  double clock_ghz = 5.0;                // symbol rate per bank
};

struct EnergyReport {
  double latency_us = 0.0;
  double laser_uj = 0.0;
  double tuning_uj = 0.0;
  double converter_uj = 0.0;
  double detector_uj = 0.0;

  double total_uj() const {
    return laser_uj + tuning_uj + converter_uj + detector_uj;
  }
  double macs_per_nj(std::size_t macs) const;
};

/// Estimates one inference on the given accelerator configuration.
EnergyReport estimate_inference(const MacCounts& macs,
                                const AcceleratorConfig& config,
                                const EnergyModel& model = {});

}  // namespace safelight::accel
