#include "accel/vdp.hpp"

#include "common/error.hpp"

namespace safelight::accel {

namespace {

phot::WdmGrid make_grid(std::size_t channels, const phot::MrGeometry& geometry,
                        double center_nm) {
  // Derive the FSR from a reference ring so the channel spacing matches the
  // device geometry (all rings in a bank share the design).
  const phot::Microring reference(geometry, center_nm);
  return phot::WdmGrid(channels, center_nm, reference.fsr_nm());
}

}  // namespace

VdpUnit::VdpUnit(std::size_t banks_per_unit, std::size_t mrs_per_bank,
                 const phot::MrGeometry& geometry, double center_nm,
                 phot::WeightEncoding encoding)
    : width_(mrs_per_bank), grid_(make_grid(mrs_per_bank, geometry,
                                            center_nm)) {
  require(banks_per_unit > 0, "VdpUnit: need at least one bank");
  banks_.reserve(banks_per_unit);
  for (std::size_t b = 0; b < banks_per_unit; ++b) {
    banks_.emplace_back(geometry, grid_, encoding);
  }
}

void VdpUnit::set_weights(const std::vector<std::vector<double>>& weights) {
  require(weights.size() == banks_.size(),
          "VdpUnit::set_weights: expected " + std::to_string(banks_.size()) +
              " bank rows");
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    banks_[b].set_weights(weights[b]);
  }
}

std::vector<double> VdpUnit::multiply(
    const std::vector<double>& activations) const {
  require(activations.size() == width_,
          "VdpUnit::multiply: activation length mismatch");
  std::vector<double> out(banks_.size());
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    out[b] = banks_[b].dot_product(activations);
  }
  return out;
}

phot::MrBank& VdpUnit::bank(std::size_t i) {
  require(i < banks_.size(), "VdpUnit::bank: index out of range");
  return banks_[i];
}

const phot::MrBank& VdpUnit::bank(std::size_t i) const {
  require(i < banks_.size(), "VdpUnit::bank: index out of range");
  return banks_[i];
}

}  // namespace safelight::accel
