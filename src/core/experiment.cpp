#include "core/experiment.hpp"

#include <chrono>

#include "common/csv.hpp"
#include "common/json.hpp"

namespace safelight::core {

namespace {

std::string scenario_vector_cell(const DetectionRow& row) {
  return row.clean ? "" : attack::to_string(row.scenario.vector);
}

std::string scenario_target_cell(const DetectionRow& row) {
  return row.clean ? "" : attack::to_string(row.scenario.target);
}

std::string scenario_fraction_cell(const DetectionRow& row) {
  return row.clean ? "0" : fmt_double(row.scenario.fraction, 2);
}

std::string scenario_seed_cell(const DetectionRow& row) {
  return row.clean ? "" : std::to_string(row.scenario.seed);
}

// ---------------------------------------------------------------------------
// CSV serialization. Row formats are byte-identical to the per-figure bench
// binaries these documents replaced (and are golden-pinned at tiny scale);
// change them only together with tests/golden/.
// ---------------------------------------------------------------------------

std::vector<CsvDocument> csv_of(const ExperimentSpec& spec,
                                const SusceptibilityReport& report) {
  CsvDocument doc;
  doc.file_stem = "fig7_susceptibility";
  doc.header = {"model", "vector",   "target",  "fraction",
                "seed",  "accuracy", "baseline"};
  const std::string model = nn::to_string(spec.model);
  for (const auto& row : report.rows) {
    doc.rows.push_back({model, attack::to_string(row.scenario.vector),
                        attack::to_string(row.scenario.target),
                        fmt_double(row.scenario.fraction, 2),
                        std::to_string(row.scenario.seed),
                        fmt_double(row.accuracy, 4),
                        fmt_double(report.baseline_accuracy, 4)});
  }
  return {doc};
}

std::vector<CsvDocument> csv_of(const ExperimentSpec& spec,
                                const MitigationReport& report) {
  CsvDocument doc;
  doc.file_stem = "fig8_mitigation";
  doc.header = {"model", "variant", "baseline", "min", "q1",
                "median", "q3",     "max",      "mean"};
  const std::string model = nn::to_string(spec.model);
  for (const auto& outcome : report.outcomes) {
    doc.rows.push_back({model, outcome.variant.name,
                        fmt_double(outcome.baseline_accuracy, 4),
                        fmt_double(outcome.under_attack.min, 4),
                        fmt_double(outcome.under_attack.q1, 4),
                        fmt_double(outcome.under_attack.median, 4),
                        fmt_double(outcome.under_attack.q3, 4),
                        fmt_double(outcome.under_attack.max, 4),
                        fmt_double(outcome.under_attack.mean, 4)});
  }
  return {doc};
}

std::vector<CsvDocument> csv_of(const ExperimentSpec& spec,
                                const RobustComparisonReport& report) {
  CsvDocument doc;
  doc.file_stem = "fig9_robust";
  doc.header = {"model",      "robust_variant", "vector",
                "fraction",   "orig_min",       "orig_max",
                "robust_min", "robust_max",     "recovered_worst_case"};
  const std::string model = nn::to_string(spec.model);
  for (const auto& cell : report.cells) {
    doc.rows.push_back(
        {model, report.robust_variant_name, attack::to_string(cell.vector),
         fmt_double(cell.fraction, 2), fmt_double(cell.original.min, 4),
         fmt_double(cell.original.max, 4), fmt_double(cell.robust.min, 4),
         fmt_double(cell.robust.max, 4), fmt_double(cell.recovered(), 4)});
  }
  return {doc};
}

std::vector<CsvDocument> csv_of(const ExperimentSpec& spec,
                                const DetectionReport& report) {
  CsvDocument scores;
  scores.file_stem = "fig_detection";
  scores.header = {"model",    "run",   "clean",   "vector",
                   "target",   "fraction", "seed", "detector",
                   "score",    "flagged",  "probes", "first_flag_probe"};
  const std::string model = nn::to_string(spec.model);
  for (const auto& row : report.rows) {
    scores.rows.push_back(
        {model, row.run_id, row.clean ? "1" : "0", scenario_vector_cell(row),
         scenario_target_cell(row), scenario_fraction_cell(row),
         scenario_seed_cell(row), row.detector, fmt_double(row.score, 6),
         row.flagged ? "1" : "0", std::to_string(row.probes),
         std::to_string(row.first_flag_probe)});
  }

  CsvDocument roc;
  roc.file_stem = "fig_detection_roc";
  roc.header = {"model", "detector", "threshold", "tpr", "fpr"};
  for (const std::string& detector : report.detectors) {
    const RocCurve curve = report.roc(detector);
    for (const auto& point : curve.points) {
      roc.rows.push_back({model, detector, fmt_double(point.threshold, 6),
                          fmt_double(point.tpr, 4), fmt_double(point.fpr, 4)});
    }
  }
  return {scores, roc};
}

std::vector<CsvDocument> csv_of(const ExperimentSpec& spec,
                                const CampaignSweepReport& report) {
  CsvDocument phases;
  phases.file_stem = "fig_campaign_phases";
  phases.header = {"model",  "campaign", "phase",    "name", "active",
                   "checks", "accuracy", "baseline", "drop"};
  CsvDocument cells;
  cells.file_stem = "fig_campaign";
  cells.header = {"model", "campaign", "phase",   "check",
                  "detector", "score", "flagged"};
  const std::string model = nn::to_string(spec.model);
  for (const auto& result : report.campaigns) {
    for (std::size_t pi = 0; pi < result.phases.size(); ++pi) {
      const auto& phase = result.phases[pi];
      phases.rows.push_back(
          {model, result.campaign, std::to_string(pi), phase.name,
           phase.active ? "1" : "0", std::to_string(phase.checks),
           fmt_double(phase.accuracy, 4),
           fmt_double(result.baseline_accuracy, 4),
           fmt_double(result.accuracy_drop(pi), 4)});
    }
    for (const auto& cell : result.cells) {
      cells.rows.push_back({model, result.campaign, std::to_string(cell.phase),
                            std::to_string(cell.check), cell.detector,
                            fmt_double(cell.score, 6),
                            cell.flagged ? "1" : "0"});
    }
  }
  return {phases, cells};
}

// ---------------------------------------------------------------------------
// JSON serialization. Deterministic by construction: fixed key order, fixed
// double precision, no wall-clock or cache-hit fields (those stay on
// stdout); the susceptibility document is golden-pinned at tiny scale.
// ---------------------------------------------------------------------------

void box_stats_json(JsonWriter& json, const BoxStats& stats) {
  json.begin_object();
  json.key("min").value(stats.min);
  json.key("q1").value(stats.q1);
  json.key("median").value(stats.median);
  json.key("q3").value(stats.q3);
  json.key("max").value(stats.max);
  json.key("mean").value(stats.mean);
  json.end_object();
}

void json_of(JsonWriter& json, const SusceptibilityReport& report) {
  json.key("baseline_accuracy").value(report.baseline_accuracy);
  json.key("rows").begin_array();
  for (const auto& row : report.rows) {
    json.begin_object();
    json.key("vector").value(attack::to_string(row.scenario.vector));
    json.key("target").value(attack::to_string(row.scenario.target));
    json.key("fraction").value(row.scenario.fraction, 2);
    json.key("seed").value(static_cast<std::uint64_t>(row.scenario.seed));
    json.key("accuracy").value(row.accuracy);
    json.end_object();
  }
  json.end_array();
  json.key("groups").begin_array();
  for (const auto& group : report.groups) {
    json.begin_object();
    json.key("vector").value(attack::to_string(group.vector));
    json.key("target").value(attack::to_string(group.target));
    json.key("fraction").value(group.fraction, 2);
    json.key("accuracy");
    box_stats_json(json, group.accuracy);
    json.key("worst_drop").value(report.baseline_accuracy -
                                 group.accuracy.min);
    json.end_object();
  }
  json.end_array();
}

void json_of(JsonWriter& json, const MitigationReport& report) {
  json.key("original_baseline").value(report.original_baseline);
  json.key("best_robust").value(report.best_robust().variant.name);
  json.key("outcomes").begin_array();
  for (const auto& outcome : report.outcomes) {
    json.begin_object();
    json.key("variant").value(outcome.variant.name);
    json.key("baseline_accuracy").value(outcome.baseline_accuracy);
    json.key("under_attack");
    box_stats_json(json, outcome.under_attack);
    json.end_object();
  }
  json.end_array();
}

void json_of(JsonWriter& json, const RobustComparisonReport& report) {
  json.key("robust_variant").value(report.robust_variant_name);
  json.key("original_baseline").value(report.original_baseline);
  json.key("robust_baseline").value(report.robust_baseline);
  json.key("cells").begin_array();
  for (const auto& cell : report.cells) {
    json.begin_object();
    json.key("vector").value(attack::to_string(cell.vector));
    json.key("fraction").value(cell.fraction, 2);
    json.key("original");
    box_stats_json(json, cell.original);
    json.key("robust");
    box_stats_json(json, cell.robust);
    json.key("original_drop").value(
        cell.original_drop(report.original_baseline));
    json.key("recovered").value(cell.recovered());
    json.end_object();
  }
  json.end_array();
}

void json_of(JsonWriter& json, const DetectionReport& report) {
  json.key("variant").value(report.variant);
  json.key("clean_runs").value(report.clean_runs);
  json.key("detectors").begin_array();
  for (const std::string& name : report.detectors) json.value(name);
  json.end_array();
  json.key("rows").begin_array();
  for (const auto& row : report.rows) {
    json.begin_object();
    json.key("run").value(row.run_id);
    json.key("clean").value(row.clean);
    if (!row.clean) {
      json.key("vector").value(attack::to_string(row.scenario.vector));
      json.key("target").value(attack::to_string(row.scenario.target));
      json.key("fraction").value(row.scenario.fraction, 2);
      json.key("seed").value(static_cast<std::uint64_t>(row.scenario.seed));
    }
    json.key("detector").value(row.detector);
    json.key("score").value(row.score);
    json.key("flagged").value(row.flagged);
    json.key("probes").value(row.probes);
    json.key("first_flag_probe").value(row.first_flag_probe);
    json.end_object();
  }
  json.end_array();
  json.key("roc").begin_array();
  for (const std::string& detector : report.detectors) {
    const RocCurve curve = report.roc(detector);
    json.begin_object();
    json.key("detector").value(detector);
    json.key("auc").value(curve.auc);
    json.key("points").begin_array();
    for (const auto& point : curve.points) {
      json.begin_object();
      json.key("threshold").value(point.threshold);
      json.key("tpr").value(point.tpr, 4);
      json.key("fpr").value(point.fpr, 4);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
}

void json_of(JsonWriter& json, const CampaignSweepReport& report) {
  json.key("variant").value(report.variant);
  json.key("campaigns").begin_array();
  for (const auto& result : report.campaigns) {
    bool has_active = false;
    for (const auto& phase : result.phases) {
      has_active = has_active || phase.active;
    }
    json.begin_object();
    json.key("campaign").value(result.campaign);
    json.key("campaign_id").value(result.campaign_id);
    json.key("baseline_accuracy").value(result.baseline_accuracy);
    json.key("phases").begin_array();
    for (std::size_t pi = 0; pi < result.phases.size(); ++pi) {
      const auto& phase = result.phases[pi];
      json.begin_object();
      json.key("name").value(phase.name);
      json.key("active").value(phase.active);
      json.key("checks").value(phase.checks);
      json.key("accuracy").value(phase.accuracy);
      json.key("drop").value(result.accuracy_drop(pi));
      json.end_object();
    }
    json.end_array();
    json.key("detectors").begin_array();
    for (const std::string& detector : result.detectors) {
      json.begin_object();
      json.key("detector").value(detector);
      json.key("evasion_rate");
      // A dormant-only campaign has no active phase to evade.
      if (has_active) {
        json.value(result.evasion_rate(detector));
      } else {
        json.null_value();
      }
      json.key("latency_checks")
          .value(result.detection_latency_checks(detector));
      json.end_object();
    }
    json.end_array();
    json.key("cells").begin_array();
    for (const auto& cell : result.cells) {
      json.begin_object();
      json.key("phase").value(cell.phase);
      json.key("check").value(cell.check);
      json.key("detector").value(cell.detector);
      json.key("score").value(cell.score);
      json.key("flagged").value(cell.flagged);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
}

}  // namespace

ExperimentSetup ExperimentSpec::resolved_setup() const {
  if (setup) return *setup;
  return experiment_setup(model, scale);
}

VariantSpec ExperimentSpec::resolved_variant() const {
  if (variant_override) return *variant_override;
  return variant_by_name(variant, l2_strength);
}

void ExperimentSpec::validate() const {
  require(seed_count >= 1,
          "ExperimentSpec: seed_count must be >= 1 (got " +
              std::to_string(seed_count) +
              "); start from ExperimentRegistry::default_spec(\"" +
              experiment + "\") or set it explicitly");
  require(clean_runs >= 1,
          "ExperimentSpec: clean_runs must be >= 1 — the detection sweep "
          "needs clean deployments for its ROC negative class");
  // Unknown variant names throw here (with the valid names listed) instead
  // of deep inside a sweep after minutes of training. A full override is
  // taken as-is (it needs no name lookup), it just must be nameable.
  if (variant_override) {
    require(!variant_override->name.empty(),
            "ExperimentSpec: variant_override needs a non-empty name "
            "(it keys zoo and result-store entries)");
  } else {
    variant_by_name(variant, l2_strength);
  }
  if (!robust_variant.empty()) variant_by_name(robust_variant, l2_strength);
}

ExperimentResult ExperimentRegistry::run(const ExperimentSpec& spec,
                                         RunContext& context) const {
  const ExperimentInfo& entry = info(spec.experiment);
  spec.validate();
  context.throw_if_cancelled(spec.experiment);
  const auto start = std::chrono::steady_clock::now();
  ExperimentResult result = entry.run(spec, context);
  result.experiment = spec.experiment;
  result.spec = spec;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

void ExperimentRegistry::add(ExperimentInfo info) {
  require(!info.name.empty(), "ExperimentRegistry: experiment needs a name");
  require(static_cast<bool>(info.run),
          "ExperimentRegistry: experiment '" + info.name +
              "' needs a run function");
  require(!contains(info.name),
          "ExperimentRegistry: experiment '" + info.name +
              "' is already registered");
  experiments_.push_back(std::move(info));
}

std::vector<std::string> ExperimentRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const auto& entry : experiments_) out.push_back(entry.name);
  return out;
}

bool ExperimentRegistry::contains(const std::string& name) const {
  for (const auto& entry : experiments_) {
    if (entry.name == name) return true;
  }
  return false;
}

const ExperimentInfo& ExperimentRegistry::info(const std::string& name) const {
  for (const auto& entry : experiments_) {
    if (entry.name == name) return entry;
  }
  std::string known;
  for (const auto& entry : experiments_) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  fail_argument("ExperimentRegistry: unknown experiment '" + name +
                "' (registered: " + known + ")");
}

ExperimentSpec ExperimentRegistry::default_spec(const std::string& name) const {
  const ExperimentInfo& entry = info(name);
  ExperimentSpec spec;
  spec.experiment = entry.name;
  spec.seed_count = entry.default_seed_count;
  return spec;
}

ExperimentSpec ExperimentRegistry::default_spec(
    const std::string& name, const ExperimentSetup& setup) const {
  ExperimentSpec spec = default_spec(name);
  spec.model = setup.model;
  spec.scale = setup.scale;
  spec.setup = setup;
  return spec;
}

ExperimentRegistry& ExperimentRegistry::global() {
  static ExperimentRegistry* registry = [] {
    auto* r = new ExperimentRegistry();
    r->add({"susceptibility",
            "attack grid vs. the Original variant (Fig. 7)",
            /*default_seed_count=*/10,
            {"fig7_susceptibility"},
            run_susceptibility_experiment});
    r->add({"mitigation",
            "all 11 training variants under the attack grid (Fig. 8)",
            /*default_seed_count=*/3,
            {"fig8_mitigation"},
            run_mitigation_experiment});
    r->add({"robust_compare",
            "most robust variant vs. Original, CONV+FC attacks (Fig. 9)",
            /*default_seed_count=*/5,
            {"fig9_robust"},
            run_robust_compare_experiment});
    r->add({"detection",
            "runtime detector ROC sweep over clean runs + the attack grid",
            /*default_seed_count=*/3,
            {"fig_detection", "fig_detection_roc"},
            run_detection_experiment});
    r->add({"campaign",
            "adaptive multi-phase red-team campaigns vs. the defense suite",
            /*default_seed_count=*/1,
            {"fig_campaign_phases", "fig_campaign"},
            run_campaign_experiment});
    return r;
  }();
  return *registry;
}

std::vector<CsvDocument> ExperimentResult::to_csv() const {
  return std::visit([this](const auto& report) { return csv_of(spec, report); },
                    payload);
}

std::string ExperimentResult::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("experiment").value(experiment);
  json.key("model").value(nn::to_string(spec.model));
  json.key("scale").value(to_string(spec.scale));
  json.key("seed_count").value(spec.seed_count);
  json.key("base_seed").value(static_cast<std::uint64_t>(spec.base_seed));
  json.key("report").begin_object();
  std::visit([&json](const auto& report) { json_of(json, report); }, payload);
  json.end_object();
  json.end_object();
  return std::move(json).str();
}

}  // namespace safelight::core
