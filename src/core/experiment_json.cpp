// JSON ingestion and machine-readable listing of the experiment registry —
// the scripting surface: `safelight serve` parses POST /v1/jobs bodies
// through spec_from_json(), `safelight list --json` and the serve docs
// endpoint render registry_listing_json().
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/experiment.hpp"
#include "nn/models.hpp"

namespace safelight::core {

namespace {

/// The JSON field names spec_from_json() accepts, in documentation order.
/// One place: the parser, the error message and the listing all read this.
const std::vector<std::string>& spec_field_names() {
  static const std::vector<std::string> kFields = {
      "experiment", "model",       "scale",     "seed_count",
      "base_seed",  "variant",     "robust_variant",
      "l2_strength", "clean_runs", "max_workers", "verbose"};
  return kFields;
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Field accessor with the field name stitched into any type-mismatch
/// message ("spec field 'seed_count': ..." instead of a bare offset).
template <typename Fn>
auto read_field(const JsonValue& doc, const char* key, Fn&& fn)
    -> decltype(fn(doc.at(key))) {
  try {
    return fn(doc.at(key));
  } catch (const std::invalid_argument& error) {
    fail_argument("spec field '" + std::string(key) + "': " + error.what());
  }
}

}  // namespace

ExperimentSpec spec_from_json(const std::string& text) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const std::invalid_argument& error) {
    fail_argument(std::string("spec is not valid JSON: ") + error.what());
  }
  require(doc.is_object(),
          "spec must be a JSON object, e.g. "
          "{\"experiment\": \"susceptibility\"}");

  // Unknown fields are rejected loudly — a typo like "seeds" must not
  // silently run with the default seed count (the silent-clamp bug class).
  const auto& known = spec_field_names();
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    bool recognized = false;
    for (const std::string& name : known) {
      if (key == name) {
        recognized = true;
        break;
      }
    }
    if (!recognized) {
      fail_argument("spec has unknown field '" + key +
                    "' (supported fields: " + joined(known) + ")");
    }
  }

  const auto& registry = ExperimentRegistry::global();
  require(doc.has("experiment"),
          "spec is missing required field 'experiment' (one of: " +
              joined(registry.names()) + ")");
  const std::string experiment = read_field(
      doc, "experiment", [](const JsonValue& v) { return v.as_string(); });
  // default_spec throws the registered-name list on an unknown experiment.
  ExperimentSpec spec = registry.default_spec(experiment);

  // Absent fields resolve exactly like `safelight run`: CLI override >
  // SAFELIGHT_* env > registry/paper default. This is what makes a serve
  // result byte-identical to a CLI run under the same environment.
  spec.scale = config::scale();
  spec.seed_count = config::seed_count(spec.seed_count);
  spec.base_seed = config::base_seed();

  if (doc.has("model")) {
    spec.model = read_field(doc, "model", [](const JsonValue& v) {
      return nn::model_id_from_string(v.as_string());
    });
  }
  if (doc.has("scale")) {
    spec.scale = read_field(doc, "scale", [](const JsonValue& v) {
      return config::parse_scale(v.as_string());
    });
  }
  if (doc.has("seed_count")) {
    spec.seed_count = read_field(doc, "seed_count", [](const JsonValue& v) {
      return static_cast<std::size_t>(v.as_uint());
    });
  }
  if (doc.has("base_seed")) {
    spec.base_seed = read_field(
        doc, "base_seed", [](const JsonValue& v) { return v.as_uint(); });
  }
  if (doc.has("variant")) {
    spec.variant = read_field(doc, "variant",
                              [](const JsonValue& v) { return v.as_string(); });
  }
  if (doc.has("robust_variant")) {
    spec.robust_variant = read_field(
        doc, "robust_variant", [](const JsonValue& v) { return v.as_string(); });
  }
  if (doc.has("l2_strength")) {
    spec.l2_strength = read_field(doc, "l2_strength", [](const JsonValue& v) {
      return static_cast<float>(v.as_number());
    });
  }
  if (doc.has("clean_runs")) {
    spec.clean_runs = read_field(doc, "clean_runs", [](const JsonValue& v) {
      return static_cast<std::size_t>(v.as_uint());
    });
  }
  if (doc.has("max_workers")) {
    spec.max_workers = read_field(doc, "max_workers", [](const JsonValue& v) {
      return static_cast<std::size_t>(v.as_uint());
    });
  }
  if (doc.has("verbose")) {
    spec.verbose = read_field(doc, "verbose",
                              [](const JsonValue& v) { return v.as_bool(); });
  }

  spec.validate();  // seed_count >= 1, known variant names, clean_runs >= 1
  return spec;
}

std::string registry_listing_json() {
  const auto& registry = ExperimentRegistry::global();
  JsonWriter json;
  json.begin_object();
  json.key("experiments").begin_array();
  for (const std::string& name : registry.names()) {
    const ExperimentInfo& info = registry.info(name);
    json.begin_object();
    json.key("name").value(info.name);
    json.key("summary").value(info.summary);
    json.key("default_seed_count")
        .value(static_cast<std::uint64_t>(info.default_seed_count));
    json.key("csv_files").begin_array();
    for (const std::string& stem : info.csv_files) json.value(stem);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("spec_fields").begin_array();
  for (const std::string& field : spec_field_names()) json.value(field);
  json.end_array();
  json.end_object();
  return std::move(json).str();  // str() ends with a newline already
}

}  // namespace safelight::core
