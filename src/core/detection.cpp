#include "core/detection.hpp"

#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "core/evaluation.hpp"
#include "core/result_store.hpp"
#include "nn/serialize.hpp"

namespace safelight::core {

namespace {

/// One deployment to check: a clean run or an attack scenario.
struct RunSpec {
  std::string id;
  bool clean = false;
  attack::AttackScenario scenario{};
  std::uint64_t probe_seed = 0;
};

/// Conditions the model before the mapping captures its scales (mirrors
/// AttackEvaluator's member-init helper).
nn::Sequential& conditioned(const accel::OnnExecutor& executor,
                            nn::Sequential& model) {
  executor.condition_weights(model);
  return model;
}

/// Per-worker detection engine: one conditioned deployment, one calibrated
/// suite, checked against many runs. Calibration is deterministic in
/// (setup, weights, suite config, base_seed), so every worker's suite is
/// identical and results never depend on the fan-out partitioning.
class DetectionEvaluator {
 public:
  DetectionEvaluator(const ExperimentSetup& setup, nn::Sequential& model,
                     const DetectionOptions& options)
      : setup_(setup),
        model_(model),
        executor_(setup.accelerator),
        mapping_(conditioned(executor_, model), setup.accelerator),
        clean_snapshot_(nn::snapshot_state(model)),
        suite_(setup, options.suite),
        options_(options) {
    const defense::DeploymentView clean{
        model_, executor_, nullptr,
        seed_combine(options_.base_seed, 0xCA11B)};
    suite_.calibrate(clean);
  }

  /// Checks every detector against one run; results in suite order.
  std::vector<defense::DetectionResult> run(const RunSpec& spec) {
    nn::restore_state(model_, clean_snapshot_);
    std::vector<attack::BlockThermalState> telemetry;
    if (!spec.clean) {
      attack::apply_attack(mapping_, spec.scenario, options_.corruption);
      telemetry = defense::scenario_telemetry(
          setup_.accelerator, spec.scenario, options_.corruption);
    }
    const defense::DeploymentView view{
        model_, executor_, telemetry.empty() ? nullptr : &telemetry,
        spec.probe_seed};
    std::vector<defense::DetectionResult> results = suite_.check_all(view);
    nn::restore_state(model_, clean_snapshot_);
    return results;
  }

  defense::DetectorSuite& suite() { return suite_; }

 private:
  ExperimentSetup setup_;
  nn::Sequential& model_;
  accel::OnnExecutor executor_;
  accel::WeightStationaryMapping mapping_;
  std::vector<nn::Tensor> clean_snapshot_;
  defense::DetectorSuite suite_;
  DetectionOptions options_;
};

/// Probe seed of a run, derived from its full id so every run — including
/// same-placement scenarios at different intensities — reads independent
/// sensor noise, and so a cached score is a pure function of the run id.
std::uint64_t probe_seed_of(const std::string& run_id) {
  Fingerprint fp;
  fp.mix_bytes(run_id.data(), run_id.size());
  return splitmix64(fp.value());
}

std::string score_key(const RunSpec& spec, const std::string& detector) {
  return spec.id + "/" + detector + "/score";
}
std::string probes_key(const RunSpec& spec, const std::string& detector) {
  return spec.id + "/" + detector + "/probes";
}
std::string latency_key(const RunSpec& spec, const std::string& detector) {
  return spec.id + "/" + detector + "/latency";
}

}  // namespace

std::vector<double> DetectionReport::clean_scores(
    const std::string& detector) const {
  std::vector<double> out;
  for (const DetectionRow& row : rows) {
    if (row.clean && row.detector == detector) out.push_back(row.score);
  }
  return out;
}

std::vector<double> DetectionReport::attack_scores(
    const std::string& detector, std::optional<attack::AttackVector> vector,
    double min_fraction) const {
  std::vector<double> out;
  for (const DetectionRow& row : rows) {
    if (row.clean || row.detector != detector) continue;
    if (vector.has_value() && row.scenario.vector != *vector) continue;
    if (row.scenario.fraction < min_fraction - 1e-12) continue;
    out.push_back(row.score);
  }
  return out;
}

double DetectionReport::false_positive_rate(
    const std::string& detector) const {
  std::size_t total = 0;
  std::size_t flagged = 0;
  for (const DetectionRow& row : rows) {
    if (!row.clean || row.detector != detector) continue;
    ++total;
    if (row.flagged) ++flagged;
  }
  require(total > 0, "DetectionReport: no clean runs for '" + detector + "'");
  return static_cast<double>(flagged) / static_cast<double>(total);
}

double DetectionReport::true_positive_rate(
    const std::string& detector, std::optional<attack::AttackVector> vector,
    double min_fraction) const {
  std::size_t total = 0;
  std::size_t flagged = 0;
  for (const DetectionRow& row : rows) {
    if (row.clean || row.detector != detector) continue;
    if (vector.has_value() && row.scenario.vector != *vector) continue;
    if (row.scenario.fraction < min_fraction - 1e-12) continue;
    ++total;
    if (row.flagged) ++flagged;
  }
  require(total > 0,
          "DetectionReport: no attack runs match the filter for '" +
              detector + "'");
  return static_cast<double>(flagged) / static_cast<double>(total);
}

double DetectionReport::auc(const std::string& detector,
                            std::optional<attack::AttackVector> vector,
                            double min_fraction) const {
  return rank_auc(clean_scores(detector),
                  attack_scores(detector, vector, min_fraction));
}

RocCurve DetectionReport::roc(const std::string& detector,
                              std::optional<attack::AttackVector> vector,
                              double min_fraction) const {
  const std::vector<double> clean = clean_scores(detector);
  const std::vector<double> attack =
      attack_scores(detector, vector, min_fraction);
  require(!clean.empty() && !attack.empty(),
          "DetectionReport: ROC needs both clean and attack runs");

  // Operating points at every distinct observed score (descending), so the
  // curve starts at "flag nothing" and a final below-minimum threshold
  // closes it at "flag everything" = (1, 1).
  std::set<double> distinct(clean.begin(), clean.end());
  distinct.insert(attack.begin(), attack.end());
  std::vector<double> thresholds(distinct.rbegin(), distinct.rend());
  thresholds.push_back(*distinct.begin() - 1.0);

  const auto flagged_fraction = [](const std::vector<double>& scores,
                                   double threshold) {
    std::size_t flagged = 0;
    for (double s : scores) {
      if (s > threshold) ++flagged;
    }
    return static_cast<double>(flagged) / static_cast<double>(scores.size());
  };

  RocCurve curve;
  curve.detector = detector;
  curve.points.reserve(thresholds.size());
  for (double t : thresholds) {
    curve.points.push_back(
        {t, flagged_fraction(attack, t), flagged_fraction(clean, t)});
  }
  curve.auc = rank_auc(clean, attack);
  return curve;
}

BoxStats DetectionReport::detection_latency(
    const std::string& detector) const {
  std::vector<double> latencies;
  for (const DetectionRow& row : rows) {
    if (row.clean || row.detector != detector || !row.flagged) continue;
    latencies.push_back(static_cast<double>(row.first_flag_probe));
  }
  require(!latencies.empty(),
          "DetectionReport: '" + detector + "' flagged no attack run");
  return box_stats(latencies);
}

double rank_auc(const std::vector<double>& clean_scores,
                const std::vector<double>& attack_scores) {
  require(!clean_scores.empty() && !attack_scores.empty(),
          "rank_auc: need scores of both classes");
  double wins = 0.0;
  for (double a : attack_scores) {
    for (double c : clean_scores) {
      if (a > c) {
        wins += 1.0;
      } else if (a == c) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(clean_scores.size()) *
                 static_cast<double>(attack_scores.size()));
}

namespace {

/// The sweep proper, in the unified-API shape: spec in, typed report out.
DetectionReport detection_impl(const ExperimentSpec& experiment_spec,
                               RunContext& context) {
  const ExperimentSetup setup = experiment_spec.resolved_setup();
  ModelZoo& zoo = context.zoo();
  const VariantSpec variant = experiment_spec.resolved_variant();
  const std::vector<attack::AttackScenario> grid =
      experiment_spec.grid
          ? *experiment_spec.grid
          : attack::paper_scenario_grid(experiment_spec.seed_count,
                                        experiment_spec.base_seed);
  DetectionOptions options;
  options.seed_count = experiment_spec.seed_count;
  options.base_seed = experiment_spec.base_seed;
  options.clean_runs = experiment_spec.clean_runs;
  options.cache_dir = experiment_spec.cache_dir;
  options.max_workers = experiment_spec.max_workers;
  options.verbose = experiment_spec.verbose;
  options.corruption = experiment_spec.corruption;
  options.suite = experiment_spec.suite;
  context.note("detection: sweep " + setup.tag() + " / " + variant.name);

  const auto start = std::chrono::steady_clock::now();

  // Train (or load) on the calling thread; workers only load cache entries.
  auto model = zoo.get_or_train(setup, variant, options.verbose);
  const std::string checksum = weights_checksum(*model);

  // The reference suite provides detector names and default thresholds for
  // report assembly; workers calibrate their own identical copies.
  defense::DetectorSuite reference(setup, options.suite);
  const std::vector<std::string> detector_names = reference.names();

  std::string csv_path;
  if (!options.cache_dir.empty()) {
    std::filesystem::create_directories(options.cache_dir);
    csv_path = options.cache_dir + "/" + setup.tag() + "_" + variant.name +
               "_" + checksum + "_" +
               attack::config_fingerprint(options.corruption) + "_" +
               defense::config_fingerprint(options.suite) + ".detect.csv";
  }
  ResultStore store(csv_path);

  // Run list: clean deployments first (probe seeds derived from base_seed),
  // then the attack grid in grid order.
  std::vector<RunSpec> runs;
  runs.reserve(options.clean_runs + grid.size());
  for (std::size_t k = 0; k < options.clean_runs; ++k) {
    RunSpec spec;
    spec.id = "clean/c" + std::to_string(k) + "/b" +
              std::to_string(options.base_seed);
    spec.clean = true;
    spec.probe_seed = probe_seed_of(spec.id);
    runs.push_back(spec);
  }
  for (const attack::AttackScenario& scenario : grid) {
    scenario.validate();
    RunSpec spec;
    spec.id = scenario.id();
    spec.scenario = scenario;
    spec.probe_seed = probe_seed_of(spec.id);
    runs.push_back(spec);
  }

  // Uncached runs, deduplicated (a grid may repeat an id; a previous
  // interrupted sweep may have persisted a prefix). A run only counts as
  // cached when *every* one of its keys made it to disk — an interrupt can
  // land between the per-detector flushes, and a partially stored run must
  // re-check rather than crash report assembly on the missing keys.
  const auto fully_stored = [&](const RunSpec& spec) {
    for (const std::string& name : detector_names) {
      if (!store.contains(score_key(spec, name)) ||
          !store.contains(probes_key(spec, name)) ||
          !store.contains(latency_key(spec, name))) {
        return false;
      }
    }
    return true;
  };
  std::vector<std::size_t> pending;
  std::set<std::string> fresh_ids;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!fully_stored(runs[i]) && fresh_ids.insert(runs[i].id).second) {
      pending.push_back(i);
    }
  }

  const auto evaluate_range = [&](DetectionEvaluator& evaluator,
                                  std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      const RunSpec& spec = runs[pending[p]];
      static metrics::Counter& checks = metrics::counter("detect.checks");
      checks.add();
      trace::Span run_span("detect", "detect.run");
      if (run_span.active()) {
        run_span.arg("run", spec.id)
            .arg("clean", static_cast<double>(spec.clean));
      }
      const std::vector<defense::DetectionResult> results =
          evaluator.run(spec);
      for (const defense::DetectionResult& r : results) {
        // Detection latency (probes until first flag) per detector; clean
        // runs are excluded — a clean flag is a false positive, not a
        // latency sample.
        if (metrics::armed() && !spec.clean && r.flagged) {
          metrics::histogram("detect.latency_probes." + r.detector)
              .record(static_cast<double>(r.first_flag_probe));
        }
        store.put(score_key(spec, r.detector), r.score);
        store.put(probes_key(spec, r.detector),
                  static_cast<double>(r.probes));
        store.put(latency_key(spec, r.detector),
                  static_cast<double>(r.first_flag_probe));
        if (options.verbose) {
          std::printf("  [detect] %-32s %-16s score %.4f%s\n",
                      spec.id.c_str(), r.detector.c_str(), r.score,
                      r.flagged ? "  FLAGGED" : "");
          std::fflush(stdout);
        }
      }
    }
  };

  if (!pending.empty()) {
    std::size_t workers = worker_count();
    if (options.max_workers > 0) workers = std::min(workers, options.max_workers);
    if (pending.size() < workers * 2) {
      // Too few runs to keep a fan-out busy: check inline; the probe
      // forwards inside still parallelize.
      DetectionEvaluator evaluator(setup, *model, options);
      evaluate_range(evaluator, 0, pending.size());
    } else {
      const std::size_t grain = (pending.size() + workers - 1) / workers;
      parallel_for_chunks(
          0, pending.size(),
          [&](std::size_t lo, std::size_t hi) {
            // Checks corrupt and restore model weights, so every worker
            // deploys a private copy (a zoo cache load).
            auto worker_model = zoo.get_or_train(setup, variant, false);
            DetectionEvaluator evaluator(setup, *worker_model, options);
            evaluate_range(evaluator, lo, hi);
          },
          grain);
    }
  }

  // Assemble in run order; execution order never leaks into the report.
  DetectionReport report;
  report.variant = variant.name;
  report.detectors = detector_names;
  report.clean_runs = options.clean_runs;
  report.evaluated = pending.size();
  report.rows.reserve(runs.size() * detector_names.size());
  for (const RunSpec& spec : runs) {
    const bool fresh = fresh_ids.count(spec.id) != 0;
    if (!fresh) ++report.cache_hits;
    for (const std::string& name : detector_names) {
      const auto score = store.lookup(score_key(spec, name));
      const auto probes = store.lookup(probes_key(spec, name));
      const auto latency = store.lookup(latency_key(spec, name));
      SAFELIGHT_ASSERT(score && probes && latency,
                       "detection sweep: result missing after fan-out");
      DetectionRow row;
      row.run_id = spec.id;
      row.clean = spec.clean;
      row.scenario = spec.scenario;
      row.detector = name;
      row.score = *score;
      row.flagged = *score > reference.detector(name).threshold();
      row.probes = static_cast<std::size_t>(std::llround(*probes));
      row.first_flag_probe = static_cast<std::size_t>(std::llround(*latency));
      row.from_cache = !fresh;
      report.rows.push_back(std::move(row));
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

/// Shared shim body of the two legacy overloads.
ExperimentSpec detection_spec_of(const ExperimentSetup& setup,
                                 const VariantSpec& variant,
                                 const DetectionOptions& options) {
  ExperimentSpec spec =
      ExperimentRegistry::global().default_spec("detection", setup);
  spec.seed_count = options.seed_count;
  spec.base_seed = options.base_seed;
  spec.variant = variant.name;
  spec.variant_override = variant;  // pass through verbatim, no name lookup
  spec.clean_runs = options.clean_runs;
  spec.cache_dir = options.cache_dir;
  spec.max_workers = options.max_workers;
  spec.verbose = options.verbose;
  spec.corruption = options.corruption;
  spec.suite = options.suite;
  return spec;
}

}  // namespace

ExperimentResult run_detection_experiment(const ExperimentSpec& spec,
                                          RunContext& context) {
  spec.validate();  // callers may invoke this runner without the registry
  ExperimentResult result;
  result.payload = detection_impl(spec, context);
  return result;
}

DetectionReport run_detection_sweep(
    const ExperimentSetup& setup, ModelZoo& zoo, const VariantSpec& variant,
    const std::vector<attack::AttackScenario>& grid,
    const DetectionOptions& options) {
  ExperimentSpec spec = detection_spec_of(setup, variant, options);
  spec.grid = grid;
  RunContext context(zoo);
  return ExperimentRegistry::global().run(spec, context).as<DetectionReport>();
}

DetectionReport run_detection_sweep(const ExperimentSetup& setup,
                                    ModelZoo& zoo, const VariantSpec& variant,
                                    const DetectionOptions& options) {
  ExperimentSpec spec = detection_spec_of(setup, variant, options);
  RunContext context(zoo);
  return ExperimentRegistry::global().run(spec, context).as<DetectionReport>();
}

}  // namespace safelight::core
