// Thread-safe, incrementally persisted key -> accuracy store.
//
// The scenario pipeline records one entry per evaluated scenario, keyed by
// AttackScenario::id() (plus the evaluation subset size), mirroring the
// ModelZoo's on-disk cache discipline: entries are appended to a CSV file
// and flushed immediately, so an interrupted sweep resumes from whatever
// made it to disk instead of restarting. An optional JSONL mirror streams
// the same records for external monitoring/plotting tools.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace safelight::core {

/// Advisory single-writer lock on one store file: `<path>.lock` holds the
/// owner's pid. Cache directories have one live writer per store file by
/// contract; before this lock existed, a second accidental writer silently
/// interleaved rows. Construction fails fast (std::runtime_error naming the
/// live pid) on contention; a lock file left behind by a dead process —
/// crashed writers never run destructors — is taken over with a warning.
/// Advisory and same-host only: liveness is probed with kill(pid, 0), so a
/// recycled pid can hold a takeover back until that process exits.
class StoreWriterLock {
 public:
  /// Disengaged (no file, nothing released on destruction).
  StoreWriterLock() = default;
  /// Acquires `<store_path>.lock`; throws std::runtime_error when another
  /// live process holds it.
  explicit StoreWriterLock(const std::string& store_path);
  ~StoreWriterLock();

  StoreWriterLock(StoreWriterLock&& other) noexcept;
  StoreWriterLock& operator=(StoreWriterLock&& other) noexcept;
  StoreWriterLock(const StoreWriterLock&) = delete;
  StoreWriterLock& operator=(const StoreWriterLock&) = delete;

  bool engaged() const { return !lock_path_.empty(); }
  const std::string& lock_path() const { return lock_path_; }

 private:
  std::string lock_path_;  // empty = disengaged
};

/// One raw store row: the key and the value bytes exactly as written.
/// Multi-writer merging compares raw value bytes (a byte mismatch on the
/// same key is a conflict), so the value is not parsed here.
struct RawStoreEntry {
  std::string key;
  std::string value;
};

/// Tolerant read of a result-store CSV written by ResultStore (or a crashed
/// one): header, malformed and torn-tail rows are skipped, later duplicates
/// of a key win (matching ResultStore's overwrite semantics). Returns rows
/// in (deduplicated) file order; a missing file reads as empty. Read-only —
/// never truncates or locks, so coordinators can inspect a store another
/// process owns.
std::vector<RawStoreEntry> read_store_entries(const std::string& csv_path);

/// Append-only result cache shared by the pipeline's worker threads.
///
/// All members are safe to call concurrently. Persistence is optional:
/// an empty `csv_path` keeps the store purely in memory (tests, ablations
/// whose corruption config changes per run).
class ResultStore {
 public:
  /// Opens the store. When `csv_path` names an existing file written by a
  /// previous (possibly interrupted) run, its rows are loaded so lookups
  /// hit instead of re-evaluating; malformed rows (e.g. a torn final line
  /// from a mid-write kill) are skipped, not fatal. `jsonl_path` non-empty
  /// additionally appends one JSON object per new entry to that file; a
  /// torn trailing mirror record is truncated away on open. Opening also
  /// sweeps (deletes, with a warning) orphaned `*.tmp` staging files a
  /// crashed writer left in the store's directory — cache directories have
  /// one live writer by contract. Every durable write carries fault::ptp
  /// crash points (see common/fault.hpp); the resume-after-any-crash
  /// contract is proven by tests/fault_injection_test.cpp.
  explicit ResultStore(std::string csv_path, std::string jsonl_path = "");

  /// Value stored under `key`, or nullopt when missing.
  std::optional<double> lookup(const std::string& key) const;

  /// True when `key` has a stored value.
  bool contains(const std::string& key) const;

  /// Inserts (or overwrites) `key` and appends the entry to the backing
  /// CSV/JSONL files, flushing so the entry survives an interrupt.
  /// Disk write failures are swallowed: the store is an optimization and
  /// must never fail an experiment.
  void put(const std::string& key, double value);

  /// Number of entries currently held (loaded + inserted).
  std::size_t size() const;

  const std::string& csv_path() const { return csv_path_; }
  const std::string& jsonl_path() const { return jsonl_path_; }

 private:
  void append_to_disk(const std::string& key, double value);

  mutable std::mutex mutex_;
  std::string csv_path_;    // empty = in-memory only
  std::string jsonl_path_;  // empty = no JSON mirror
  StoreWriterLock lock_;    // engaged while csv_path_ is non-empty
  std::unordered_map<std::string, double> entries_;
};

}  // namespace safelight::core
