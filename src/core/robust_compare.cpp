#include "core/robust_compare.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/pipeline.hpp"

namespace safelight::core {

const RobustComparisonCell& RobustComparisonReport::cell(
    attack::AttackVector vector, double fraction) const {
  for (const auto& c : cells) {
    if (c.vector == vector && std::abs(c.fraction - fraction) < 1e-12) {
      return c;
    }
  }
  fail_argument("RobustComparisonReport::cell: no such cell");
}

RobustComparisonReport run_robust_compare(
    const ExperimentSetup& setup, ModelZoo& zoo,
    const RobustCompareOptions& options) {
  require(options.seed_count > 0, "run_robust_compare: need >= 1 seed");

  std::string robust_name = options.robust_variant;
  if (robust_name.empty()) {
    MitigationOptions mitigation_options;
    mitigation_options.seed_count = 3;
    mitigation_options.base_seed = options.base_seed;
    mitigation_options.l2_strength = options.l2_strength;
    mitigation_options.cache_dir = options.cache_dir;
    mitigation_options.verbose = options.verbose;
    robust_name =
        run_mitigation(setup, zoo, mitigation_options).best_robust()
            .variant.name;
  }

  // One combined grid (2 vectors x 3 fractions x seeds on CONV+FC), swept
  // once per model through the pipeline; cells are sliced out afterwards.
  const auto grid = attack::scenario_grid(
      {attack::AttackVector::kActuation, attack::AttackVector::kHotspot},
      {attack::AttackTarget::kBothBlocks}, {0.01, 0.05, 0.10},
      options.seed_count, options.base_seed);

  PipelineOptions pipeline_options;
  pipeline_options.cache_dir = options.cache_dir;
  pipeline_options.verbose = options.verbose;
  ScenarioPipeline pipeline(setup, zoo, pipeline_options);
  const SweepResult original_sweep =
      pipeline.run(variant_by_name("Original"), grid);
  const SweepResult robust_sweep = pipeline.run(
      variant_by_name(robust_name, options.l2_strength), grid);

  RobustComparisonReport report;
  report.model = setup.model;
  report.robust_variant_name = robust_name;
  report.original_baseline = original_sweep.baseline_accuracy;
  report.robust_baseline = robust_sweep.baseline_accuracy;

  for (attack::AttackVector vector :
       {attack::AttackVector::kActuation, attack::AttackVector::kHotspot}) {
    for (double fraction : {0.01, 0.05, 0.10}) {
      std::vector<double> original_acc, robust_acc;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        if (grid[i].vector != vector ||
            std::abs(grid[i].fraction - fraction) >= 1e-12) {
          continue;
        }
        original_acc.push_back(original_sweep.rows[i].accuracy);
        robust_acc.push_back(robust_sweep.rows[i].accuracy);
      }
      RobustComparisonCell cell;
      cell.vector = vector;
      cell.fraction = fraction;
      cell.original = box_stats(std::move(original_acc));
      cell.robust = box_stats(std::move(robust_acc));
      report.cells.push_back(cell);
    }
  }
  return report;
}

}  // namespace safelight::core
