#include "core/robust_compare.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"

namespace safelight::core {

const RobustComparisonCell& RobustComparisonReport::cell(
    attack::AttackVector vector, double fraction) const {
  for (const auto& c : cells) {
    if (c.vector == vector && std::abs(c.fraction - fraction) < 1e-12) {
      return c;
    }
  }
  fail_argument("RobustComparisonReport::cell: no such cell");
}

ExperimentSpec robust_compare_selection_spec(const ExperimentSpec& spec) {
  // Mitigation's own defaults keep its paper seed count (3); only the
  // settings that define "the same experiment" carry over. The selection
  // must rank variants under the same attack model the comparison uses,
  // hence the corruption copy.
  ExperimentSpec mitigation_spec =
      ExperimentRegistry::global().default_spec("mitigation");
  mitigation_spec.model = spec.model;
  mitigation_spec.scale = spec.scale;
  mitigation_spec.setup = spec.setup;
  mitigation_spec.base_seed = spec.base_seed;
  mitigation_spec.l2_strength = spec.l2_strength;
  mitigation_spec.cache_dir = spec.cache_dir;
  mitigation_spec.max_workers = spec.max_workers;
  mitigation_spec.verbose = spec.verbose;
  mitigation_spec.corruption = spec.corruption;
  return mitigation_spec;
}

std::vector<attack::AttackScenario> robust_compare_grid(
    const ExperimentSpec& spec) {
  // One combined grid (2 vectors x 3 fractions x seeds on CONV+FC), swept
  // once per model; cells are sliced out afterwards.
  return attack::scenario_grid(
      {attack::AttackVector::kActuation, attack::AttackVector::kHotspot},
      {attack::AttackTarget::kBothBlocks}, {0.01, 0.05, 0.10},
      spec.seed_count, spec.base_seed);
}

namespace {

/// The comparison proper, in the unified-API shape: spec in, report out.
RobustComparisonReport robust_compare_impl(const ExperimentSpec& spec,
                                           RunContext& context) {
  const ExperimentSetup setup = spec.resolved_setup();

  std::string robust_name = spec.robust_variant;
  if (robust_name.empty()) {
    // Select via the mitigation sweep at its own paper seed count (3).
    context.note("robust_compare: selecting robust variant");
    robust_name = ExperimentRegistry::global()
                      .run(robust_compare_selection_spec(spec), context)
                      .as<MitigationReport>()
                      .best_robust()
                      .variant.name;
  }
  context.throw_if_cancelled("robust_compare");

  const auto grid = robust_compare_grid(spec);

  PipelineOptions pipeline_options;
  pipeline_options.cache_dir = spec.cache_dir;
  pipeline_options.max_workers = spec.max_workers;
  pipeline_options.verbose = spec.verbose;
  pipeline_options.corruption = spec.corruption;
  pipeline_options.cancel = context.cancel;
  ScenarioPipeline pipeline(setup, context.zoo(), pipeline_options);
  context.note("robust_compare: sweeping Original vs " + robust_name);
  const SweepResult original_sweep =
      pipeline.run(variant_by_name("Original"), grid);
  const SweepResult robust_sweep = pipeline.run(
      variant_by_name(robust_name, spec.l2_strength), grid);

  RobustComparisonReport report;
  report.model = setup.model;
  report.robust_variant_name = robust_name;
  report.original_baseline = original_sweep.baseline_accuracy;
  report.robust_baseline = robust_sweep.baseline_accuracy;

  for (attack::AttackVector vector :
       {attack::AttackVector::kActuation, attack::AttackVector::kHotspot}) {
    for (double fraction : {0.01, 0.05, 0.10}) {
      std::vector<double> original_acc, robust_acc;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        if (grid[i].vector != vector ||
            std::abs(grid[i].fraction - fraction) >= 1e-12) {
          continue;
        }
        original_acc.push_back(original_sweep.rows[i].accuracy);
        robust_acc.push_back(robust_sweep.rows[i].accuracy);
      }
      RobustComparisonCell cell;
      cell.vector = vector;
      cell.fraction = fraction;
      cell.original = box_stats(std::move(original_acc));
      cell.robust = box_stats(std::move(robust_acc));
      report.cells.push_back(cell);
    }
  }
  return report;
}

}  // namespace

ExperimentResult run_robust_compare_experiment(const ExperimentSpec& spec,
                                               RunContext& context) {
  spec.validate();  // callers may invoke this runner without the registry
  ExperimentResult result;
  result.payload = robust_compare_impl(spec, context);
  return result;
}

RobustComparisonReport run_robust_compare(
    const ExperimentSetup& setup, ModelZoo& zoo,
    const RobustCompareOptions& options) {
  ExperimentSpec spec =
      ExperimentRegistry::global().default_spec("robust_compare", setup);
  spec.seed_count = options.seed_count;
  spec.base_seed = options.base_seed;
  spec.l2_strength = options.l2_strength;
  spec.robust_variant = options.robust_variant;
  spec.cache_dir = options.cache_dir;
  spec.verbose = options.verbose;
  RunContext context(zoo);
  return ExperimentRegistry::global()
      .run(spec, context)
      .as<RobustComparisonReport>();
}

}  // namespace safelight::core
