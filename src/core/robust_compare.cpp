#include "core/robust_compare.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::core {

const RobustComparisonCell& RobustComparisonReport::cell(
    attack::AttackVector vector, double fraction) const {
  for (const auto& c : cells) {
    if (c.vector == vector && std::abs(c.fraction - fraction) < 1e-12) {
      return c;
    }
  }
  fail_argument("RobustComparisonReport::cell: no such cell");
}

RobustComparisonReport run_robust_compare(
    const ExperimentSetup& setup, ModelZoo& zoo,
    const RobustCompareOptions& options) {
  require(options.seed_count > 0, "run_robust_compare: need >= 1 seed");

  std::string robust_name = options.robust_variant;
  if (robust_name.empty()) {
    MitigationOptions mitigation_options;
    mitigation_options.seed_count = 3;
    mitigation_options.base_seed = options.base_seed;
    mitigation_options.l2_strength = options.l2_strength;
    mitigation_options.cache_dir = options.cache_dir;
    mitigation_options.verbose = options.verbose;
    robust_name =
        run_mitigation(setup, zoo, mitigation_options).best_robust()
            .variant.name;
  }

  auto original =
      zoo.get_or_train(setup, variant_by_name("Original"), options.verbose);
  auto robust = zoo.get_or_train(
      setup, variant_by_name(robust_name, options.l2_strength),
      options.verbose);

  AttackEvaluator original_eval(setup, *original, "Original",
                                options.cache_dir);
  AttackEvaluator robust_eval(setup, *robust, robust_name, options.cache_dir);

  RobustComparisonReport report;
  report.model = setup.model;
  report.robust_variant_name = robust_name;
  report.original_baseline = original_eval.baseline_accuracy();
  report.robust_baseline = robust_eval.baseline_accuracy();

  for (attack::AttackVector vector :
       {attack::AttackVector::kActuation, attack::AttackVector::kHotspot}) {
    for (double fraction : {0.01, 0.05, 0.10}) {
      const auto scenarios = attack::scenario_grid(
          {vector}, {attack::AttackTarget::kBothBlocks}, {fraction},
          options.seed_count, options.base_seed);
      std::vector<double> original_acc, robust_acc;
      for (const auto& scenario : scenarios) {
        original_acc.push_back(original_eval.evaluate_scenario(scenario));
        robust_acc.push_back(robust_eval.evaluate_scenario(scenario));
      }
      RobustComparisonCell cell;
      cell.vector = vector;
      cell.fraction = fraction;
      cell.original = box_stats(std::move(original_acc));
      cell.robust = box_stats(std::move(robust_acc));
      report.cells.push_back(cell);
    }
  }
  return report;
}

}  // namespace safelight::core
