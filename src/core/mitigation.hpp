// Mitigation analysis (paper §VI, Fig. 8).
//
// Evaluates every mitigation variant (Original, L2_reg, l2+n1..l2+n9)
// across the full attack scenario grid and summarizes each variant's
// accuracy distribution as box-whisker statistics. Also selects the most
// robust configuration per model (the paper found l2+n3 / l2+n5 / l2+n2
// for CNN_1 / ResNet18 / VGG16_v).
#pragma once

#include "core/susceptibility.hpp"

namespace safelight::core {

/// One mitigation variant's clean accuracy and accuracy distribution under
/// the full attack grid (one box of Fig. 8).
struct VariantOutcome {
  VariantSpec variant;
  double baseline_accuracy = 0.0;  // unattacked accuracy of this variant
  BoxStats under_attack;           // accuracy across all attack scenarios
};

/// Per-model mitigation analysis: one VariantOutcome per paper variant.
struct MitigationReport {
  nn::ModelId model;
  double original_baseline = 0.0;  // unattacked accuracy of Original
  std::vector<VariantOutcome> outcomes;

  /// Most robust non-Original variant: highest median accuracy under
  /// attack, ties broken by the worst case (min), then by name.
  const VariantOutcome& best_robust() const;

  /// Outcome of a variant by name; throws when the variant was not swept.
  const VariantOutcome& outcome(const std::string& variant_name) const;
};

/// Knobs of run_mitigation.
struct MitigationOptions {
  std::size_t seed_count = 3;  // placements per grid cell (Fig. 8 sweep)
  std::uint64_t base_seed = 1000;
  float l2_strength = kDefaultL2Strength;
  std::string cache_dir;
  bool verbose = false;
};

/// Sweeps every paper variant of `setup`'s model across the full attack
/// grid (training missing variants through `zoo`) and aggregates each
/// variant's accuracy distribution.
///
/// Deprecated shim: builds an ExperimentSpec and delegates to
/// ExperimentRegistry::global().run("mitigation") — new callers should use
/// core/experiment.hpp directly.
MitigationReport run_mitigation(const ExperimentSetup& setup, ModelZoo& zoo,
                                const MitigationOptions& options);

}  // namespace safelight::core
