// Console table rendering for the bench harness.
#pragma once

#include <string>
#include <vector>

namespace safelight::core {

/// Fixed-width table printer: columns auto-size to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; throws std::invalid_argument when the cell count
  /// does not match the header.
  void add_row(std::vector<std::string> row);

  /// Renders with a header underline; every row padded per column.
  std::string render() const;

  /// Number of data rows added so far (header excluded).
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "================ title ================" banner to stdout and
/// flushes (shared by the `safelight` CLI and the bench binaries).
void banner(const std::string& title);

/// Formats a fraction as a percent string ("5.0%").
std::string pct(double fraction, int precision = 1);

/// Formats an accuracy delta with sign ("+3.21%" / "-0.40%").
std::string signed_pct(double fraction, int precision = 2);

}  // namespace safelight::core
