#include "core/zoo.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/fingerprint.hpp"
#include "common/metrics.hpp"
#include "nn/serialize.hpp"

namespace safelight::core {

ModelZoo::ModelZoo(std::string directory) : directory_(std::move(directory)) {
  if (directory_.empty()) directory_ = config::zoo_dir();
  std::filesystem::create_directories(directory_);
}

namespace {

/// Short fingerprint of everything that influences a trained entry: model
/// hyper-parameters, dataset recipe and training configuration. Changing
/// any of them retrains instead of silently loading a stale cache.
std::string config_fingerprint(const ExperimentSetup& setup,
                               const VariantSpec& variant) {
  const nn::TrainConfig train = apply_variant(setup.base_train, variant);
  Fingerprint fp;
  fp.mix_u64(setup.model_config.image_size)
      .mix_u64(setup.model_config.width)
      .mix_u64(setup.model_config.fc_dim)
      .mix_double(setup.model_config.dropout)
      .mix_u64(setup.model_config.seed)
      .mix_u64(setup.train_data.count)
      .mix_u64(setup.train_data.seed)
      .mix_double(setup.train_data.noise)
      .mix_u64(train.epochs)
      .mix_u64(train.batch_size)
      .mix_double(train.lr)
      .mix_double(train.momentum)
      .mix_double(train.weight_decay)
      .mix_double(train.noise.sigma)
      .mix_u64(static_cast<std::uint64_t>(train.noise.mode))
      .mix_u64(train.seed);
  return fp.hex8();
}

}  // namespace

std::string ModelZoo::entry_path(const ExperimentSetup& setup,
                                 const VariantSpec& variant) const {
  return directory_ + "/" + setup.tag() + "_" + variant.name + "_" +
         config_fingerprint(setup, variant) + ".slw";
}

bool ModelZoo::has_entry(const ExperimentSetup& setup,
                         const VariantSpec& variant) {
  auto model = nn::make_model(setup.model, setup.model_config);
  return nn::model_file_matches(*model, entry_path(setup, variant));
}

std::mutex& ModelZoo::entry_lock(const std::string& path) {
  std::lock_guard<std::mutex> guard(mutex_);
  return entry_locks_[path];  // std::map nodes are stable across inserts
}

std::unique_ptr<nn::Sequential> ModelZoo::get_or_train(
    const ExperimentSetup& setup, const VariantSpec& variant, bool verbose) {
  auto model = nn::make_model(setup.model, setup.model_config);
  const std::string path = entry_path(setup, variant);
  // Per-entry serialization: under concurrent callers (serve slots) the
  // first one through trains and saves; the rest block here and then take
  // the cache-hit branch. Distinct entries proceed in parallel.
  std::lock_guard<std::mutex> train_once(entry_lock(path));
  if (nn::model_file_matches(*model, path)) {
    nn::load_model(*model, path);
    return model;
  }

  if (verbose) {
    std::printf("[zoo] training %s / %s ...\n", setup.tag().c_str(),
                variant.name.c_str());
    std::fflush(stdout);
  }
  // Counts *actual* trainings (cache hits skip this) — the train-exactly-
  // once stress test asserts it stays at one per entry under contention.
  static metrics::Counter& trainings = metrics::counter("zoo.trainings");
  trainings.add();
  const nn::Dataset train = make_train_data(setup);
  const nn::Dataset test = make_test_data(setup);
  nn::TrainConfig config = apply_variant(setup.base_train, variant);
  config.verbose = verbose;
  const nn::TrainHistory history = train_model(*model, train, test, config);
  if (verbose) {
    std::printf("[zoo] %s / %s trained: test acc %.4f\n", setup.tag().c_str(),
                variant.name.c_str(), history.final_test_acc);
    std::fflush(stdout);
  }
  // Crash here: the training work is lost but nothing is on disk; a resumed
  // run retrains deterministically to bit-identical weights (golden-pinned).
  fault::ptp("zoo.entry.train_save");
  nn::save_model(*model, path);
  return model;
}

}  // namespace safelight::core
