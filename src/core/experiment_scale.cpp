#include "core/experiment_scale.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safelight::core {

namespace {

/// Paper-scale pass/occupancy targets derived from Table I and the
/// CrossLight block dimensions (CONV: 40,000 slots, FC: 1,350,000 slots).
struct PressureTargets {
  double conv_passes;  // < 1 means fractional occupancy, single pass
  double fc_passes;
};

PressureTargets pressure_targets(nn::ModelId id) {
  switch (id) {
    case nn::ModelId::kCnn1:
      return {2572.0 / 40000.0, 41854.0 / 1350000.0};
    case nn::ModelId::kResNet18:
      return {4.7e6 / 40000.0, 5130.0 / 1350000.0};
    case nn::ModelId::kVgg16v: break;
  }
  return {3.9e6 / 40000.0, 119.6e6 / 1350000.0};
}

std::size_t clamp_size(double v, std::size_t lo, std::size_t hi) {
  const auto rounded = static_cast<std::size_t>(std::llround(std::max(1.0, v)));
  return std::clamp(rounded, lo, hi);
}

}  // namespace

accel::AcceleratorConfig accelerator_for(nn::ModelId id,
                                         std::size_t conv_weights,
                                         std::size_t fc_weights) {
  require(conv_weights > 0 || fc_weights > 0,
          "accelerator_for: model has no MR-mapped weights");
  const PressureTargets target = pressure_targets(id);
  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();

  // CONV block: 400 slots per unit (20 banks x 20 MRs).
  if (conv_weights > 0) {
    const double slot_target =
        static_cast<double>(conv_weights) / std::max(target.conv_passes, 1e-9);
    config.conv.units = clamp_size(slot_target / 400.0, 1, 100);
  }

  // FC block: 22,500 slots per unit (150 banks x 150 MRs). When a unit is
  // already too coarse, shrink banks-per-unit instead (bank width stays 150).
  if (fc_weights > 0) {
    const double slot_target =
        static_cast<double>(fc_weights) / std::max(target.fc_passes, 1e-9);
    if (slot_target >= 22500.0) {
      config.fc.units = clamp_size(slot_target / 22500.0, 1, 60);
    } else {
      config.fc.units = 1;
      config.fc.banks_per_unit = clamp_size(slot_target / 150.0, 1, 150);
    }
  }
  config.validate();
  return config;
}

std::string ExperimentSetup::tag() const {
  return nn::to_string(model) + "_" + safelight::to_string(scale);
}

ExperimentSetup experiment_setup(nn::ModelId id, Scale scale) {
  ExperimentSetup setup;
  setup.model = id;
  setup.scale = scale;
  setup.base_train.lr = 0.05f;
  setup.base_train.momentum = 0.9f;
  setup.base_train.lr_decay = 0.5f;
  setup.base_train.seed = 11;

  switch (id) {
    case nn::ModelId::kCnn1: {
      setup.dataset_family = "digits";
      setup.model_config.in_channels = 1;
      setup.model_config.classes = 10;
      switch (scale) {
        case Scale::kTiny:
          setup.model_config.image_size = 20;
          setup.train_data.count = 300;
          setup.test_data.count = 100;
          setup.base_train.epochs = 4;
          setup.eval_count = 100;
          break;
        case Scale::kFull:
        case Scale::kDefault:
          setup.model_config.image_size = 28;
          setup.train_data.count = scale == Scale::kFull ? 4000 : 1200;
          setup.test_data.count = scale == Scale::kFull ? 1000 : 400;
          setup.base_train.epochs = scale == Scale::kFull ? 10 : 6;
          setup.eval_count = scale == Scale::kFull ? 500 : 300;
          break;
      }
      break;
    }
    case nn::ModelId::kResNet18: {
      setup.dataset_family = "shapes";
      setup.model_config.in_channels = 3;
      setup.model_config.classes = 10;
      switch (scale) {
        case Scale::kTiny:
          setup.model_config.width = 4;
          setup.model_config.image_size = 12;
          setup.train_data.count = 150;
          setup.test_data.count = 80;
          setup.base_train.epochs = 2;
          setup.eval_count = 80;
          break;
        case Scale::kDefault:
          setup.model_config.width = 8;
          setup.model_config.image_size = 16;
          setup.train_data.count = 700;
          setup.test_data.count = 300;
          setup.base_train.epochs = 6;
          setup.eval_count = 250;
          break;
        case Scale::kFull:
          setup.model_config.width = 64;
          setup.model_config.image_size = 32;
          setup.train_data.count = 4000;
          setup.test_data.count = 1000;
          setup.base_train.epochs = 12;
          setup.eval_count = 500;
          break;
      }
      break;
    }
    case nn::ModelId::kVgg16v: {
      setup.dataset_family = "textures";
      setup.model_config.in_channels = 3;
      setup.model_config.classes = 10;
      setup.model_config.dropout = 0.3f;
      switch (scale) {
        case Scale::kTiny:
          setup.model_config.width = 8;
          setup.model_config.fc_dim = 32;
          setup.model_config.image_size = 16;
          setup.train_data.count = 150;
          setup.test_data.count = 80;
          setup.base_train.epochs = 2;
          setup.eval_count = 80;
          break;
        case Scale::kDefault:
          setup.model_config.width = 16;
          setup.model_config.fc_dim = 256;
          setup.model_config.image_size = 32;
          // Less dropout than paper scale: the reduced VGG with 700 samples
          // cannot absorb dropout + L2 + noise-aware training all at once.
          setup.model_config.dropout = 0.15f;
          setup.train_data.count = 700;
          setup.test_data.count = 300;
          setup.base_train.epochs = 8;
          setup.eval_count = 250;
          break;
        case Scale::kFull:
          setup.model_config.width = 64;
          setup.model_config.fc_dim = 4096;
          setup.model_config.image_size = 224;
          setup.train_data.count = 4000;
          setup.test_data.count = 1000;
          setup.base_train.epochs = 12;
          setup.eval_count = 500;
          break;
      }
      break;
    }
  }

  setup.base_train.lr_decay_every =
      std::max<std::size_t>(1, setup.base_train.epochs / 2);
  setup.train_data.image_size = setup.model_config.image_size;
  setup.test_data.image_size = setup.model_config.image_size;
  setup.train_data.seed = 21;
  setup.test_data.seed = 22;  // disjoint stream from the training set
  setup.base_train.batch_size = 32;

  // Accelerator scaled to the model's reduced weight counts.
  auto model = nn::make_model(id, setup.model_config);
  std::size_t conv_weights = 0, fc_weights = 0;
  for (nn::Param* p : model->params()) {
    if (p->kind == nn::ParamKind::kConvWeight) conv_weights += p->value.numel();
    if (p->kind == nn::ParamKind::kLinearWeight) {
      fc_weights += p->value.numel();
    }
  }
  setup.accelerator = accelerator_for(id, conv_weights, fc_weights);
  return setup;
}

nn::Dataset make_train_data(const ExperimentSetup& setup) {
  return nn::make_synthetic(setup.dataset_family, setup.train_data);
}

nn::Dataset make_test_data(const ExperimentSetup& setup) {
  return nn::make_synthetic(setup.dataset_family, setup.test_data);
}

}  // namespace safelight::core
