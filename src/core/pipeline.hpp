// Parallel scenario-sweep engine (the experiment pipeline).
//
// Every figure/table reproduction boils down to the same shape of work:
// "evaluate one trained model variant under a grid of attack scenarios".
// ScenarioPipeline owns that shape once, for all of them:
//   * the variant is trained (or loaded) through the ModelZoo exactly once;
//   * the clean-baseline evaluation shared by every scenario of a sweep is
//     computed once and cached, never per scenario;
//   * uncached scenarios fan out over safelight::parallel_for_chunks, one
//     private model copy + AttackEvaluator per worker thread (scenario
//     evaluation mutates model weights, so workers must not share a model);
//   * each finished scenario is appended to a ResultStore immediately, so
//     an interrupted sweep resumes from the completed prefix.
// Results are returned in grid order regardless of the execution order, so
// a sweep's output is deterministic in (setup, variant, grid) and identical
// between serial and parallel runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "attacks/corruption.hpp"
#include "attacks/scenario.hpp"
#include "common/stats.hpp"
#include "core/evaluation.hpp"
#include "core/zoo.hpp"

namespace safelight::core {

/// Knobs of a pipeline instance; shared by every sweep it runs.
struct PipelineOptions {
  /// Directory for ResultStore files; empty disables persistence (results
  /// are still deduplicated in memory within one sweep).
  std::string cache_dir;
  /// Also stream each new result as a JSON object to a .jsonl file next to
  /// the CSV store (ignored when cache_dir is empty).
  bool stream_jsonl = false;
  /// Upper bound on worker threads; 0 uses safelight::worker_count()
  /// (SAFELIGHT_THREADS). 1 forces the serial reference path.
  std::size_t max_workers = 0;
  bool verbose = false;
  /// Corruption physics shared by all scenarios of a sweep. Non-default
  /// configs get their own result-store files (the config is part of the
  /// store fingerprint), so ablation sweeps never poison the paper-grid
  /// cache.
  attack::CorruptionConfig corruption{};
  /// Cooperative-cancellation flag, checked between scenario evaluations.
  /// When it flips to true the sweep stops at the next scenario boundary by
  /// throwing ExperimentCancelled — everything evaluated so far is already
  /// in the ResultStore, so a rerun resumes from the completed prefix.
  const std::atomic<bool>* cancel = nullptr;
};

/// One evaluated grid entry.
struct ScenarioOutcome {
  attack::AttackScenario scenario;
  double accuracy = 0.0;
  /// True when the value came from a previous run's result store rather
  /// than an evaluation in this sweep.
  bool from_cache = false;
};

/// Outcome of one ScenarioPipeline::run call.
struct SweepResult {
  std::string variant;
  double baseline_accuracy = 0.0;  // unattacked accuracy, evaluated once
  bool baseline_from_cache = false;
  std::vector<ScenarioOutcome> rows;  // in grid order
  std::size_t cache_hits = 0;  // rows served from the result store
  std::size_t evaluated = 0;   // scenarios actually evaluated this run
  double wall_seconds = 0.0;   // time spent inside run()

  /// Accuracies in grid order.
  std::vector<double> accuracies() const;

  /// Five-number summary over all rows; throws when the sweep is empty.
  BoxStats under_attack() const;
};

/// Store key of a scenario: its stable id plus the evaluation subset size
/// (a larger eval_count is a different measurement). Shared by the pipeline
/// and the distributed planner — the coordinator decides "already cached?"
/// with exactly the key the pipeline will later look up.
std::string scenario_store_key(const attack::AttackScenario& scenario,
                               std::size_t eval_count);

/// Store key of the clean (unattacked) baseline evaluation.
std::string baseline_store_key(std::size_t eval_count);

/// Path (without extension) of the ResultStore files a pipeline sweep of
/// `variant` uses under `cache_dir`: the CSV store is `<stem>.sweep.csv`,
/// the optional mirror `<stem>.sweep.jsonl`. `weights_checksum` is the
/// trained variant's checksum — part of the name so retrained weights never
/// read stale entries; `corruption` likewise fingerprints ablated physics.
std::string sweep_store_stem(const std::string& cache_dir,
                             const ExperimentSetup& setup,
                             const std::string& variant_name,
                             const std::string& weights_checksum,
                             const attack::CorruptionConfig& corruption);

/// Fans scenario evaluations for one ExperimentSetup out over worker
/// threads, with persistent per-scenario result caching and clean-baseline
/// deduplication. One instance can run many sweeps (different variants
/// and/or grids); they share options but not state.
class ScenarioPipeline {
 public:
  ScenarioPipeline(const ExperimentSetup& setup, ModelZoo& zoo,
                   PipelineOptions options = {});

  /// Evaluates `variant` under every scenario in `grid`. Trains/loads the
  /// variant via the zoo, dedupes the baseline, evaluates uncached
  /// scenarios in parallel and returns results in grid order.
  SweepResult run(const VariantSpec& variant,
                  const std::vector<attack::AttackScenario>& grid);

  /// Convenience: the paper's full SIV grid (2 vectors x 3 targets x
  /// {1,5,10} % x seed_count placements).
  SweepResult run_paper_grid(const VariantSpec& variant,
                             std::size_t seed_count,
                             std::uint64_t base_seed = 1000);

  const ExperimentSetup& setup() const { return setup_; }
  const PipelineOptions& options() const { return options_; }

 private:
  ExperimentSetup setup_;
  ModelZoo& zoo_;
  PipelineOptions options_;
};

}  // namespace safelight::core
