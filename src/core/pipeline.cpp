#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <unordered_set>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "core/experiment.hpp"
#include "core/result_store.hpp"

namespace safelight::core {

std::string scenario_store_key(const attack::AttackScenario& scenario,
                               std::size_t eval_count) {
  return scenario.id() + "/n" + std::to_string(eval_count);
}

std::string baseline_store_key(std::size_t eval_count) {
  return "baseline/n" + std::to_string(eval_count);
}

std::string sweep_store_stem(const std::string& cache_dir,
                             const ExperimentSetup& setup,
                             const std::string& variant_name,
                             const std::string& weights_checksum,
                             const attack::CorruptionConfig& corruption) {
  return cache_dir + "/" + setup.tag() + "_" + variant_name + "_" +
         weights_checksum + "_" + attack::config_fingerprint(corruption);
}

std::vector<double> SweepResult::accuracies() const {
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& row : rows) values.push_back(row.accuracy);
  return values;
}

BoxStats SweepResult::under_attack() const { return box_stats(accuracies()); }

ScenarioPipeline::ScenarioPipeline(const ExperimentSetup& setup, ModelZoo& zoo,
                                   PipelineOptions options)
    : setup_(setup), zoo_(zoo), options_(std::move(options)) {}

SweepResult ScenarioPipeline::run(
    const VariantSpec& variant,
    const std::vector<attack::AttackScenario>& grid) {
  const auto start = std::chrono::steady_clock::now();
  trace::Span sweep_span("pipeline", "pipeline.sweep");
  sweep_span.arg("variant", variant.name)
      .arg("grid", static_cast<double>(grid.size()));

  // Train (or load) on the calling thread so workers only ever load the
  // finished zoo entry — never race on training it.
  auto model = zoo_.get_or_train(setup_, variant, options_.verbose);
  const std::string checksum = weights_checksum(*model);

  std::string csv_path, jsonl_path;
  if (!options_.cache_dir.empty()) {
    std::filesystem::create_directories(options_.cache_dir);
    const std::string base =
        sweep_store_stem(options_.cache_dir, setup_, variant.name, checksum,
                         options_.corruption);
    csv_path = base + ".sweep.csv";
    if (options_.stream_jsonl) jsonl_path = base + ".sweep.jsonl";
  }
  ResultStore store(csv_path, jsonl_path);

  SweepResult result;
  result.variant = variant.name;

  // Baseline dedup: one clean evaluation serves every scenario of the sweep
  // (and, through the store, every future sweep of this variant).
  const std::string baseline_key = baseline_store_key(setup_.eval_count);
  if (const auto cached = store.lookup(baseline_key)) {
    result.baseline_accuracy = *cached;
    result.baseline_from_cache = true;
  } else {
    AttackEvaluator evaluator(setup_, *model, variant.name, "",
                              options_.corruption);
    result.baseline_accuracy = evaluator.baseline_accuracy();
    store.put(baseline_key, result.baseline_accuracy);
  }

  // Uncached scenarios, deduplicated: a grid may repeat an id, and a
  // previous interrupted run may have persisted a prefix.
  std::vector<attack::AttackScenario> pending;
  std::vector<std::string> pending_keys;
  std::unordered_set<std::string> fresh_keys;
  for (const auto& scenario : grid) {
    scenario.validate();
    const std::string key = scenario_store_key(scenario, setup_.eval_count);
    if (!store.contains(key) && fresh_keys.insert(key).second) {
      pending.push_back(scenario);
      pending_keys.push_back(key);
    }
  }
  result.evaluated = pending.size();

  if (!pending.empty()) {
    std::size_t workers = worker_count();
    if (options_.max_workers > 0) {
      workers = std::min(workers, options_.max_workers);
    }
    const auto evaluate_range = [&](AttackEvaluator& evaluator,
                                    std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        // Scenario boundaries are the pipeline's cancellation points:
        // everything already evaluated is persisted, so stopping here loses
        // no work. parallel_for_chunks rethrows this on the caller.
        if (options_.cancel &&
            options_.cancel->load(std::memory_order_relaxed)) {
          throw ExperimentCancelled(setup_.tag());
        }
        trace::Span scenario_span("pipeline", "scenario.evaluate");
        if (scenario_span.active()) {
          scenario_span.arg("scenario", pending[i].id());
        }
        const double accuracy = evaluator.evaluate_scenario(pending[i]);
        store.put(pending_keys[i], accuracy);
        if (options_.verbose) {
          std::printf("  [pipeline] %-36s acc %.4f\n",
                      pending[i].id().c_str(), accuracy);
          std::fflush(stdout);
        }
      }
    };
    if (pending.size() < workers * 2) {
      // Too few scenarios to keep a fan-out busy: evaluate inline on the
      // calling thread, where the per-image inner loops still parallelize
      // (inside a fan-out worker they would degrade to serial). A fresh
      // model copy keeps this path identical to the worker path.
      auto inline_model = zoo_.get_or_train(setup_, variant, false);
      AttackEvaluator evaluator(setup_, *inline_model, variant.name, "",
                                options_.corruption);
      evaluate_range(evaluator, 0, pending.size());
    } else {
      // min_grain also caps the worker count: parallel_for_chunks spawns
      // at most pending/grain workers.
      const std::size_t grain = (pending.size() + workers - 1) / workers;
      parallel_for_chunks(
          0, pending.size(),
          [&](std::size_t lo, std::size_t hi) {
            // Scenario evaluation corrupts and restores model weights, so
            // every worker needs a private copy (cheap: a zoo cache load).
            auto worker_model = zoo_.get_or_train(setup_, variant, false);
            AttackEvaluator evaluator(setup_, *worker_model, variant.name,
                                      "", options_.corruption);
            evaluate_range(evaluator, lo, hi);
          },
          grain);
    }
  }

  // Assemble in grid order: execution order never leaks into the result.
  result.rows.reserve(grid.size());
  for (const auto& scenario : grid) {
    const std::string key = scenario_store_key(scenario, setup_.eval_count);
    const auto value = store.lookup(key);
    SAFELIGHT_ASSERT(value.has_value(), "pipeline: result missing after sweep");
    ScenarioOutcome outcome;
    outcome.scenario = scenario;
    outcome.accuracy = *value;
    outcome.from_cache = fresh_keys.count(key) == 0;
    if (outcome.from_cache) ++result.cache_hits;
    result.rows.push_back(outcome);
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

SweepResult ScenarioPipeline::run_paper_grid(const VariantSpec& variant,
                                             std::size_t seed_count,
                                             std::uint64_t base_seed) {
  return run(variant, attack::paper_scenario_grid(seed_count, base_seed));
}

}  // namespace safelight::core
