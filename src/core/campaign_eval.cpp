#include "core/campaign_eval.hpp"

#include "core/experiment.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/evaluation.hpp"
#include "core/result_store.hpp"

namespace safelight::core {

namespace {

/// One fan-out unit: a phase of one campaign.
struct PhaseTask {
  std::size_t campaign = 0;
  std::size_t phase = 0;
};

/// Probe seed of one (campaign, phase, check) cell, derived from its full
/// key so every check reads independent sensor noise and a cached score is
/// a pure function of the key.
std::uint64_t probe_seed_of(const std::string& key) {
  Fingerprint fp;
  fp.mix_bytes(key.data(), key.size());
  return splitmix64(fp.value());
}

/// Accuracy store key of a phase: composite-id based, so campaigns sharing
/// a composite (a burst equal to a ramp's peak) share the cached entry.
std::string accuracy_key(const attack::CampaignPhase& phase,
                         std::size_t eval_count) {
  return "acc/" + (phase.active() ? phase.attack.id() : "baseline") + "/n" +
         std::to_string(eval_count);
}

std::string score_key(const std::string& campaign_id, std::size_t phase,
                      std::size_t check, const std::string& detector) {
  return campaign_id + "/p" + std::to_string(phase) + "/k" +
         std::to_string(check) + "/" + detector + "/score";
}

/// Per-worker campaign engine: one conditioned private deployment hosting
/// both the accuracy evaluator (prefix-cache aware) and a calibrated
/// detector suite. Calibration is deterministic in (setup, weights, suite
/// config, base_seed), so every worker's suite is identical and results
/// never depend on the fan-out partitioning.
class CampaignEvaluator {
 public:
  CampaignEvaluator(const ExperimentSetup& setup, nn::Sequential& model,
                    const VariantSpec& variant,
                    const CampaignOptions& options)
      : setup_(setup),
        model_(model),
        options_(options),
        evaluator_(setup, model, variant.name, "", options.corruption),
        suite_(setup, options.suite) {
    const defense::DeploymentView clean{
        model_, evaluator_.executor(), nullptr,
        seed_combine(options_.base_seed, 0xCA11B)};
    suite_.calibrate(clean);
  }

  /// Evaluates one phase: accuracy (through the composite-id cache) plus
  /// `phase.checks` full suite checks against the compromised deployment.
  void run_phase(const attack::CampaignSchedule& schedule,
                 const std::string& campaign_id, std::size_t phase_index,
                 ResultStore& store) {
    const attack::CampaignPhase& phase = schedule.phases[phase_index];

    // The composite corrupts the deployment once; the accuracy measurement
    // and every check of the phase then observe the same compromised state
    // (evaluate_applied does not touch the weights).
    std::vector<attack::BlockThermalState> telemetry;
    if (phase.active()) {
      evaluator_.apply_composite(phase.attack);
      telemetry = defense::composite_telemetry(setup_.accelerator,
                                               phase.attack,
                                               options_.corruption);
    } else {
      evaluator_.restore_clean();
    }
    const std::string acc_key = accuracy_key(phase, setup_.eval_count);
    if (!store.contains(acc_key)) {
      const double accuracy =
          phase.active() ? evaluator_.evaluate_applied(phase.attack.id())
                         : evaluator_.baseline_accuracy();
      store.put(acc_key, accuracy);
    }
    const defense::DeploymentView view{
        model_, evaluator_.executor(),
        telemetry.empty() ? nullptr : &telemetry, 0};
    for (std::size_t check = 0; check < phase.checks; ++check) {
      defense::DeploymentView check_view = view;
      check_view.probe_seed = probe_seed_of(
          score_key(campaign_id, phase_index, check, "suite"));
      const std::vector<defense::DetectionResult> results =
          suite_.check_all(check_view);
      for (const defense::DetectionResult& r : results) {
        store.put(score_key(campaign_id, phase_index, check, r.detector),
                  r.score);
        if (options_.verbose) {
          std::printf("  [campaign] %-24s p%zu k%zu %-16s score %.4f%s\n",
                      schedule.name.c_str(), phase_index, check,
                      r.detector.c_str(), r.score,
                      r.flagged ? "  FLAGGED" : "");
          std::fflush(stdout);
        }
      }
    }
    evaluator_.restore_clean();
  }

 private:
  ExperimentSetup setup_;
  nn::Sequential& model_;
  CampaignOptions options_;
  AttackEvaluator evaluator_;
  defense::DetectorSuite suite_;
};

}  // namespace

const CampaignCell* CampaignResult::cell(std::size_t phase, std::size_t check,
                                         const std::string& detector) const {
  for (const CampaignCell& c : cells) {
    if (c.phase == phase && c.check == check && c.detector == detector) {
      return &c;
    }
  }
  return nullptr;
}

double CampaignResult::accuracy_drop(std::size_t phase) const {
  require(phase < phases.size(), "CampaignResult: phase out of range");
  return baseline_accuracy - phases[phase].accuracy;
}

bool CampaignResult::phase_flagged(std::size_t phase,
                                   const std::string& detector) const {
  require(phase < phases.size(), "CampaignResult: phase out of range");
  for (std::size_t check = 0; check < phases[phase].checks; ++check) {
    const CampaignCell* c = cell(phase, check, detector);
    if (c != nullptr && c->flagged) return true;
  }
  return false;
}

double CampaignResult::evasion_rate(const std::string& detector) const {
  std::size_t active = 0;
  std::size_t evaded = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (!phases[i].active) continue;
    ++active;
    if (!phase_flagged(i, detector)) ++evaded;
  }
  require(active > 0,
          "CampaignResult: no active phase to compute an evasion rate over");
  return static_cast<double>(evaded) / static_cast<double>(active);
}

std::size_t CampaignResult::detection_latency_checks(
    const std::string& detector) const {
  std::size_t first_active = phases.size();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (phases[i].active) {
      first_active = i;
      break;
    }
  }
  std::size_t elapsed = 0;
  for (std::size_t i = first_active; i < phases.size(); ++i) {
    for (std::size_t check = 0; check < phases[i].checks; ++check) {
      ++elapsed;
      if (!phases[i].active) continue;  // a dormant flag is a false positive
      const CampaignCell* c = cell(i, check, detector);
      if (c != nullptr && c->flagged) return elapsed;
    }
  }
  return 0;
}

namespace {

/// The sweep proper, in the unified-API shape: spec in, typed report out.
CampaignSweepReport campaign_impl(const ExperimentSpec& experiment_spec,
                                  RunContext& context) {
  const ExperimentSetup setup = experiment_spec.resolved_setup();
  ModelZoo& zoo = context.zoo();
  const VariantSpec variant = experiment_spec.resolved_variant();
  const std::vector<attack::CampaignSchedule> campaigns =
      experiment_spec.campaigns.empty() ? attack::standard_campaigns()
                                        : experiment_spec.campaigns;
  CampaignOptions options;
  options.base_seed = experiment_spec.base_seed;
  options.cache_dir = experiment_spec.cache_dir;
  options.max_workers = experiment_spec.max_workers;
  options.verbose = experiment_spec.verbose;
  options.corruption = experiment_spec.corruption;
  options.suite = experiment_spec.suite;
  context.note("campaign: sweep " + setup.tag() + " / " + variant.name);

  const auto start = std::chrono::steady_clock::now();
  require(!campaigns.empty(), "run_campaign_sweep: need >= 1 campaign");
  std::vector<std::string> campaign_ids;
  campaign_ids.reserve(campaigns.size());
  std::set<std::string> distinct_ids;
  for (const attack::CampaignSchedule& schedule : campaigns) {
    schedule.validate();
    campaign_ids.push_back(schedule.id());
    require(distinct_ids.insert(campaign_ids.back()).second,
            "run_campaign_sweep: duplicate campaign '" +
                campaign_ids.back() + "'");
  }

  // Train (or load) on the calling thread; workers only load cache entries.
  auto model = zoo.get_or_train(setup, variant, options.verbose);
  const std::string checksum = weights_checksum(*model);

  // Names and default thresholds for report assembly; workers calibrate
  // their own identical suites.
  defense::DetectorSuite reference(setup, options.suite);
  const std::vector<std::string> detector_names = reference.names();

  std::string csv_path;
  if (!options.cache_dir.empty()) {
    std::filesystem::create_directories(options.cache_dir);
    csv_path = options.cache_dir + "/" + setup.tag() + "_" + variant.name +
               "_" + checksum + "_" +
               attack::config_fingerprint(options.corruption) + "_" +
               defense::config_fingerprint(options.suite) + ".campaign.csv";
  }
  ResultStore store(csv_path);

  // Pending phases: any missing key (accuracy or a score cell) re-evaluates
  // the whole phase — an interrupt can land between the per-cell flushes,
  // and a partially stored phase must re-check rather than crash assembly.
  const auto fully_stored = [&](std::size_t ci, std::size_t pi) {
    const attack::CampaignPhase& phase = campaigns[ci].phases[pi];
    if (!store.contains(accuracy_key(phase, setup.eval_count))) return false;
    for (std::size_t check = 0; check < phase.checks; ++check) {
      for (const std::string& name : detector_names) {
        if (!store.contains(score_key(campaign_ids[ci], pi, check, name))) {
          return false;
        }
      }
    }
    return true;
  };
  std::vector<PhaseTask> pending;
  for (std::size_t ci = 0; ci < campaigns.size(); ++ci) {
    for (std::size_t pi = 0; pi < campaigns[ci].phases.size(); ++pi) {
      if (!fully_stored(ci, pi)) pending.push_back({ci, pi});
    }
  }

  const auto evaluate_range = [&](CampaignEvaluator& evaluator,
                                  std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      const PhaseTask& task = pending[p];
      evaluator.run_phase(campaigns[task.campaign],
                          campaign_ids[task.campaign], task.phase, store);
    }
  };

  if (!pending.empty()) {
    std::size_t workers = worker_count();
    if (options.max_workers > 0) workers = std::min(workers, options.max_workers);
    if (pending.size() < workers * 2) {
      // Too few phases to keep a fan-out busy: evaluate inline; the probe
      // and evaluation forwards inside still parallelize.
      CampaignEvaluator evaluator(setup, *model, variant, options);
      evaluate_range(evaluator, 0, pending.size());
    } else {
      const std::size_t grain = (pending.size() + workers - 1) / workers;
      parallel_for_chunks(
          0, pending.size(),
          [&](std::size_t lo, std::size_t hi) {
            // Phase evaluation corrupts and restores model weights, so
            // every worker deploys a private copy (a zoo cache load).
            auto worker_model = zoo.get_or_train(setup, variant, false);
            CampaignEvaluator evaluator(setup, *worker_model, variant,
                                        options);
            evaluate_range(evaluator, lo, hi);
          },
          grain);
    }
  }

  // Assemble in campaign/phase order; execution order never leaks out.
  std::set<std::pair<std::size_t, std::size_t>> fresh;
  for (const PhaseTask& task : pending) {
    fresh.insert({task.campaign, task.phase});
  }
  CampaignSweepReport report;
  report.variant = variant.name;
  report.evaluated = pending.size();
  report.campaigns.reserve(campaigns.size());
  const std::string baseline_key = "acc/baseline/n" +
                                   std::to_string(setup.eval_count);
  for (std::size_t ci = 0; ci < campaigns.size(); ++ci) {
    const attack::CampaignSchedule& schedule = campaigns[ci];
    CampaignResult result;
    result.campaign = schedule.name;
    result.campaign_id = campaign_ids[ci];
    result.detectors = detector_names;
    if (const auto cached = store.lookup(baseline_key)) {
      result.baseline_accuracy = *cached;
    } else {
      // Every phase was active, so no dormant phase stored the baseline:
      // one clean evaluation fills it in. A fresh zoo load, because *model
      // may already have been conditioned by the inline fan-out path and
      // conditioning is only idempotent up to requantization.
      auto clean_model = zoo.get_or_train(setup, variant, false);
      AttackEvaluator evaluator(setup, *clean_model, variant.name, "",
                                options.corruption);
      result.baseline_accuracy = evaluator.baseline_accuracy();
      store.put(baseline_key, result.baseline_accuracy);
    }
    for (std::size_t pi = 0; pi < schedule.phases.size(); ++pi) {
      const attack::CampaignPhase& phase = schedule.phases[pi];
      const bool from_cache = fresh.count({ci, pi}) == 0;
      if (from_cache) ++report.cache_hits;
      const auto accuracy = store.lookup(accuracy_key(phase, setup.eval_count));
      SAFELIGHT_ASSERT(accuracy.has_value(),
                       "campaign sweep: accuracy missing after fan-out");
      CampaignPhaseOutcome outcome;
      outcome.name = phase.name;
      outcome.active = phase.active();
      outcome.checks = phase.checks;
      outcome.accuracy = *accuracy;
      result.phases.push_back(outcome);
      for (std::size_t check = 0; check < phase.checks; ++check) {
        for (const std::string& name : detector_names) {
          const auto score =
              store.lookup(score_key(campaign_ids[ci], pi, check, name));
          SAFELIGHT_ASSERT(score.has_value(),
                           "campaign sweep: score missing after fan-out");
          CampaignCell cell;
          cell.phase = pi;
          cell.check = check;
          cell.detector = name;
          cell.score = *score;
          cell.flagged = *score > reference.detector(name).threshold();
          cell.from_cache = from_cache;
          result.cells.push_back(std::move(cell));
        }
      }
    }
    report.campaigns.push_back(std::move(result));
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace

ExperimentResult run_campaign_experiment(const ExperimentSpec& spec,
                                         RunContext& context) {
  spec.validate();  // callers may invoke this runner without the registry
  ExperimentResult result;
  result.payload = campaign_impl(spec, context);
  return result;
}

CampaignSweepReport run_campaign_sweep(
    const ExperimentSetup& setup, ModelZoo& zoo, const VariantSpec& variant,
    const std::vector<attack::CampaignSchedule>& campaigns,
    const CampaignOptions& options) {
  // An explicitly empty list is caller error here; only the spec's empty
  // default means "the standard red-team set".
  require(!campaigns.empty(), "run_campaign_sweep: need >= 1 campaign");
  ExperimentSpec spec =
      ExperimentRegistry::global().default_spec("campaign", setup);
  spec.base_seed = options.base_seed;
  spec.variant = variant.name;
  spec.variant_override = variant;  // pass through verbatim, no name lookup
  spec.campaigns = campaigns;
  spec.cache_dir = options.cache_dir;
  spec.max_workers = options.max_workers;
  spec.verbose = options.verbose;
  spec.corruption = options.corruption;
  spec.suite = options.suite;
  RunContext context(zoo);
  return ExperimentRegistry::global()
      .run(spec, context)
      .as<CampaignSweepReport>();
}

}  // namespace safelight::core
