// Model zoo: trains mitigation variants on demand and caches weights.
//
// The experiment benches share trained models through an on-disk cache
// (SAFELIGHT_ZOO, default ./safelight_zoo). Each entry is keyed by
// (model, scale, variant); the cache file stores all parameters plus
// batch-norm running statistics and is integrity-checked on load, so a
// corrupt or architecture-mismatched file triggers retraining instead of
// silent misbehaviour.
//
// Thread safety: one ModelZoo may be shared by concurrent experiment runs
// (the `safelight serve` slots all train through one zoo). get_or_train
// serializes per entry — the first caller of a missing (setup, variant)
// trains and saves it exactly once while every other caller of that entry
// waits and then loads the cached bytes; callers of *different* entries
// never block each other. Training is deterministic, so the cached weights
// are bitwise-identical whether the entry was produced under contention or
// sequentially (stress-tested in serve_test).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/experiment_scale.hpp"
#include "core/variants.hpp"

namespace safelight::core {

class ModelZoo {
 public:
  /// Uses SAFELIGHT_ZOO (or ./safelight_zoo) when `directory` is empty.
  /// Creates the directory when missing.
  explicit ModelZoo(std::string directory = "");

  const std::string& directory() const { return directory_; }

  /// Cache file path of a (setup, variant) entry.
  std::string entry_path(const ExperimentSetup& setup,
                         const VariantSpec& variant) const;

  /// Loads the cached model or trains + caches it. The returned model is in
  /// its clean (un-conditioned, un-attacked) trained state. Safe to call
  /// concurrently; each entry trains at most once per process (the
  /// "zoo.trainings" metrics counter counts actual trainings).
  std::unique_ptr<nn::Sequential> get_or_train(const ExperimentSetup& setup,
                                               const VariantSpec& variant,
                                               bool verbose = false);

  /// True when a structurally valid cache entry exists.
  bool has_entry(const ExperimentSetup& setup, const VariantSpec& variant);

 private:
  /// The per-entry train-once lock, created on first use.
  std::mutex& entry_lock(const std::string& path);

  std::string directory_;
  std::mutex mutex_;  // guards entry_locks_ (node handles stay stable)
  std::map<std::string, std::mutex> entry_locks_;
};

}  // namespace safelight::core
