// Model zoo: trains mitigation variants on demand and caches weights.
//
// The experiment benches share trained models through an on-disk cache
// (SAFELIGHT_ZOO, default ./safelight_zoo). Each entry is keyed by
// (model, scale, variant); the cache file stores all parameters plus
// batch-norm running statistics and is integrity-checked on load, so a
// corrupt or architecture-mismatched file triggers retraining instead of
// silent misbehaviour.
#pragma once

#include <memory>
#include <string>

#include "core/experiment_scale.hpp"
#include "core/variants.hpp"

namespace safelight::core {

class ModelZoo {
 public:
  /// Uses SAFELIGHT_ZOO (or ./safelight_zoo) when `directory` is empty.
  /// Creates the directory when missing.
  explicit ModelZoo(std::string directory = "");

  const std::string& directory() const { return directory_; }

  /// Cache file path of a (setup, variant) entry.
  std::string entry_path(const ExperimentSetup& setup,
                         const VariantSpec& variant) const;

  /// Loads the cached model or trains + caches it. The returned model is in
  /// its clean (un-conditioned, un-attacked) trained state.
  std::unique_ptr<nn::Sequential> get_or_train(const ExperimentSetup& setup,
                                               const VariantSpec& variant,
                                               bool verbose = false);

  /// True when a structurally valid cache entry exists.
  bool has_entry(const ExperimentSetup& setup, const VariantSpec& variant);

 private:
  std::string directory_;
};

}  // namespace safelight::core
