#include "core/variants.hpp"

#include "common/error.hpp"

namespace safelight::core {

std::vector<VariantSpec> paper_variants(float l2_strength) {
  require(l2_strength > 0.0f, "paper_variants: L2 strength must be positive");
  std::vector<VariantSpec> variants;
  variants.push_back({"Original", 0.0f, 0.0f});
  variants.push_back({"L2_reg", l2_strength, 0.0f});
  for (int i = 1; i <= 9; ++i) {
    variants.push_back({"l2+n" + std::to_string(i), l2_strength,
                        static_cast<float>(i) * 0.1f});
  }
  return variants;
}

VariantSpec variant_by_name(const std::string& name, float l2_strength) {
  for (const auto& variant : paper_variants(l2_strength)) {
    if (variant.name == name) return variant;
  }
  fail_argument("variant_by_name: unknown variant '" + name +
                "' (valid variants: Original, L2_reg, l2+n1 .. l2+n9)");
}

nn::TrainConfig apply_variant(const nn::TrainConfig& base,
                              const VariantSpec& variant) {
  nn::TrainConfig config = base;
  config.weight_decay = variant.weight_decay;
  config.noise.sigma = variant.noise_sigma;
  config.noise.mode = nn::NoiseMode::kRelativeToStd;
  return config;
}

}  // namespace safelight::core
