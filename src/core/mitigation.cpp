#include "core/mitigation.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"

namespace safelight::core {

namespace {

/// The sweep proper, in the unified-API shape: spec in, typed report out.
MitigationReport mitigation_impl(const ExperimentSpec& spec,
                                 RunContext& context) {
  const ExperimentSetup setup = spec.resolved_setup();
  const auto scenarios =
      attack::paper_scenario_grid(spec.seed_count, spec.base_seed);

  MitigationReport report;
  report.model = setup.model;

  PipelineOptions pipeline_options;
  pipeline_options.cache_dir = spec.cache_dir;
  pipeline_options.max_workers = spec.max_workers;
  pipeline_options.verbose = spec.verbose;
  pipeline_options.corruption = spec.corruption;
  pipeline_options.cancel = context.cancel;
  ScenarioPipeline pipeline(setup, context.zoo(), pipeline_options);

  for (const VariantSpec& variant : paper_variants(spec.l2_strength)) {
    context.throw_if_cancelled("mitigation");
    context.note("mitigation: " + setup.tag() + " / " + variant.name);
    if (spec.verbose) {
      std::printf("[mitigation] %s / %s\n", setup.tag().c_str(),
                  variant.name.c_str());
      std::fflush(stdout);
    }
    const SweepResult sweep = pipeline.run(variant, scenarios);

    VariantOutcome outcome;
    outcome.variant = variant;
    outcome.baseline_accuracy = sweep.baseline_accuracy;
    if (variant.is_original()) {
      report.original_baseline = outcome.baseline_accuracy;
    }
    outcome.under_attack = sweep.under_attack();
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace

const VariantOutcome& MitigationReport::best_robust() const {
  require(!outcomes.empty(), "MitigationReport: no outcomes");
  const VariantOutcome* best = nullptr;
  for (const auto& outcome : outcomes) {
    if (outcome.variant.is_original()) continue;
    // Documented ordering: median under attack, then worst case (min),
    // then lexicographically smallest name — so the winner never depends
    // on the order the variants were swept in.
    const auto better = [&](const VariantOutcome& candidate) {
      if (candidate.under_attack.median != best->under_attack.median) {
        return candidate.under_attack.median > best->under_attack.median;
      }
      if (candidate.under_attack.min != best->under_attack.min) {
        return candidate.under_attack.min > best->under_attack.min;
      }
      return candidate.variant.name < best->variant.name;
    };
    if (best == nullptr || better(outcome)) best = &outcome;
  }
  require(best != nullptr, "MitigationReport: no robust variants evaluated");
  return *best;
}

const VariantOutcome& MitigationReport::outcome(
    const std::string& variant_name) const {
  for (const auto& o : outcomes) {
    if (o.variant.name == variant_name) return o;
  }
  fail_argument("MitigationReport: unknown variant '" + variant_name + "'");
}

ExperimentResult run_mitigation_experiment(const ExperimentSpec& spec,
                                           RunContext& context) {
  spec.validate();  // callers may invoke this runner without the registry
  ExperimentResult result;
  result.payload = mitigation_impl(spec, context);
  return result;
}

MitigationReport run_mitigation(const ExperimentSetup& setup, ModelZoo& zoo,
                                const MitigationOptions& options) {
  ExperimentSpec spec =
      ExperimentRegistry::global().default_spec("mitigation", setup);
  spec.seed_count = options.seed_count;
  spec.base_seed = options.base_seed;
  spec.l2_strength = options.l2_strength;
  spec.cache_dir = options.cache_dir;
  spec.verbose = options.verbose;
  RunContext context(zoo);
  return ExperimentRegistry::global().run(spec, context).as<MitigationReport>();
}

}  // namespace safelight::core
