#include "core/mitigation.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "core/pipeline.hpp"

namespace safelight::core {

const VariantOutcome& MitigationReport::best_robust() const {
  require(!outcomes.empty(), "MitigationReport: no outcomes");
  const VariantOutcome* best = nullptr;
  for (const auto& outcome : outcomes) {
    if (outcome.variant.is_original()) continue;
    // Documented ordering: median under attack, then worst case (min),
    // then lexicographically smallest name — so the winner never depends
    // on the order the variants were swept in.
    const auto better = [&](const VariantOutcome& candidate) {
      if (candidate.under_attack.median != best->under_attack.median) {
        return candidate.under_attack.median > best->under_attack.median;
      }
      if (candidate.under_attack.min != best->under_attack.min) {
        return candidate.under_attack.min > best->under_attack.min;
      }
      return candidate.variant.name < best->variant.name;
    };
    if (best == nullptr || better(outcome)) best = &outcome;
  }
  require(best != nullptr, "MitigationReport: no robust variants evaluated");
  return *best;
}

const VariantOutcome& MitigationReport::outcome(
    const std::string& variant_name) const {
  for (const auto& o : outcomes) {
    if (o.variant.name == variant_name) return o;
  }
  fail_argument("MitigationReport: unknown variant '" + variant_name + "'");
}

MitigationReport run_mitigation(const ExperimentSetup& setup, ModelZoo& zoo,
                                const MitigationOptions& options) {
  require(options.seed_count > 0, "run_mitigation: need >= 1 seed");
  const auto scenarios =
      attack::paper_scenario_grid(options.seed_count, options.base_seed);

  MitigationReport report;
  report.model = setup.model;

  PipelineOptions pipeline_options;
  pipeline_options.cache_dir = options.cache_dir;
  pipeline_options.verbose = options.verbose;
  ScenarioPipeline pipeline(setup, zoo, pipeline_options);

  for (const VariantSpec& variant : paper_variants(options.l2_strength)) {
    if (options.verbose) {
      std::printf("[mitigation] %s / %s\n", setup.tag().c_str(),
                  variant.name.c_str());
      std::fflush(stdout);
    }
    const SweepResult sweep = pipeline.run(variant, scenarios);

    VariantOutcome outcome;
    outcome.variant = variant;
    outcome.baseline_accuracy = sweep.baseline_accuracy;
    if (variant.is_original()) {
      report.original_baseline = outcome.baseline_accuracy;
    }
    outcome.under_attack = sweep.under_attack();
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace safelight::core
