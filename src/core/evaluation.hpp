// Attack evaluation engine with persistent result caching.
//
// For one trained model variant, the evaluator:
//   1. conditions the weights for deployment (per-tensor normalization +
//      DAC quantization, accel::OnnExecutor),
//   2. snapshots the conditioned state,
//   3. per scenario: restores the snapshot, applies the attack corruption
//      through the weight-stationary mapping, and measures accuracy on the
//      evaluation subset.
// Results are memoized in a CSV keyed by a checksum of the trained weights,
// so reruns of the bench suite are cheap and retraining invalidates stale
// entries automatically.
#pragma once

#include <memory>
#include <string>

#include "accel/executor.hpp"
#include "attacks/corruption.hpp"
#include "core/experiment_scale.hpp"
#include "core/result_store.hpp"

namespace safelight::core {

class AttackEvaluator {
 public:
  /// `cache_dir` empty disables persistence (tests). The model reference
  /// must outlive the evaluator; its weights are managed by the evaluator
  /// from here on (conditioned, attacked, restored). `corruption` sets the
  /// attack physics shared by every scenario this evaluator runs; it is
  /// fingerprinted into the cache file name, so evaluators with different
  /// physics never share cached accuracies.
  AttackEvaluator(const ExperimentSetup& setup, nn::Sequential& model,
                  std::string variant_name, std::string cache_dir,
                  attack::CorruptionConfig corruption = {});

  /// Accuracy of the unattacked (conditioned) model on the eval subset.
  double baseline_accuracy();

  /// Accuracy under one attack scenario (cached).
  double evaluate_scenario(const attack::AttackScenario& scenario);

  /// Corruption statistics of the last *computed* (non-cached) scenario.
  const attack::CorruptionStats& last_stats() const { return last_stats_; }

  /// Leaves the model in its clean conditioned state.
  void restore_clean();

  const ExperimentSetup& setup() const { return setup_; }

 private:
  std::string cache_key(const std::string& scenario_id) const;

  ExperimentSetup setup_;
  nn::Sequential& model_;
  std::string variant_name_;
  accel::OnnExecutor executor_;
  accel::WeightStationaryMapping mapping_;
  std::vector<nn::Tensor> clean_snapshot_;
  nn::Dataset eval_data_;
  attack::CorruptionConfig corruption_;
  attack::CorruptionStats last_stats_{};
  std::unique_ptr<ResultStore> cache_;  // in-memory when cache_dir was empty
};

/// FNV-1a checksum over all parameter bytes (cache invalidation key).
std::string weights_checksum(nn::Sequential& model);

}  // namespace safelight::core
