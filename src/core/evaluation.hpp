// Attack evaluation engine with persistent result caching.
//
// For one trained model variant, the evaluator:
//   1. conditions the weights for deployment (per-tensor normalization +
//      DAC quantization, accel::OnnExecutor),
//   2. snapshots the conditioned state,
//   3. per scenario: restores the snapshot, applies the attack corruption
//      through the weight-stationary mapping, and measures accuracy on the
//      evaluation subset.
// Results are memoized in a CSV keyed by a checksum of the trained weights,
// so reruns of the bench suite are cheap and retraining invalidates stale
// entries automatically.
//
// Prefix-activation caching: apply_attack only mutates parameters of
// MR-mapped layers, so for the fixed eval set the activations up to the
// first corrupted layer are identical across scenarios. The evaluator
// detects each scenario's first dirty layer (byte comparison against the
// clean snapshot), computes the clean activations at that boundary once per
// boundary, and resumes every scenario's forward there — bitwise-identical
// to a full forward, and free of the conv-stack cost for FC-only attacks.
// Caching is disabled while a *mutating* read-out hook is installed (the
// hook corrupts even clean-prefix layers); observing hooks (defense range
// monitors) keep it active. It can be turned off globally with
// SAFELIGHT_PREFIX_CACHE=0 (the A/B switch scripts/bench_report.sh uses).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "accel/executor.hpp"
#include "attacks/campaign.hpp"
#include "attacks/corruption.hpp"
#include "core/experiment_scale.hpp"
#include "core/result_store.hpp"

namespace safelight::core {

class AttackEvaluator {
 public:
  /// `cache_dir` empty disables persistence (tests). The model reference
  /// must outlive the evaluator; its weights are managed by the evaluator
  /// from here on (conditioned, attacked, restored). `corruption` sets the
  /// attack physics shared by every scenario this evaluator runs; it is
  /// fingerprinted into the cache file name, so evaluators with different
  /// physics never share cached accuracies.
  AttackEvaluator(const ExperimentSetup& setup, nn::Sequential& model,
                  std::string variant_name, std::string cache_dir,
                  attack::CorruptionConfig corruption = {});

  /// Accuracy of the unattacked (conditioned) model on the eval subset.
  double baseline_accuracy();

  /// Accuracy under one attack scenario (cached).
  double evaluate_scenario(const attack::AttackScenario& scenario);

  /// Accuracy under a composite scenario (cached by CompositeScenario::id,
  /// which is component-order invariant — a reordered composite hits the
  /// same entry). All components corrupt the deployment in one pass before
  /// a single evaluation; the prefix cache resumes at the first layer any
  /// component dirtied (first_dirty_layer spans the union of components,
  /// because it byte-compares the whole mapped state against the clean
  /// snapshot).
  double evaluate_composite(const attack::CompositeScenario& composite);

  /// Applies every component of `composite` to the clean deployment and
  /// *leaves the model attacked* — the campaign sweep's entry point for
  /// running detector checks against a composite-compromised deployment.
  /// Call restore_clean() when done. Returns the aggregated corruption
  /// stats (also latched in last_stats()).
  attack::CorruptionStats apply_composite(
      const attack::CompositeScenario& composite);

  /// Accuracy of the deployment in its *current* (already-attacked) state,
  /// cached under `id` like evaluate_scenario and routed through the
  /// prefix cache. Does not touch the weights — the campaign sweep uses it
  /// between apply_composite and the detector checks so each phase pays
  /// for exactly one corruption pass.
  double evaluate_applied(const std::string& id);

  /// Corruption statistics of the last *computed* (non-cached) scenario.
  const attack::CorruptionStats& last_stats() const { return last_stats_; }

  /// Leaves the model in its clean conditioned state.
  void restore_clean();

  /// Enables/disables prefix-activation caching for this evaluator
  /// (overrides the SAFELIGHT_PREFIX_CACHE default; tests A/B both paths).
  void set_prefix_cache(bool enabled) { prefix_cache_enabled_ = enabled; }
  bool prefix_cache_enabled() const { return prefix_cache_enabled_; }

  /// Index of the first layer whose mapped parameters differ from the clean
  /// snapshot; model.size() when no corruption landed. Exposed for tests.
  std::size_t first_dirty_layer() const;

  /// Prefix evaluations served / boundaries computed so far (diagnostics).
  std::size_t prefix_hits() const { return prefix_hits_; }
  std::size_t prefix_boundaries() const { return prefix_cache_.size(); }

  const ExperimentSetup& setup() const { return setup_; }

  /// The evaluator's executor, exposed so callers can install read-out
  /// hooks (ADC attack payloads, defense monitors). Hooks registered as
  /// ReadoutHookKind::kObserving keep the prefix cache active; mutating
  /// hooks force plain evaluation (see evaluate_attacked).
  accel::OnnExecutor& executor() { return executor_; }

 private:
  std::string cache_key(const std::string& scenario_id) const;

  /// Accuracy of the currently-attacked model, routed through the prefix
  /// cache when eligible, plain evaluation otherwise.
  double evaluate_attacked();

  /// Returns the cached clean activations at boundary `layer`, computing
  /// them on first use (temporarily restoring the clean weights).
  const std::vector<nn::Tensor>& prefix_for(std::size_t layer);

  ExperimentSetup setup_;
  nn::Sequential& model_;
  std::string variant_name_;
  accel::OnnExecutor executor_;
  accel::WeightStationaryMapping mapping_;
  std::vector<nn::Tensor> clean_snapshot_;
  nn::Dataset eval_data_;
  attack::CorruptionConfig corruption_;
  attack::CorruptionStats last_stats_{};
  std::unique_ptr<ResultStore> cache_;  // in-memory when cache_dir was empty

  /// Per-layer clean copies of the MR-mapped parameter tensors, in layer
  /// order (only layers that own mapped parameters appear).
  std::vector<std::pair<std::size_t,
                        std::vector<std::pair<const nn::Param*, nn::Tensor>>>>
      clean_mapped_;
  /// boundary layer index -> clean activations per eval batch.
  std::map<std::size_t, std::vector<nn::Tensor>> prefix_cache_;
  bool prefix_cache_enabled_ = true;
  std::size_t prefix_hits_ = 0;
  std::size_t prefix_floats_ = 0;  // floats held across all boundaries
};

/// FNV-1a checksum over all parameter bytes (cache invalidation key).
std::string weights_checksum(nn::Sequential& model);

}  // namespace safelight::core
