// Campaign-evaluation sweep: red-team campaigns vs. the defense suite.
//
// The detection sweep (core/detection.hpp) scores detectors against the
// paper's static single-vector grid — every run is one scenario at one
// fixed intensity. This module runs *campaigns* (attacks/campaign.hpp):
// composite multi-vector scenarios that evolve over a phase timeline, so an
// attack can start below a range monitor's calibrated envelope, stay
// dormant while the defender samples, and burst later. Per campaign it
// reports the per-phase accuracy drop (what the attack costs while live),
// per-detector detection latency in checks, and the evasion rate — the
// fraction of active phases where the attack goes unflagged.
//
// Same fan-out / ResultStore discipline as the other sweeps: phases
// evaluate in parallel over private deployments, every cell persists
// immediately keyed on the schedule's stable id, and interrupted sweeps
// resume. Phase accuracies key on the composite id alone, so campaigns
// sharing a composite (e.g. a burst phase equal to a ramp's peak) share
// cached accuracy entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/campaign.hpp"
#include "attacks/corruption.hpp"
#include "core/experiment_scale.hpp"
#include "core/zoo.hpp"
#include "defense/suite.hpp"

namespace safelight::core {

/// Knobs of run_campaign_sweep.
struct CampaignOptions {
  std::uint64_t base_seed = 1000;  // suite calibration seed
  std::string cache_dir;           // empty disables persistence
  std::size_t max_workers = 0;
  bool verbose = false;
  attack::CorruptionConfig corruption{};
  defense::SuiteConfig suite{};
};

/// One (phase, check, detector) cell of a campaign run.
struct CampaignCell {
  std::size_t phase = 0;  // phase index within the schedule
  std::size_t check = 0;  // check index within the phase
  std::string detector;
  double score = 0.0;
  bool flagged = false;  // at the detector's default threshold
  bool from_cache = false;
};

/// One phase of a campaign as evaluated: bookkeeping plus the deployment
/// accuracy while the phase's attack is live (baseline for dormant phases).
struct CampaignPhaseOutcome {
  std::string name;
  bool active = false;
  std::size_t checks = 1;
  double accuracy = 0.0;
};

/// Outcome of one campaign schedule against one deployed variant.
struct CampaignResult {
  std::string campaign;     // schedule name
  std::string campaign_id;  // schedule id (cache-key prefix)
  double baseline_accuracy = 0.0;
  std::vector<std::string> detectors;  // suite order
  std::vector<CampaignPhaseOutcome> phases;
  /// Phase-major, check-, detector-minor.
  std::vector<CampaignCell> cells;

  /// Cell of (phase, check, detector); nullptr when absent.
  const CampaignCell* cell(std::size_t phase, std::size_t check,
                           const std::string& detector) const;

  /// Accuracy cost of a phase: baseline - phase accuracy.
  double accuracy_drop(std::size_t phase) const;

  /// True when the detector flagged any check of the phase.
  bool phase_flagged(std::size_t phase, const std::string& detector) const;

  /// Fraction of *active* phases the detector never flagged — the
  /// campaign's headline metric. Throws when the schedule has no active
  /// phase.
  double evasion_rate(const std::string& detector) const;

  /// Checks elapsed from the start of the first active phase until the
  /// detector's first flag *in an active phase* (1 = flagged immediately).
  /// Dormant-phase checks in between count — they are real elapsed defender
  /// time — but a dormant-phase flag is a false positive, not a detection.
  /// 0 when the detector never flagged an active phase.
  std::size_t detection_latency_checks(const std::string& detector) const;
};

/// Outcome of one run_campaign_sweep call.
struct CampaignSweepReport {
  std::string variant;
  std::vector<CampaignResult> campaigns;  // campaign input order
  std::size_t evaluated = 0;   // phases computed in this sweep
  std::size_t cache_hits = 0;  // phases served from the result store
  double wall_seconds = 0.0;
};

/// Runs every campaign schedule against the deployed `variant`: per phase,
/// the composite corrupts a private clean deployment in one pass, accuracy
/// is measured through the prefix-cached evaluator, and every detector
/// checks the compromised deployment `phase.checks` times under distinct
/// probe seeds. Parallel over phases, ResultStore-cached, resumable,
/// deterministic in (setup, variant, schedules, options).
///
/// Deprecated shim: builds an ExperimentSpec and delegates to
/// ExperimentRegistry::global().run("campaign") — new callers should use
/// core/experiment.hpp directly.
CampaignSweepReport run_campaign_sweep(
    const ExperimentSetup& setup, ModelZoo& zoo, const VariantSpec& variant,
    const std::vector<attack::CampaignSchedule>& campaigns,
    const CampaignOptions& options);

}  // namespace safelight::core
