// Experiment setup: models, datasets, training and accelerator scaling.
//
// The reproduction host has 2 CPU cores, so the default experiments run
// width/resolution-reduced models. What must be preserved for the paper's
// effects to reproduce is not the absolute parameter count but the
// *mapping pressure* on the accelerator:
//   * CNN_1 occupies < 7 % of the CONV block and ~3 % of the FC block in a
//     single pass — it keeps the full CrossLight block dimensions;
//   * ResNet18 needs ~118 CONV passes (4.7M weights / 40K slots) and a tiny
//     FC footprint;
//   * VGG16_v needs ~98 CONV and ~89 FC passes — the multi-pass regime that
//     collapses under 10 % attacks.
// accelerator_for() shrinks block unit counts (and, when necessary, FC
// banks-per-unit) so the reduced models hit the same pass counts. Bank
// widths (20 / 150 MRs) are never changed: they set the hotspot cluster
// size, a key attack property.
#pragma once

#include "accel/arch.hpp"
#include "common/config.hpp"
#include "nn/models.hpp"
#include "nn/synthetic.hpp"
#include "nn/trainer.hpp"

namespace safelight::core {

/// Everything one experiment needs: the model recipe, its datasets, the
/// base training configuration and the (pressure-matched) accelerator.
struct ExperimentSetup {
  nn::ModelId model = nn::ModelId::kCnn1;
  Scale scale = Scale::kDefault;
  nn::ModelConfig model_config{};
  std::string dataset_family;      // "digits" | "shapes" | "textures"
  nn::SynthConfig train_data{};
  nn::SynthConfig test_data{};
  nn::TrainConfig base_train{};    // variant factory overrides reg/noise
  accel::AcceleratorConfig accelerator{};
  std::size_t eval_count = 300;    // test images per attack evaluation

  /// "cnn1_default" — used in zoo/cache file names.
  std::string tag() const;
};

/// Canonical setup for a model at a scale. The default resolves through
/// common/config.hpp (CLI flag > SAFELIGHT_SCALE > default, strict on
/// unknown names).
ExperimentSetup experiment_setup(nn::ModelId id, Scale scale = config::scale());

/// Derives a pass-pressure-preserving accelerator for a model with the given
/// MR-mapped weight counts. Exposed for tests; experiment_setup uses it.
accel::AcceleratorConfig accelerator_for(nn::ModelId id,
                                         std::size_t conv_weights,
                                         std::size_t fc_weights);

/// Builds the train/test datasets of a setup.
nn::Dataset make_train_data(const ExperimentSetup& setup);
nn::Dataset make_test_data(const ExperimentSetup& setup);

}  // namespace safelight::core
