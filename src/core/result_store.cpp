#include "core/result_store.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"

namespace safelight::core {

namespace {

/// Full-precision round-trip format: a resumed run must report exactly the
/// accuracies the original run computed.
std::string format_value(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Deletes every `*.tmp` file in `directory` with a warning line. Writers
/// in the cache directory (nn::save_model and friends) stage durable files
/// as `<target>.tmp` + atomic rename; a crash between the two leaves the
/// orphan behind, and nothing would ever reclaim it. Cache directories have
/// a single live writer by contract (sharding will need liveness checks
/// here), so any `.tmp` present at open time is dead.
void sweep_orphaned_temp_files(const std::filesystem::path& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) return;  // directory missing/unreadable: nothing to sweep
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || entry.path().extension() != ".tmp") {
      continue;
    }
    std::error_code remove_ec;
    std::filesystem::remove(entry.path(), remove_ec);
    if (!remove_ec) {
      log::warn("store",
                "removed orphaned temp file %s (left by an "
                "interrupted writer)",
                entry.path().c_str());
    }
  }
}

/// Truncates `path` back to its last complete ('\n'-terminated) line. The
/// JSONL mirror is append-only telemetry: a record torn by a crash must not
/// merge with the next append into one corrupt line.
void truncate_torn_tail(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  in.close();
  const std::size_t last_newline = content.rfind('\n');
  const std::size_t keep =
      last_newline == std::string::npos ? 0 : last_newline + 1;
  if (keep != content.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, keep, ec);
  }
}

/// Splits one CSV line into (key, raw value bytes) when it is a complete,
/// well-formed store row; nullopt for headers, blanks and malformed rows.
/// The value must parse as a full double but is returned unparsed — the
/// multi-writer merge compares value *bytes*.
std::optional<RawStoreEntry> parse_store_line(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty() || line == "key,accuracy") return std::nullopt;
  const std::size_t comma = line.rfind(',');
  if (comma == std::string::npos || comma == 0) return std::nullopt;
  const char* value_begin = line.c_str() + comma + 1;
  char* value_end = nullptr;
  const double value = std::strtod(value_begin, &value_end);
  (void)value;
  if (value_end == value_begin || *value_end != '\0') return std::nullopt;
  return RawStoreEntry{line.substr(0, comma), line.substr(comma + 1)};
}

}  // namespace

// ---------------------------------------------------------------------------
// StoreWriterLock
// ---------------------------------------------------------------------------

StoreWriterLock::StoreWriterLock(const std::string& store_path) {
  const std::string path = store_path + ".lock";
  // Two attempts: the second runs only after a stale lock was removed, so
  // a live competitor racing us between unlink and reopen still wins.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string body = std::to_string(::getpid()) + "\n";
      // A lock file with an unparsable body reads as stale, which is the
      // safe failure direction for a write that did not land.
      (void)!::write(fd, body.c_str(), body.size());
      ::close(fd);
      lock_path_ = path;
      return;
    }
    if (errno != EEXIST) {
      throw std::runtime_error("safelight: cannot create store lock '" +
                               path + "': " + std::strerror(errno));
    }
    // Somebody holds (or held) the lock: read the owner pid and probe it.
    long owner = 0;
    {
      std::ifstream in(path);
      in >> owner;
    }
    const bool alive = owner > 0 && (::kill(static_cast<pid_t>(owner), 0) == 0 ||
                                     errno != ESRCH);
    if (alive) {
      throw std::runtime_error(
          "safelight: result store '" + store_path +
          "' is locked by live process " + std::to_string(owner) +
          " (two concurrent writers on one cache directory? remove '" + path +
          "' only if that process is not a safelight writer)");
    }
    log::warn("store", "taking over stale lock %s (owner pid %ld is dead)",
              path.c_str(), owner);
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  throw std::runtime_error("safelight: could not acquire store lock '" + path +
                           "' (lock keeps reappearing)");
}

StoreWriterLock::~StoreWriterLock() {
  if (lock_path_.empty()) return;
  std::error_code ec;
  std::filesystem::remove(lock_path_, ec);
}

StoreWriterLock::StoreWriterLock(StoreWriterLock&& other) noexcept
    : lock_path_(std::move(other.lock_path_)) {
  other.lock_path_.clear();
}

StoreWriterLock& StoreWriterLock::operator=(StoreWriterLock&& other) noexcept {
  if (this != &other) {
    if (!lock_path_.empty()) {
      std::error_code ec;
      std::filesystem::remove(lock_path_, ec);
    }
    lock_path_ = std::move(other.lock_path_);
    other.lock_path_.clear();
  }
  return *this;
}

std::vector<RawStoreEntry> read_store_entries(const std::string& csv_path) {
  std::vector<RawStoreEntry> entries;
  std::ifstream in(csv_path, std::ios::binary);
  if (!in) return entries;
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  std::unordered_map<std::string, std::size_t> index;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) break;  // torn tail: skip, keep file
    auto entry = parse_store_line(content.substr(pos, newline - pos));
    pos = newline + 1;
    if (!entry) continue;
    if (const auto it = index.find(entry->key); it != index.end()) {
      entries[it->second].value = std::move(entry->value);  // later row wins
    } else {
      index.emplace(entry->key, entries.size());
      entries.push_back(std::move(*entry));
    }
  }
  return entries;
}

ResultStore::ResultStore(std::string csv_path, std::string jsonl_path)
    : csv_path_(std::move(csv_path)), jsonl_path_(std::move(jsonl_path)) {
  if (csv_path_.empty()) return;
  // Writer exclusivity first: everything below mutates the directory.
  lock_ = StoreWriterLock(csv_path_);
  const std::filesystem::path parent =
      std::filesystem::path(csv_path_).parent_path();
  sweep_orphaned_temp_files(parent.empty() ? "." : parent);
  if (!jsonl_path_.empty()) truncate_torn_tail(jsonl_path_);
  // Hand-rolled tolerant parse: an interrupted run may leave a torn final
  // row, which must not prevent the resume it exists to enable. Every
  // complete row ends with '\n' (put() writes row + newline + flush), so an
  // unterminated tail is a tear: it is dropped, the file truncated back to
  // the last complete row (a later append must not merge into the tear),
  // and its scenario simply re-evaluates. Other malformed rows are skipped.
  std::ifstream in(csv_path_, std::ios::binary);
  if (!in) return;
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  in.close();
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) {
      std::error_code ec;
      std::filesystem::resize_file(csv_path_, pos, ec);
      break;
    }
    auto entry = parse_store_line(content.substr(pos, newline - pos));
    pos = newline + 1;
    if (!entry) continue;
    entries_[entry->key] = std::strtod(entry->value.c_str(), nullptr);
  }
}

std::optional<double> ResultStore::lookup(const std::string& key) const {
  static metrics::Counter& hits = metrics::counter("store.lookup_hits");
  static metrics::Counter& misses = metrics::counter("store.lookup_misses");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    hits.add();
    return it->second;
  }
  misses.add();
  return std::nullopt;
}

bool ResultStore::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) > 0;
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ResultStore::put(const std::string& key, double value) {
  static metrics::Counter& appends = metrics::counter("store.appends");
  appends.add();
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = value;
  append_to_disk(key, value);
}

void ResultStore::append_to_disk(const std::string& key, double value) {
  // The fault::ptp points sit at the nastiest byte boundaries a crash can
  // hit; the mid-row flushes that make the torn state real are taken only
  // when injection is armed, so the normal path keeps its single flush.
  if (!csv_path_.empty()) {
    const bool fresh = !std::filesystem::exists(csv_path_);
    std::ofstream out(csv_path_, std::ios::app);
    if (out) {
      if (fresh) {
        out << "key,accuracy\n";
        if (fault::armed()) out.flush();
        fault::ptp("store.csv.create");  // crash: header-only file
      }
      out << key << ',';
      if (fault::armed()) out.flush();
      fault::ptp("store.csv.append");  // crash: torn row (key, no value)
      out << format_value(value) << '\n';
      out.flush();
      fault::ptp("store.csv.flush");  // crash: row fully durable
      static metrics::Counter& flushes = metrics::counter("store.flushes");
      flushes.add();
    }
  }
  if (!jsonl_path_.empty()) {
    std::ofstream out(jsonl_path_, std::ios::app);
    if (out) {
      out << "{\"key\":\"" << key << "\",";
      if (fault::armed()) out.flush();
      fault::ptp("store.jsonl.append");  // crash: torn mirror record
      out << "\"accuracy\":" << format_value(value) << "}\n";
      out.flush();
    }
  }
}

}  // namespace safelight::core
