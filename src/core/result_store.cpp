#include "core/result_store.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace safelight::core {

namespace {

/// Full-precision round-trip format: a resumed run must report exactly the
/// accuracies the original run computed.
std::string format_value(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

ResultStore::ResultStore(std::string csv_path, std::string jsonl_path)
    : csv_path_(std::move(csv_path)), jsonl_path_(std::move(jsonl_path)) {
  if (csv_path_.empty()) return;
  // Hand-rolled tolerant parse: an interrupted run may leave a torn final
  // row, which must not prevent the resume it exists to enable. Every
  // complete row ends with '\n' (put() writes row + newline + flush), so an
  // unterminated tail is a tear: it is dropped, the file truncated back to
  // the last complete row (a later append must not merge into the tear),
  // and its scenario simply re-evaluates. Other malformed rows are skipped.
  std::ifstream in(csv_path_, std::ios::binary);
  if (!in) return;
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  in.close();
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) {
      std::error_code ec;
      std::filesystem::resize_file(csv_path_, pos, ec);
      break;
    }
    std::string line = content.substr(pos, newline - pos);
    pos = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line == "key,accuracy") continue;
    const std::size_t comma = line.rfind(',');
    if (comma == std::string::npos || comma == 0) continue;
    const char* value_begin = line.c_str() + comma + 1;
    char* value_end = nullptr;
    const double value = std::strtod(value_begin, &value_end);
    if (value_end == value_begin || *value_end != '\0') continue;
    entries_[line.substr(0, comma)] = value;
  }
}

std::optional<double> ResultStore::lookup(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) return it->second;
  return std::nullopt;
}

bool ResultStore::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) > 0;
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ResultStore::put(const std::string& key, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = value;
  append_to_disk(key, value);
}

void ResultStore::append_to_disk(const std::string& key, double value) {
  if (!csv_path_.empty()) {
    const bool fresh = !std::filesystem::exists(csv_path_);
    std::ofstream out(csv_path_, std::ios::app);
    if (out) {
      if (fresh) out << "key,accuracy\n";
      out << key << ',' << format_value(value) << '\n';
      out.flush();
    }
  }
  if (!jsonl_path_.empty()) {
    std::ofstream out(jsonl_path_, std::ios::app);
    if (out) {
      out << "{\"key\":\"" << key << "\",\"accuracy\":" << format_value(value)
          << "}\n";
      out.flush();
    }
  }
}

}  // namespace safelight::core
