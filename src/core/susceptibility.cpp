#include "core/susceptibility.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "core/pipeline.hpp"

namespace safelight::core {

namespace {

bool scenario_in_group(const attack::AttackScenario& s,
                       attack::AttackVector vector,
                       attack::AttackTarget target, double fraction) {
  return s.vector == vector && s.target == target &&
         std::abs(s.fraction - fraction) < 1e-12;
}

}  // namespace

const SusceptibilityGroup& SusceptibilityReport::group(
    attack::AttackVector vector, attack::AttackTarget target,
    double fraction) const {
  for (const auto& g : groups) {
    if (g.vector == vector && g.target == target &&
        std::abs(g.fraction - fraction) < 1e-12) {
      return g;
    }
  }
  fail_argument("SusceptibilityReport::group: no such group");
}

double SusceptibilityReport::worst_drop(attack::AttackVector vector,
                                        attack::AttackTarget target,
                                        double fraction) const {
  return baseline_accuracy - group(vector, target, fraction).accuracy.min;
}

std::vector<SusceptibilityRow> evaluate_grid(
    AttackEvaluator& evaluator,
    const std::vector<attack::AttackScenario>& scenarios, bool verbose) {
  std::vector<SusceptibilityRow> rows;
  rows.reserve(scenarios.size());
  for (const auto& scenario : scenarios) {
    SusceptibilityRow row;
    row.scenario = scenario;
    row.accuracy = evaluator.evaluate_scenario(scenario);
    rows.push_back(row);
    if (verbose) {
      std::printf("  %-32s acc %.4f\n", scenario.id().c_str(), row.accuracy);
      std::fflush(stdout);
    }
  }
  return rows;
}

SusceptibilityReport run_susceptibility(
    const ExperimentSetup& setup, ModelZoo& zoo,
    const SusceptibilityOptions& options) {
  require(options.seed_count > 0, "run_susceptibility: need >= 1 seed");
  PipelineOptions pipeline_options;
  pipeline_options.cache_dir = options.cache_dir;
  pipeline_options.verbose = options.verbose;
  ScenarioPipeline pipeline(setup, zoo, pipeline_options);
  const SweepResult sweep = pipeline.run_paper_grid(
      variant_by_name("Original"), options.seed_count, options.base_seed);

  SusceptibilityReport report;
  report.model = setup.model;
  report.baseline_accuracy = sweep.baseline_accuracy;
  report.rows.reserve(sweep.rows.size());
  for (const auto& outcome : sweep.rows) {
    report.rows.push_back({outcome.scenario, outcome.accuracy});
  }

  // Aggregate into the 18 groups (2 vectors x 3 targets x 3 fractions).
  for (attack::AttackVector vector :
       {attack::AttackVector::kActuation, attack::AttackVector::kHotspot}) {
    for (attack::AttackTarget target :
         {attack::AttackTarget::kConvBlock, attack::AttackTarget::kFcBlock,
          attack::AttackTarget::kBothBlocks}) {
      for (double fraction : {0.01, 0.05, 0.10}) {
        std::vector<double> values;
        for (const auto& row : report.rows) {
          if (scenario_in_group(row.scenario, vector, target, fraction)) {
            values.push_back(row.accuracy);
          }
        }
        SAFELIGHT_ASSERT(!values.empty(),
                         "run_susceptibility: empty scenario group");
        report.groups.push_back(
            {vector, target, fraction, box_stats(std::move(values))});
      }
    }
  }
  return report;
}

}  // namespace safelight::core
