#include "core/susceptibility.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"

namespace safelight::core {

namespace {

bool scenario_in_group(const attack::AttackScenario& s,
                       attack::AttackVector vector,
                       attack::AttackTarget target, double fraction) {
  return s.vector == vector && s.target == target &&
         std::abs(s.fraction - fraction) < 1e-12;
}

/// The sweep proper, in the unified-API shape: spec in, typed report out.
SusceptibilityReport susceptibility_impl(const ExperimentSpec& spec,
                                         RunContext& context) {
  const ExperimentSetup setup = spec.resolved_setup();
  context.note("susceptibility: sweep " + setup.tag());
  PipelineOptions pipeline_options;
  pipeline_options.cache_dir = spec.cache_dir;
  pipeline_options.max_workers = spec.max_workers;
  pipeline_options.verbose = spec.verbose;
  pipeline_options.corruption = spec.corruption;
  pipeline_options.cancel = context.cancel;
  ScenarioPipeline pipeline(setup, context.zoo(), pipeline_options);
  const SweepResult sweep = pipeline.run_paper_grid(
      variant_by_name("Original"), spec.seed_count, spec.base_seed);

  SusceptibilityReport report;
  report.model = setup.model;
  report.baseline_accuracy = sweep.baseline_accuracy;
  report.rows.reserve(sweep.rows.size());
  for (const auto& outcome : sweep.rows) {
    report.rows.push_back({outcome.scenario, outcome.accuracy});
  }

  // Aggregate into the 18 groups (2 vectors x 3 targets x 3 fractions).
  for (attack::AttackVector vector :
       {attack::AttackVector::kActuation, attack::AttackVector::kHotspot}) {
    for (attack::AttackTarget target :
         {attack::AttackTarget::kConvBlock, attack::AttackTarget::kFcBlock,
          attack::AttackTarget::kBothBlocks}) {
      for (double fraction : {0.01, 0.05, 0.10}) {
        std::vector<double> values;
        for (const auto& row : report.rows) {
          if (scenario_in_group(row.scenario, vector, target, fraction)) {
            values.push_back(row.accuracy);
          }
        }
        SAFELIGHT_ASSERT(!values.empty(),
                         "run_susceptibility: empty scenario group");
        report.groups.push_back(
            {vector, target, fraction, box_stats(std::move(values))});
      }
    }
  }
  return report;
}

}  // namespace

const SusceptibilityGroup& SusceptibilityReport::group(
    attack::AttackVector vector, attack::AttackTarget target,
    double fraction) const {
  for (const auto& g : groups) {
    if (g.vector == vector && g.target == target &&
        std::abs(g.fraction - fraction) < 1e-12) {
      return g;
    }
  }
  fail_argument("SusceptibilityReport::group: no such group");
}

double SusceptibilityReport::worst_drop(attack::AttackVector vector,
                                        attack::AttackTarget target,
                                        double fraction) const {
  return baseline_accuracy - group(vector, target, fraction).accuracy.min;
}

std::vector<SusceptibilityRow> evaluate_grid(
    AttackEvaluator& evaluator,
    const std::vector<attack::AttackScenario>& scenarios, bool verbose) {
  std::vector<SusceptibilityRow> rows;
  rows.reserve(scenarios.size());
  for (const auto& scenario : scenarios) {
    SusceptibilityRow row;
    row.scenario = scenario;
    row.accuracy = evaluator.evaluate_scenario(scenario);
    rows.push_back(row);
    if (verbose) {
      std::printf("  %-32s acc %.4f\n", scenario.id().c_str(), row.accuracy);
      std::fflush(stdout);
    }
  }
  return rows;
}

ExperimentResult run_susceptibility_experiment(const ExperimentSpec& spec,
                                               RunContext& context) {
  spec.validate();  // callers may invoke this runner without the registry
  ExperimentResult result;
  result.payload = susceptibility_impl(spec, context);
  return result;
}

SusceptibilityReport run_susceptibility(
    const ExperimentSetup& setup, ModelZoo& zoo,
    const SusceptibilityOptions& options) {
  ExperimentSpec spec =
      ExperimentRegistry::global().default_spec("susceptibility", setup);
  spec.seed_count = options.seed_count;
  spec.base_seed = options.base_seed;
  spec.cache_dir = options.cache_dir;
  spec.verbose = options.verbose;
  RunContext context(zoo);
  return ExperimentRegistry::global()
      .run(spec, context)
      .as<SusceptibilityReport>();
}

}  // namespace safelight::core
