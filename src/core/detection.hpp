// Detection-evaluation sweep: how well do the runtime detectors work?
//
// The offense benches ask "how much accuracy does an attack cost"; this
// module asks "would the defense subsystem have caught it". For one trained
// variant it deploys the model once per worker, calibrates a
// defense::DetectorSuite on the clean deployment, and then checks every
// detector against each run of {clean deployments x the attack scenario
// grid} — the same fan-out / ResultStore discipline as ScenarioPipeline, so
// sweeps are parallel, cached, resumable and deterministic. The report
// aggregates per-detector ROC curves (TPR/FPR vs. threshold), rank-based
// AUC with optional (vector, intensity) filters, false-positive rates at
// the default thresholds, and detection latency (probe inferences until
// first flag).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attacks/corruption.hpp"
#include "attacks/scenario.hpp"
#include "common/stats.hpp"
#include "core/experiment_scale.hpp"
#include "core/zoo.hpp"
#include "defense/suite.hpp"

namespace safelight::core {

/// One (run, detector) cell of the detection sweep.
struct DetectionRow {
  std::string run_id;  // scenario id, or "clean/c<k>" for clean runs
  bool clean = false;
  attack::AttackScenario scenario{};  // meaningful only when !clean
  std::string detector;
  double score = 0.0;
  /// Verdict at the detector's default threshold (recorded at check time).
  bool flagged = false;
  std::size_t probes = 0;
  std::size_t first_flag_probe = 0;  // 0 = never flagged
  bool from_cache = false;
};

/// One operating point of an ROC curve: verdicts use score > threshold.
struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  // flagged fraction of the attack runs
  double fpr = 0.0;  // flagged fraction of the clean runs
};

struct RocCurve {
  std::string detector;
  std::vector<RocPoint> points;  // thresholds descending: (0,0) -> (1,1)
  double auc = 0.0;              // rank-based (ties count half)
};

/// Outcome of one run_detection_sweep call.
struct DetectionReport {
  std::string variant;
  std::vector<std::string> detectors;  // suite order
  /// Run-major (clean runs first, then grid order), detector-minor.
  std::vector<DetectionRow> rows;
  std::size_t clean_runs = 0;
  std::size_t evaluated = 0;   // runs checked in this sweep
  std::size_t cache_hits = 0;  // runs served from the result store
  double wall_seconds = 0.0;

  /// Scores of the clean runs for one detector, in run order.
  std::vector<double> clean_scores(const std::string& detector) const;

  /// Scores of the attack runs for one detector, optionally restricted to
  /// one vector and to intensities >= min_fraction.
  std::vector<double> attack_scores(
      const std::string& detector,
      std::optional<attack::AttackVector> vector = std::nullopt,
      double min_fraction = 0.0) const;

  /// Flagged fraction of clean runs at the default threshold.
  double false_positive_rate(const std::string& detector) const;

  /// Flagged fraction of the (filtered) attack runs at the default
  /// threshold.
  double true_positive_rate(
      const std::string& detector,
      std::optional<attack::AttackVector> vector = std::nullopt,
      double min_fraction = 0.0) const;

  /// Rank-based AUC of the detector's scores: clean runs are the negative
  /// class, (filtered) attack runs the positive class. Throws when either
  /// class is empty.
  double auc(const std::string& detector,
             std::optional<attack::AttackVector> vector = std::nullopt,
             double min_fraction = 0.0) const;

  /// Full ROC curve over the detector's score set (same filters as auc).
  RocCurve roc(const std::string& detector,
               std::optional<attack::AttackVector> vector = std::nullopt,
               double min_fraction = 0.0) const;

  /// Detection latency (probe inferences until first flag) across the
  /// attack runs the detector flagged; throws when it flagged none.
  BoxStats detection_latency(const std::string& detector) const;
};

/// Knobs of run_detection_sweep.
struct DetectionOptions {
  std::size_t seed_count = 5;     // trojan placements per grid cell
  std::uint64_t base_seed = 1000;
  /// Clean deployments checked under distinct probe seeds — the negative
  /// class of the ROC analysis.
  std::size_t clean_runs = 10;
  std::string cache_dir;  // empty disables persistence
  std::size_t max_workers = 0;
  bool verbose = false;
  attack::CorruptionConfig corruption{};
  defense::SuiteConfig suite{};
};

/// Detection sweep of `variant` over an explicit scenario grid plus
/// `options.clean_runs` clean deployments.
///
/// Deprecated shim (as is the grid-defaulting overload below): builds an
/// ExperimentSpec and delegates to ExperimentRegistry::global()
/// .run("detection") — new callers should use core/experiment.hpp directly.
DetectionReport run_detection_sweep(
    const ExperimentSetup& setup, ModelZoo& zoo, const VariantSpec& variant,
    const std::vector<attack::AttackScenario>& grid,
    const DetectionOptions& options);

/// Convenience: the paper's full SIV grid (2 vectors x 3 targets x
/// {1,5,10} % x seed_count placements) plus clean runs.
DetectionReport run_detection_sweep(const ExperimentSetup& setup,
                                    ModelZoo& zoo, const VariantSpec& variant,
                                    const DetectionOptions& options);

/// Rank-based (Mann-Whitney) AUC: P(attack score > clean score), ties
/// counting one half. Throws std::invalid_argument when either side is
/// empty.
double rank_auc(const std::vector<double>& clean_scores,
                const std::vector<double>& attack_scores);

}  // namespace safelight::core
