#include "core/evaluation.hpp"

#include <cstring>
#include <filesystem>

#include "common/env.hpp"
#include "common/fingerprint.hpp"
#include "common/metrics.hpp"
#include "nn/serialize.hpp"

namespace safelight::core {

std::string weights_checksum(nn::Sequential& model) {
  Fingerprint fp;
  for (nn::Param* p : model.params()) {
    fp.mix_bytes(p->value.data(), p->value.numel() * sizeof(float));
  }
  return fp.hex16();
}

namespace {

/// Conditions the model for deployment before the mapping captures its
/// normalization scales (member-init helper).
nn::Sequential& conditioned(const accel::OnnExecutor& executor,
                            nn::Sequential& model) {
  executor.condition_weights(model);
  return model;
}

/// Batch size shared by all evaluator entry points; prefix activations are
/// cached per batch, so producer and consumer must agree on it.
constexpr std::size_t kEvalBatch = 64;

/// Upper bound on floats held by one evaluator's whole prefix cache, all
/// boundaries combined (~256 MB). Boundaries that would push past it fall
/// back to plain evaluation instead of exhausting memory — note the sweep
/// pipeline runs one evaluator per fan-out worker, so total prefix memory
/// is worker_count() times this bound.
constexpr std::size_t kMaxPrefixFloats = 64u << 20;

}  // namespace

AttackEvaluator::AttackEvaluator(const ExperimentSetup& setup,
                                 nn::Sequential& model,
                                 std::string variant_name,
                                 std::string cache_dir,
                                 attack::CorruptionConfig corruption)
    : setup_(setup), model_(model), variant_name_(std::move(variant_name)),
      executor_(setup.accelerator),
      mapping_(conditioned(executor_, model), setup.accelerator),
      clean_snapshot_(nn::snapshot_state(model)),
      eval_data_(make_test_data(setup).take(setup.eval_count)),
      corruption_(std::move(corruption)),
      prefix_cache_enabled_(env_int("SAFELIGHT_PREFIX_CACHE", 1) != 0) {
  std::string cache_path;
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    // The corruption fingerprint is part of the file name so evaluators
    // with ablated physics never read each other's entries.
    cache_path = cache_dir + "/" + setup_.tag() + "_" + variant_name_ + "_" +
                 weights_checksum(model_) + "_" +
                 attack::config_fingerprint(corruption_) + ".csv";
  }
  cache_ = std::make_unique<ResultStore>(cache_path);

  // Clean copies of every mapped parameter, grouped by layer in layer
  // order: the byte-comparison base for first_dirty_layer().
  for (std::size_t i = 0; i < model_.size(); ++i) {
    std::vector<std::pair<const nn::Param*, nn::Tensor>> mapped;
    for (nn::Param* p : model_.layer(i).params()) {
      if (p->kind == nn::ParamKind::kElectronic) continue;
      mapped.emplace_back(p, p->value);
    }
    if (!mapped.empty()) clean_mapped_.emplace_back(i, std::move(mapped));
  }
}

std::string AttackEvaluator::cache_key(const std::string& scenario_id) const {
  return scenario_id + "/n" + std::to_string(eval_data_.size());
}

void AttackEvaluator::restore_clean() {
  nn::restore_state(model_, clean_snapshot_);
}

std::size_t AttackEvaluator::first_dirty_layer() const {
  for (const auto& [layer, mapped] : clean_mapped_) {
    for (const auto& [param, clean] : mapped) {
      if (std::memcmp(param->value.data(), clean.data(),
                      clean.numel() * sizeof(float)) != 0) {
        return layer;
      }
    }
  }
  return model_.size();
}

const std::vector<nn::Tensor>& AttackEvaluator::prefix_for(std::size_t layer) {
  const auto it = prefix_cache_.find(layer);
  if (it != prefix_cache_.end()) return it->second;
  static metrics::Counter& builds =
      metrics::counter("prefix_cache.boundary_builds");
  builds.add();
  // The model currently carries the attacked weights; the prefix must be
  // computed with the clean ones. Corrupted state is parked and restored
  // around the computation — a few tensor copies, once per boundary.
  std::vector<nn::Tensor> attacked = nn::snapshot_state(model_);
  nn::restore_state(model_, clean_snapshot_);
  auto prefix =
      executor_.prefix_activations(model_, eval_data_, layer, kEvalBatch);
  nn::restore_state(model_, attacked);
  return prefix_cache_.emplace(layer, std::move(prefix)).first->second;
}

double AttackEvaluator::evaluate_attacked() {
  static metrics::Counter& hits = metrics::counter("prefix_cache.hits");
  static metrics::Counter& misses = metrics::counter("prefix_cache.misses");
  // A mutating read-out hook (ADC trojan) corrupts the outputs of *clean*
  // layers too, so cached clean activations would be wrong. Observing hooks
  // (range monitors, telemetry taps) never modify activations and keep the
  // cache valid — they just see only the layers after the resume boundary.
  if (!prefix_cache_enabled_ || executor_.has_mutating_readout_hook()) {
    misses.add();
    return executor_.evaluate(model_, eval_data_, kEvalBatch);
  }
  const std::size_t dirty = first_dirty_layer();
  if (dirty == 0) {
    // Corruption starts at the first layer: nothing cacheable.
    misses.add();
    return executor_.evaluate(model_, eval_data_, kEvalBatch);
  }
  if (prefix_cache_.find(dirty) == prefix_cache_.end()) {
    // Estimate the boundary's footprint before committing memory to it.
    nn::Shape shape = eval_data_.sample_shape();
    shape.insert(shape.begin(), kEvalBatch);
    for (std::size_t i = 0; i < dirty; ++i) {
      shape = model_.layer(i).output_shape(shape);
    }
    const std::size_t batches =
        (eval_data_.size() + kEvalBatch - 1) / kEvalBatch;
    const std::size_t boundary_floats = batches * nn::shape_numel(shape);
    if (prefix_floats_ + boundary_floats > kMaxPrefixFloats) {
      misses.add();
      return executor_.evaluate(model_, eval_data_, kEvalBatch);
    }
    prefix_floats_ += boundary_floats;
  }
  ++prefix_hits_;
  hits.add();
  return executor_.evaluate_from(model_, eval_data_, dirty, prefix_for(dirty),
                                 kEvalBatch);
}

double AttackEvaluator::baseline_accuracy() {
  const std::string key = cache_key("baseline");
  if (const auto cached = cache_->lookup(key)) return *cached;
  restore_clean();
  const double accuracy = executor_.evaluate(model_, eval_data_, kEvalBatch);
  cache_->put(key, accuracy);
  return accuracy;
}

double AttackEvaluator::evaluate_scenario(
    const attack::AttackScenario& scenario) {
  const std::string key = cache_key(scenario.id());
  if (const auto cached = cache_->lookup(key)) return *cached;

  restore_clean();
  last_stats_ = attack::apply_attack(mapping_, scenario, corruption_);
  const double accuracy = evaluate_attacked();
  restore_clean();

  cache_->put(key, accuracy);
  return accuracy;
}

attack::CorruptionStats AttackEvaluator::apply_composite(
    const attack::CompositeScenario& composite) {
  restore_clean();
  last_stats_ = attack::apply_composite(mapping_, composite, corruption_);
  return last_stats_;
}

double AttackEvaluator::evaluate_applied(const std::string& id) {
  const std::string key = cache_key(id);
  if (const auto cached = cache_->lookup(key)) return *cached;
  const double accuracy = evaluate_attacked();
  cache_->put(key, accuracy);
  return accuracy;
}

double AttackEvaluator::evaluate_composite(
    const attack::CompositeScenario& composite) {
  const std::string key = cache_key(composite.id());
  if (const auto cached = cache_->lookup(key)) return *cached;

  apply_composite(composite);
  const double accuracy = evaluate_applied(composite.id());
  restore_clean();
  return accuracy;
}

}  // namespace safelight::core
