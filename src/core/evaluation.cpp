#include "core/evaluation.hpp"

#include <cstdio>
#include <filesystem>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "nn/serialize.hpp"

namespace safelight::core {

std::string weights_checksum(nn::Sequential& model) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (nn::Param* p : model.params()) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(p->value.data());
    const std::size_t count = p->value.numel() * sizeof(float);
    for (std::size_t i = 0; i < count; ++i) {
      hash ^= bytes[i];
      hash *= 0x100000001b3ULL;
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

namespace {

/// Conditions the model for deployment before the mapping captures its
/// normalization scales (member-init helper).
nn::Sequential& conditioned(const accel::OnnExecutor& executor,
                            nn::Sequential& model) {
  executor.condition_weights(model);
  return model;
}

}  // namespace

AttackEvaluator::AttackEvaluator(const ExperimentSetup& setup,
                                 nn::Sequential& model,
                                 std::string variant_name,
                                 std::string cache_dir)
    : setup_(setup), model_(model), variant_name_(std::move(variant_name)),
      executor_(setup.accelerator),
      mapping_(conditioned(executor_, model), setup.accelerator),
      clean_snapshot_(nn::snapshot_state(model)),
      eval_data_(make_test_data(setup).take(setup.eval_count)) {
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    cache_path_ = cache_dir + "/" + setup_.tag() + "_" + variant_name_ +
                  "_" + weights_checksum(model_) + ".csv";
    load_cache();
  }
}

std::string AttackEvaluator::cache_key(const std::string& scenario_id) const {
  return scenario_id + "/n" + std::to_string(eval_data_.size());
}

void AttackEvaluator::load_cache() {
  const CsvTable table = read_csv(cache_path_);
  for (const auto& row : table.rows) {
    SAFELIGHT_ASSERT(row.size() == 2, "evaluation cache: bad row");
    cache_[row[0]] = std::stod(row[1]);
  }
}

void AttackEvaluator::append_cache(const std::string& scenario_id,
                                   double accuracy) {
  if (cache_path_.empty()) return;
  const bool fresh = !std::filesystem::exists(cache_path_);
  std::ofstream out(cache_path_, std::ios::app);
  if (!out) return;  // cache is an optimization; never fail the experiment
  if (fresh) out << "key,accuracy\n";
  out << scenario_id << ',' << fmt_double(accuracy, 6) << '\n';
}

void AttackEvaluator::restore_clean() {
  nn::restore_state(model_, clean_snapshot_);
}

double AttackEvaluator::baseline_accuracy() {
  const std::string key = cache_key("baseline");
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  restore_clean();
  const double accuracy = executor_.evaluate(model_, eval_data_);
  cache_[key] = accuracy;
  append_cache(key, accuracy);
  return accuracy;
}

double AttackEvaluator::evaluate_scenario(
    const attack::AttackScenario& scenario) {
  const std::string key = cache_key(scenario.id());
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;

  restore_clean();
  last_stats_ = attack::apply_attack(mapping_, scenario, corruption_);
  const double accuracy = executor_.evaluate(model_, eval_data_);
  restore_clean();

  cache_[key] = accuracy;
  append_cache(key, accuracy);
  return accuracy;
}

}  // namespace safelight::core
