#include "core/evaluation.hpp"

#include <filesystem>

#include "common/fingerprint.hpp"
#include "nn/serialize.hpp"

namespace safelight::core {

std::string weights_checksum(nn::Sequential& model) {
  Fingerprint fp;
  for (nn::Param* p : model.params()) {
    fp.mix_bytes(p->value.data(), p->value.numel() * sizeof(float));
  }
  return fp.hex16();
}

namespace {

/// Conditions the model for deployment before the mapping captures its
/// normalization scales (member-init helper).
nn::Sequential& conditioned(const accel::OnnExecutor& executor,
                            nn::Sequential& model) {
  executor.condition_weights(model);
  return model;
}

}  // namespace

AttackEvaluator::AttackEvaluator(const ExperimentSetup& setup,
                                 nn::Sequential& model,
                                 std::string variant_name,
                                 std::string cache_dir,
                                 attack::CorruptionConfig corruption)
    : setup_(setup), model_(model), variant_name_(std::move(variant_name)),
      executor_(setup.accelerator),
      mapping_(conditioned(executor_, model), setup.accelerator),
      clean_snapshot_(nn::snapshot_state(model)),
      eval_data_(make_test_data(setup).take(setup.eval_count)),
      corruption_(std::move(corruption)) {
  std::string cache_path;
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    // The corruption fingerprint is part of the file name so evaluators
    // with ablated physics never read each other's entries.
    cache_path = cache_dir + "/" + setup_.tag() + "_" + variant_name_ + "_" +
                 weights_checksum(model_) + "_" +
                 attack::config_fingerprint(corruption_) + ".csv";
  }
  cache_ = std::make_unique<ResultStore>(cache_path);
}

std::string AttackEvaluator::cache_key(const std::string& scenario_id) const {
  return scenario_id + "/n" + std::to_string(eval_data_.size());
}

void AttackEvaluator::restore_clean() {
  nn::restore_state(model_, clean_snapshot_);
}

double AttackEvaluator::baseline_accuracy() {
  const std::string key = cache_key("baseline");
  if (const auto cached = cache_->lookup(key)) return *cached;
  restore_clean();
  const double accuracy = executor_.evaluate(model_, eval_data_);
  cache_->put(key, accuracy);
  return accuracy;
}

double AttackEvaluator::evaluate_scenario(
    const attack::AttackScenario& scenario) {
  const std::string key = cache_key(scenario.id());
  if (const auto cached = cache_->lookup(key)) return *cached;

  restore_clean();
  last_stats_ = attack::apply_attack(mapping_, scenario, corruption_);
  const double accuracy = executor_.evaluate(model_, eval_data_);
  restore_clean();

  cache_->put(key, accuracy);
  return accuracy;
}

}  // namespace safelight::core
