#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace safelight::core {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(),
          "TextTable: row width does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void banner(const std::string& title) {
  std::printf("\n================ %s ================\n", title.c_str());
  std::fflush(stdout);
}

std::string pct(double fraction, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << fraction * 100.0 << '%';
  return os.str();
}

std::string signed_pct(double fraction, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << (fraction >= 0 ? "+" : "") << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace safelight::core
