// Mitigation variant factory (paper §V / §VI).
//
// Eleven variants per model, matching Fig. 8's x-axis:
//   Original  — no regularization, no noise
//   L2_reg    — L2 regularization only
//   l2+n1 ... l2+n9 — L2 + Gaussian noise-aware training with
//                     sigma = 0.1 ... 0.9
#pragma once

#include <string>
#include <vector>

#include "nn/trainer.hpp"

namespace safelight::core {

struct VariantSpec {
  std::string name;
  float weight_decay = 0.0f;  // L2 strength
  float noise_sigma = 0.0f;   // noise-aware training sigma (relative-to-max)

  bool is_original() const { return name == "Original"; }
};

/// Default L2 strength for the regularized variants. Chosen so L2_reg does
/// not cost the largest model (VGG16_v at reduced scale) its clean accuracy;
/// sweepable through the *_strength parameters below.
inline constexpr float kDefaultL2Strength = 3e-4f;

/// The paper's 11 variants. `l2_strength` applies to every L2 variant.
std::vector<VariantSpec> paper_variants(
    float l2_strength = kDefaultL2Strength);

/// Looks up a variant by name; throws std::invalid_argument when unknown.
VariantSpec variant_by_name(const std::string& name,
                            float l2_strength = kDefaultL2Strength);

/// Applies a variant to a base training config.
nn::TrainConfig apply_variant(const nn::TrainConfig& base,
                              const VariantSpec& variant);

}  // namespace safelight::core
