// Susceptibility analysis (paper §IV, Fig. 7).
//
// Runs a model (usually the Original variant) against the full attack
// scenario grid: {actuation, hotspot} x {CONV, FC, CONV+FC} x
// {1 %, 5 %, 10 %} x N random placements, and aggregates accuracies per
// group — the data behind Fig. 7(a)-(c) and the paper's headline
// "7.49 % / 26.4 % / 80.46 % drop at 10 % hotspot" numbers.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "core/evaluation.hpp"
#include "core/zoo.hpp"

namespace safelight::core {

/// One evaluated scenario: the attack descriptor and the accuracy it left.
struct SusceptibilityRow {
  attack::AttackScenario scenario;
  double accuracy = 0.0;
};

/// Aggregate over one (vector, target, fraction) grid cell.
struct SusceptibilityGroup {
  attack::AttackVector vector;
  attack::AttackTarget target;
  double fraction;
  BoxStats accuracy;  // across placement seeds
};

/// Full susceptibility analysis of one model: raw rows plus the 18
/// aggregated groups behind Fig. 7.
struct SusceptibilityReport {
  nn::ModelId model;
  double baseline_accuracy = 0.0;
  std::vector<SusceptibilityRow> rows;
  std::vector<SusceptibilityGroup> groups;

  /// Largest accuracy drop (baseline - min accuracy) within a group;
  /// throws when the group does not exist.
  double worst_drop(attack::AttackVector vector,
                    attack::AttackTarget target, double fraction) const;

  const SusceptibilityGroup& group(attack::AttackVector vector,
                                   attack::AttackTarget target,
                                   double fraction) const;
};

/// Knobs of run_susceptibility. Placement seeds are base_seed ..
/// base_seed + seed_count - 1 (the paper uses 10 placements per cell).
struct SusceptibilityOptions {
  std::size_t seed_count = 10;
  std::uint64_t base_seed = 1000;
  std::string cache_dir;  // empty disables result caching
  bool verbose = false;
};

/// Full analysis for one model setup using its Original variant from `zoo`.
///
/// Deprecated shim: builds an ExperimentSpec and delegates to
/// ExperimentRegistry::global().run("susceptibility") — new callers should
/// use core/experiment.hpp directly.
SusceptibilityReport run_susceptibility(const ExperimentSetup& setup,
                                        ModelZoo& zoo,
                                        const SusceptibilityOptions& options);

/// Grid evaluation of an externally provided evaluator (used by the
/// mitigation analysis to sweep variants).
std::vector<SusceptibilityRow> evaluate_grid(
    AttackEvaluator& evaluator,
    const std::vector<attack::AttackScenario>& scenarios, bool verbose);

}  // namespace safelight::core
