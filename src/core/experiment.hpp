// Unified experiment API: one spec, one registry, one result shape.
//
// Historically each SafeLight sweep grew its own entry point
// (run_susceptibility, run_mitigation, run_robust_compare,
// run_detection_sweep, run_campaign_sweep), each with a hand-rolled
// *Options struct and a bench main that re-implemented env parsing, table
// printing and CSV writing. This module owns that shape once:
//
//   ExperimentSpec      — a tagged superset of the five Options structs;
//                         validated (no silent clamps), serializable into
//                         the result metadata.
//   RunContext          — what every run needs besides the spec: the shared
//                         ModelZoo, an optional progress callback and an
//                         optional cooperative cancellation flag.
//   ExperimentResult    — the typed report payload plus uniform CSV and
//                         JSON serialization (byte-identical to the legacy
//                         per-figure bench output, golden-pinned).
//   ExperimentRegistry  — name -> experiment ("susceptibility",
//                         "mitigation", "robust_compare", "detection",
//                         "campaign"); the `safelight` CLI, the bench
//                         binaries and new callers (services, notebooks)
//                         all go through it.
//
// The legacy run_* signatures still compile; they are thin shims that build
// a spec and delegate here (see their headers).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "core/campaign_eval.hpp"
#include "core/detection.hpp"
#include "core/mitigation.hpp"
#include "core/robust_compare.hpp"
#include "core/susceptibility.hpp"

namespace safelight::core {

/// One spec describes one (experiment, model, scale) run completely. It is
/// a superset of the five legacy Options structs; each experiment reads the
/// fields it needs and ignores the rest (the unused fields keep their
/// defaults and do not affect caching).
struct ExperimentSpec {
  /// Registry key: "susceptibility", "mitigation", "robust_compare",
  /// "detection" or "campaign".
  std::string experiment;
  nn::ModelId model = nn::ModelId::kCnn1;
  Scale scale = Scale::kDefault;

  /// Placements per grid cell. 0 means "not set" and is rejected by
  /// validate(); start from ExperimentRegistry::default_spec() to get the
  /// experiment's paper default (10 / 3 / 5 / 3 / 1).
  std::size_t seed_count = 0;
  std::uint64_t base_seed = 1000;

  /// Deployed variant (detection / campaign sweeps), resolved through
  /// variant_by_name(variant, l2_strength).
  std::string variant = "Original";
  /// Full VariantSpec override for callers holding a variant that name +
  /// l2_strength cannot reconstruct (custom noise sigma, non-paper name);
  /// takes precedence over `variant` when set. The legacy detection /
  /// campaign shims use it to pass their VariantSpec argument through
  /// unchanged.
  std::optional<VariantSpec> variant_override;
  /// robust_compare: pinned robust variant; empty selects via mitigation.
  std::string robust_variant;
  float l2_strength = kDefaultL2Strength;
  /// detection: clean deployments forming the ROC negative class.
  std::size_t clean_runs = 10;

  /// Result-store directory; empty disables persistence.
  std::string cache_dir;
  std::size_t max_workers = 0;
  bool verbose = false;

  attack::CorruptionConfig corruption{};
  defense::SuiteConfig suite{};

  /// detection: explicit scenario grid override (paper SIV grid when
  /// absent).
  std::optional<std::vector<attack::AttackScenario>> grid;
  /// campaign: schedules to run (attack::standard_campaigns() when empty).
  std::vector<attack::CampaignSchedule> campaigns;

  /// Full ExperimentSetup override for callers that customized one; when
  /// absent the canonical experiment_setup(model, scale) is used.
  std::optional<ExperimentSetup> setup;

  /// The setup this spec resolves to.
  ExperimentSetup resolved_setup() const;

  /// The deployed variant this spec resolves to: variant_override when
  /// set, else variant_by_name(variant, l2_strength).
  VariantSpec resolved_variant() const;

  /// Field-level validation with actionable messages: rejects
  /// seed_count == 0, unknown variant names, clean_runs == 0 and (through
  /// the registry) unknown experiment names. Does not touch the registry,
  /// so library callers can validate without one.
  void validate() const;
};

/// Thrown by RunContext::throw_if_cancelled() when the caller's
/// cancellation flag is set; sweeps abort between coarse work units.
class ExperimentCancelled : public std::runtime_error {
 public:
  explicit ExperimentCancelled(const std::string& experiment)
      : std::runtime_error("safelight: experiment '" + experiment +
                           "' cancelled") {}
};

/// Everything an experiment run needs besides the spec. The zoo is shared
/// across experiments of one session (run-all trains each variant exactly
/// once); progress and cancellation are optional cooperative hooks.
class RunContext {
 public:
  using ProgressFn = std::function<void(const std::string& stage)>;

  explicit RunContext(ModelZoo& zoo) : zoo_(&zoo) {}

  ModelZoo& zoo() const { return *zoo_; }

  /// Invoked at coarse stage boundaries ("train variant", "sweep grid").
  ProgressFn progress;
  /// When non-null, experiments poll it between coarse work units and
  /// abort via ExperimentCancelled.
  const std::atomic<bool>* cancel = nullptr;

  void note(const std::string& stage) const {
    if (progress) progress(stage);
  }
  bool cancelled() const { return cancel != nullptr && cancel->load(); }
  void throw_if_cancelled(const std::string& experiment) const {
    if (cancelled()) throw ExperimentCancelled(experiment);
  }

 private:
  ModelZoo* zoo_;
};

/// One logical CSV output of an experiment: the file stem (e.g.
/// "fig7_susceptibility"), its header, and this run's rows. Multi-model
/// sessions append rows of consecutive runs under one header, reproducing
/// the legacy bench files byte for byte.
struct CsvDocument {
  std::string file_stem;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Typed outcome of one registry run: the experiment's report plus uniform
/// serialization. wall_seconds is measured by the registry around the run.
struct ExperimentResult {
  std::string experiment;
  ExperimentSpec spec;
  double wall_seconds = 0.0;

  using Payload =
      std::variant<SusceptibilityReport, MitigationReport,
                   RobustComparisonReport, DetectionReport,
                   CampaignSweepReport>;
  Payload payload;

  /// The typed report; throws std::invalid_argument naming the experiment
  /// when T does not match the payload.
  template <typename T>
  const T& as() const {
    const T* typed = std::get_if<T>(&payload);
    if (typed == nullptr) {
      fail_argument("ExperimentResult: '" + experiment +
                    "' does not carry the requested report type");
    }
    return *typed;
  }

  /// CSV serialization, byte-identical to the legacy per-figure bench
  /// output (golden-pinned at tiny scale).
  std::vector<CsvDocument> to_csv() const;

  /// Deterministic JSON document (no wall-clock or cache-hit fields), also
  /// golden-pinned. Covers the spec header plus the full payload.
  std::string to_json() const;
};

/// One registered experiment.
struct ExperimentInfo {
  std::string name;
  /// One-line summary shown by `safelight list`.
  std::string summary;
  /// Paper-default placements per grid cell (seeds).
  std::size_t default_seed_count = 1;
  /// File stems of the CSVs to_csv() emits, in emission order.
  std::vector<std::string> csv_files;
  using RunFn =
      std::function<ExperimentResult(const ExperimentSpec&, RunContext&)>;
  RunFn run;
};

/// Name -> experiment registry. The five paper sweeps are registered in the
/// global() instance; additional experiments can be added at startup.
class ExperimentRegistry {
 public:
  /// Process-wide registry, pre-populated with the five built-ins in
  /// figure order: susceptibility, mitigation, robust_compare, detection,
  /// campaign.
  static ExperimentRegistry& global();

  /// Registers an experiment; throws when the name is empty, already
  /// taken, or `run` is missing.
  void add(ExperimentInfo info);

  /// Registered names in registration order.
  std::vector<std::string> names() const;
  bool contains(const std::string& name) const;

  /// Lookup; throws std::invalid_argument listing the registered names
  /// when `name` is unknown.
  const ExperimentInfo& info(const std::string& name) const;

  /// A spec pre-filled with the experiment's defaults (name, paper seed
  /// count); callers then set model/scale/cache and tweak knobs.
  ExperimentSpec default_spec(const std::string& name) const;

  /// default_spec(name) with the setup fields filled from an existing
  /// ExperimentSetup (model, scale and the full setup override stay
  /// consistent by construction — the legacy run_* shims build on this).
  ExperimentSpec default_spec(const std::string& name,
                              const ExperimentSetup& setup) const;

  /// Validates the spec (including the experiment name) and runs it,
  /// stamping wall_seconds.
  ExperimentResult run(const ExperimentSpec& spec, RunContext& context) const;

 private:
  std::vector<ExperimentInfo> experiments_;  // registration order
};

// ---------------------------------------------------------------------------
// JSON ingestion / listing (src/core/experiment_json.cpp) — the scripting
// surface shared by `safelight serve` (POST /v1/jobs bodies) and
// `safelight list --json`.
// ---------------------------------------------------------------------------

/// Parses an ExperimentSpec from a JSON object, e.g.
/// {"experiment":"susceptibility","model":"cnn1","seed_count":3}.
///
/// Field names match ExperimentResult::to_json()'s spec header (experiment,
/// model, scale, seed_count, base_seed) plus the scalar knobs (variant,
/// robust_variant, l2_strength, clean_runs, max_workers, verbose). Absent
/// fields resolve exactly like `safelight run`: registry defaults, then the
/// SAFELIGHT_* env / CLI-override chain — so a spec submitted over HTTP to a
/// daemon started under the same environment produces a byte-identical
/// result document. cache_dir is deliberately NOT accepted: the caller
/// (serve's Slot, the CLI) owns store placement.
///
/// Strict by design: a malformed document, an unknown field, a type
/// mismatch, an unknown experiment/model/scale/variant name or an invalid
/// value all throw std::invalid_argument with an actionable message (the
/// CLI's exit-2 convention; serve answers 400 with the same text).
ExperimentSpec spec_from_json(const std::string& text);

/// Machine-readable registry listing (`safelight list --json`): every
/// registered experiment's name, summary, default seed count and CSV file
/// stems, plus the spec_from_json() field names under "spec_fields".
/// Deterministic pretty JSON, trailing newline included.
std::string registry_listing_json();

// Spec-driven runners of the five built-in experiments (the registry's run
// functions; the legacy run_* signatures shim onto these through the
// registry). Defined next to each sweep's internals.
ExperimentResult run_susceptibility_experiment(const ExperimentSpec& spec,
                                               RunContext& context);
ExperimentResult run_mitigation_experiment(const ExperimentSpec& spec,
                                           RunContext& context);
ExperimentResult run_robust_compare_experiment(const ExperimentSpec& spec,
                                               RunContext& context);
ExperimentResult run_detection_experiment(const ExperimentSpec& spec,
                                          RunContext& context);
ExperimentResult run_campaign_experiment(const ExperimentSpec& spec,
                                         RunContext& context);

}  // namespace safelight::core
