// Robust-vs-original comparison (paper §VI, Fig. 9).
//
// Compares the most robust variant against the Original model under
// actuation and hotspot attacks on 1 %, 5 % and 10 % of the *total* MRs
// (CONV+FC target), reporting accuracy intervals across placements and the
// recovered accuracy — the quantities behind the paper's
// "recover up to 5.4 % / 21.2 % / 30.7 %" claims.
#pragma once

#include "core/mitigation.hpp"

namespace safelight::core {

/// One (attack vector, fraction) cell of the Fig. 9 comparison.
struct RobustComparisonCell {
  attack::AttackVector vector;
  double fraction = 0.0;
  BoxStats original;   // Original accuracy across placements
  BoxStats robust;     // best robust variant accuracy across placements

  /// Worst-case drop of the original model vs its unattacked baseline.
  double original_drop(double baseline) const { return baseline - original.min; }
  /// Accuracy recovered in the worst case by the robust model.
  double recovered() const { return robust.min - original.min; }
};

/// Per-model robust-vs-original comparison (the data behind Fig. 9).
struct RobustComparisonReport {
  nn::ModelId model;
  std::string robust_variant_name;
  double original_baseline = 0.0;
  double robust_baseline = 0.0;
  std::vector<RobustComparisonCell> cells;  // 2 vectors x 3 fractions

  /// Cell lookup; throws when the (vector, fraction) pair was not swept.
  const RobustComparisonCell& cell(attack::AttackVector vector,
                                   double fraction) const;
};

/// Knobs of run_robust_compare.
struct RobustCompareOptions {
  std::size_t seed_count = 5;
  std::uint64_t base_seed = 1000;
  float l2_strength = kDefaultL2Strength;
  /// Robust variant to use; empty selects via run_mitigation's best_robust.
  std::string robust_variant;
  std::string cache_dir;
  bool verbose = false;
};

/// The inner mitigation spec robust_compare uses to select its robust
/// variant when `spec.robust_variant` is empty: mitigation's own defaults
/// (notably its paper seed count) with the comparison's model/scale/seed/
/// corruption settings copied over. Exposed so the distributed planner can
/// pre-shard the selection sweep with exactly the cache keys the in-process
/// run will look up.
struct ExperimentSpec;
ExperimentSpec robust_compare_selection_spec(const ExperimentSpec& spec);

/// The comparison grid robust_compare sweeps for Original and the robust
/// variant: both vectors x CONV+FC x {1, 5, 10} % x spec.seed_count
/// placements.
std::vector<attack::AttackScenario> robust_compare_grid(
    const ExperimentSpec& spec);

/// Selects the most robust variant (via the mitigation sweep unless pinned
/// in `options`) and compares it against Original across both attack
/// vectors at 1/5/10 % of the total MR population.
///
/// Deprecated shim: builds an ExperimentSpec and delegates to
/// ExperimentRegistry::global().run("robust_compare") — new callers should
/// use core/experiment.hpp directly.
RobustComparisonReport run_robust_compare(const ExperimentSetup& setup,
                                          ModelZoo& zoo,
                                          const RobustCompareOptions& options);

}  // namespace safelight::core
