// MR bank: one weight bank of the accelerator's VDP units.
//
// K microrings sit on one waveguide that carries K WDM channels; ring i is
// trimmed to channel i and imprints weight magnitude |w_i| as its
// through-port transmission. Channel c's amplitude after the bank is
//   a_c * prod_i T_i(lambda_c),
// and the photodetector sums all channels (paper Fig. 1(c)). Signs are kept
// in the electronic domain and applied per channel after detection
// (sign-magnitude convention of non-coherent accelerators).
//
// The same model produces the corrupted effective weights under both attack
// vectors: parking a ring off-resonance (actuation HT) drives its channel's
// transmission toward 1, and a per-ring temperature delta (hotspot HT)
// shifts resonances by Eq. 2 so rings modulate their *neighbors'* channels —
// reproducing paper Figs. 4 and 5.
#pragma once

#include <vector>

#include "photonics/microring.hpp"
#include "photonics/wdm.hpp"

namespace safelight::phot {

/// Weight <-> transmission encoding parameters.
struct WeightEncoding {
  double t_min = kDefaultTmin;  // transmission floor == |w| = 0
  double t_max = 0.98;          // transmission ceiling == |w| = 1

  double to_transmission(double magnitude) const;
  /// Inverse map; intentionally unclamped above 1 so off-resonance
  /// corruption decodes to a magnitude slightly above the maximum.
  double to_magnitude(double transmission) const;
  void validate() const;
};

class MrBank {
 public:
  /// One ring per WDM channel.
  MrBank(const MrGeometry& geometry, const WdmGrid& grid,
         WeightEncoding encoding = {});

  std::size_t size() const { return rings_.size(); }
  const WdmGrid& grid() const { return grid_; }
  const WeightEncoding& encoding() const { return encoding_; }

  /// Imprints signed normalized weights (|w| <= 1). Size must equal size().
  void set_weights(const std::vector<double>& weights);

  /// The signed weights as imprinted (before any attack).
  const std::vector<double>& nominal_weights() const { return nominal_; }

  // ---- attack hooks -------------------------------------------------
  /// Actuation HT: parks ring i `park_shift_nm` away from its carrier
  /// (default: half a channel spacing, the EO circuit's hijacked rest
  /// state). The ring no longer modulates its own channel.
  void park_off_resonance(std::size_t i, double park_shift_nm = -1.0);

  /// Hotspot HT: applies a temperature delta to ring i (Eq. 2 shift).
  void set_temperature_delta(std::size_t i, double delta_kelvin);

  /// Restores all rings to their nominal imprinted state.
  void reset_attacks();

  // ---- physics -------------------------------------------------------
  /// prod_i T_i(lambda_c): aggregate transmission seen by channel c.
  double channel_transmission(std::size_t channel) const;

  /// Signed effective weight per channel after decode — equals the nominal
  /// weights when no attack is active (up to encoding resolution).
  std::vector<double> effective_weights() const;

  /// Dot product sum_c sign_c * |w_eff,c| * a_c as detected by the PD and
  /// decoded electronically.
  double dot_product(const std::vector<double>& activations) const;

  const Microring& ring(std::size_t i) const;
  Microring& ring(std::size_t i);

 private:
  WdmGrid grid_;
  WeightEncoding encoding_;
  std::vector<Microring> rings_;
  std::vector<double> nominal_;  // signed weights as imprinted
  std::vector<int> signs_;       // electronic sign per channel
};

}  // namespace safelight::phot
