#include "photonics/mr_bank.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::phot {

double WeightEncoding::to_transmission(double magnitude) const {
  require(magnitude >= 0.0 && magnitude <= 1.0,
          "WeightEncoding: magnitude must be in [0,1]");
  return t_min + magnitude * (t_max - t_min);
}

double WeightEncoding::to_magnitude(double transmission) const {
  return (transmission - t_min) / (t_max - t_min);
}

void WeightEncoding::validate() const {
  require(t_min >= 0.0 && t_min < t_max && t_max < 1.0,
          "WeightEncoding: need 0 <= t_min < t_max < 1");
}

MrBank::MrBank(const MrGeometry& geometry, const WdmGrid& grid,
               WeightEncoding encoding)
    : grid_(grid), encoding_(encoding) {
  encoding_.validate();
  require(encoding_.t_min >= geometry.t_min,
          "MrBank: encoding floor below the device extinction floor is not "
          "imprintable");
  rings_.reserve(grid_.channel_count());
  for (std::size_t c = 0; c < grid_.channel_count(); ++c) {
    rings_.emplace_back(geometry, grid_.wavelength(c));
  }
  nominal_.assign(rings_.size(), 0.0);
  signs_.assign(rings_.size(), 1);
  set_weights(nominal_);
}

void MrBank::set_weights(const std::vector<double>& weights) {
  require(weights.size() == rings_.size(),
          "MrBank::set_weights: expected " + std::to_string(rings_.size()) +
              " weights, got " + std::to_string(weights.size()));
  nominal_ = weights;
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    const double magnitude = std::abs(weights[i]);
    require(magnitude <= 1.0, "MrBank::set_weights: |w| must be <= 1");
    signs_[i] = weights[i] < 0.0 ? -1 : 1;
    rings_[i].set_temperature_delta(0.0);
    rings_[i].imprint_weight(encoding_.to_transmission(magnitude));
  }
}

void MrBank::park_off_resonance(std::size_t i, double park_shift_nm) {
  require(i < rings_.size(), "MrBank::park_off_resonance: index out of range");
  if (park_shift_nm < 0.0) park_shift_nm = 0.5 * grid_.spacing_nm();
  rings_[i].set_detuning_nm(park_shift_nm);
}

void MrBank::set_temperature_delta(std::size_t i, double delta_kelvin) {
  require(i < rings_.size(),
          "MrBank::set_temperature_delta: index out of range");
  rings_[i].set_temperature_delta(delta_kelvin);
}

void MrBank::reset_attacks() { set_weights(nominal_); }

double MrBank::channel_transmission(std::size_t channel) const {
  require(channel < rings_.size(),
          "MrBank::channel_transmission: channel out of range");
  const double wavelength = grid_.wavelength(channel);
  double product = 1.0;
  for (const auto& ring : rings_) {
    product *= ring.transmission(wavelength);
  }
  return product;
}

std::vector<double> MrBank::effective_weights() const {
  std::vector<double> out(rings_.size());
  for (std::size_t c = 0; c < rings_.size(); ++c) {
    // The electronic decode subtracts the t_min offset; optical power below
    // the floor (several notches stacked on one channel) reads as zero.
    const double magnitude =
        std::max(0.0, encoding_.to_magnitude(channel_transmission(c)));
    out[c] = static_cast<double>(signs_[c]) * magnitude;
  }
  return out;
}

double MrBank::dot_product(const std::vector<double>& activations) const {
  require(activations.size() == rings_.size(),
          "MrBank::dot_product: activation count mismatch");
  const std::vector<double> weights = effective_weights();
  double acc = 0.0;
  for (std::size_t c = 0; c < rings_.size(); ++c) {
    acc += weights[c] * activations[c];
  }
  return acc;
}

const Microring& MrBank::ring(std::size_t i) const {
  require(i < rings_.size(), "MrBank::ring: index out of range");
  return rings_[i];
}

Microring& MrBank::ring(std::size_t i) {
  require(i < rings_.size(), "MrBank::ring: index out of range");
  return rings_[i];
}

}  // namespace safelight::phot
