// Process-variation (PV) model for MR resonances.
//
// Fabrication variations shift each ring's natural resonance; tuning
// circuits trim the shift back, but only within their range (paper §II.B,
// and the LIBRA [24] / SOTERIA [25] line of work the paper builds on).
// SafeLight models the *residual* offset after trimming: offsets within the
// trim budget vanish, excess survives and degrades computation fidelity —
// an ambient noise floor the robustness experiments can layer under the HT
// attacks.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "photonics/mr_bank.hpp"

namespace safelight::phot {

struct ProcessVariation {
  /// Stddev of the as-fabricated resonance offset [nm]. Literature values
  /// for SOI rings are ~0.2-0.6 nm die-to-die; 0.3 nm default.
  double sigma_nm = 0.3;
  /// Trimming budget of the tuning circuit [nm]; offsets within it are
  /// nulled exactly.
  double trim_range_nm = 1.0;

  void validate() const;
};

/// Samples residual per-ring offsets (after trimming) for `count` rings.
std::vector<double> sample_residual_offsets(std::size_t count,
                                            const ProcessVariation& pv,
                                            Rng& rng);

/// Applies sampled residual offsets to a bank's rings.
void apply_process_variation(MrBank& bank, const ProcessVariation& pv,
                             Rng& rng);

}  // namespace safelight::phot
