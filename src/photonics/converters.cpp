#include "photonics/converters.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safelight::phot {

void QuantizerConfig::validate() const {
  require(bits >= 1 && bits <= 24, "Quantizer: bits must be in [1,24]");
  require(min_value < max_value, "Quantizer: min must be < max");
}

double QuantizerConfig::step() const {
  return (max_value - min_value) / static_cast<double>(levels() - 1);
}

Quantizer::Quantizer(const QuantizerConfig& config) : config_(config) {
  config_.validate();
}

double Quantizer::quantize(double value) const {
  const double clamped =
      std::clamp(value, config_.min_value, config_.max_value);
  const double step = config_.step();
  const double idx = std::round((clamped - config_.min_value) / step);
  return config_.min_value + idx * step;
}

double Quantizer::max_error() const { return config_.step() * 0.5; }

}  // namespace safelight::phot
