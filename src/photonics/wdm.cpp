#include "photonics/wdm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::phot {

WdmGrid::WdmGrid(std::size_t channels, double center_nm, double fsr_nm)
    : center_nm_(center_nm) {
  require(channels >= 1, "WdmGrid: need at least one channel");
  require(fsr_nm > 0.0, "WdmGrid: FSR must be positive");
  spacing_nm_ = fsr_nm / static_cast<double>(channels);
  wavelengths_.resize(channels);
  const double first =
      center_nm - spacing_nm_ * (static_cast<double>(channels) - 1.0) / 2.0;
  for (std::size_t i = 0; i < channels; ++i) {
    wavelengths_[i] = first + spacing_nm_ * static_cast<double>(i);
  }
}

double WdmGrid::wavelength(std::size_t channel) const {
  if (channel >= wavelengths_.size()) {
    throw std::out_of_range("WdmGrid::wavelength: channel out of range");
  }
  return wavelengths_[channel];
}

int WdmGrid::nearest_channel(double wavelength_nm) const {
  const double offset = (wavelength_nm - wavelengths_.front()) / spacing_nm_;
  const long idx = std::lround(offset);
  if (idx < 0 || idx >= static_cast<long>(wavelengths_.size())) return -1;
  if (std::abs(wavelength_nm - wavelengths_[static_cast<std::size_t>(idx)]) >
      spacing_nm_ * 0.5 + 1e-12) {
    return -1;
  }
  return static_cast<int>(idx);
}

}  // namespace safelight::phot
