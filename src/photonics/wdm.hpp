// Wavelength-division-multiplexing grid.
//
// A waveguide in the accelerator carries K evenly spaced channels inside one
// free spectral range (paper §II.B / §III.B.2: "an optical waveguide is
// configured to support a specific number of evenly spaced wavelengths,
// corresponding to the number of columns in each MR bank").
#pragma once

#include <cstddef>
#include <vector>

namespace safelight::phot {

class WdmGrid {
 public:
  /// K channels centered on `center_nm`, uniformly spaced by fsr_nm / K.
  WdmGrid(std::size_t channels, double center_nm, double fsr_nm);

  std::size_t channel_count() const { return wavelengths_.size(); }
  double spacing_nm() const { return spacing_nm_; }
  double center_nm() const { return center_nm_; }

  /// Wavelength of channel i; throws std::out_of_range.
  double wavelength(std::size_t channel) const;

  const std::vector<double>& wavelengths() const { return wavelengths_; }

  /// Index of the channel nearest to `wavelength_nm`, or -1 when the
  /// wavelength falls outside the grid span by more than half a spacing
  /// ("unsupported wavelength" in the paper's Fig. 5).
  int nearest_channel(double wavelength_nm) const;

 private:
  double center_nm_;
  double spacing_nm_;
  std::vector<double> wavelengths_;
};

}  // namespace safelight::phot
