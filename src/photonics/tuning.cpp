#include "photonics/tuning.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::phot {

std::string to_string(TuningMethod method) {
  switch (method) {
    case TuningMethod::kElectroOptic: return "EO";
    case TuningMethod::kThermoOptic: break;
  }
  return "TO";
}

bool TuningCircuit::can_reach(double shift_nm) const {
  return std::abs(shift_nm) <= max_range_nm;
}

double TuningCircuit::power_mw(double shift_nm) const {
  require(can_reach(shift_nm),
          "TuningCircuit: requested shift exceeds " + to_string(method) +
              " tuning range");
  return std::abs(shift_nm) * power_per_nm_mw;
}

TuningCircuit eo_tuning() {
  TuningCircuit c;
  c.method = TuningMethod::kElectroOptic;
  c.max_range_nm = 0.8;
  c.power_per_nm_mw = 4e-3;  // 4 uW/nm
  c.latency_ns = 1.0;
  return c;
}

TuningCircuit to_tuning(double fsr_nm) {
  require(fsr_nm > 0.0, "to_tuning: FSR must be positive");
  TuningCircuit c;
  c.method = TuningMethod::kThermoOptic;
  c.max_range_nm = fsr_nm;
  c.power_per_nm_mw = 27.0 / fsr_nm;  // 27 mW per FSR
  c.latency_ns = 1000.0;              // ~1 us
  return c;
}

}  // namespace safelight::phot
