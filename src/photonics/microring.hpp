// Microring resonator (MR) device model.
//
// The MR is the workhorse of the non-coherent ONN accelerator: weights and
// activations are imprinted by detuning an MR relative to its carrier
// wavelength so the through-port transmission equals the desired magnitude
// (paper Fig. 1(a)). The model implements:
//   * Eq. 1 resonance:       lambda_MR = 2*pi*R*n_eff / m
//   * Lorentzian through-port transmission with extinction floor T_min
//   * closed-form weight -> detuning inversion
//   * Eq. 2 thermo-optic resonance shift
#pragma once

#include <cstddef>

#include "photonics/constants.hpp"

namespace safelight::phot {

/// Static design parameters of one MR.
struct MrGeometry {
  double radius_um = kDefaultRadiusUm;
  double n_eff = kEffectiveIndex;
  double n_g = kGroupIndex;
  double q_factor = kDefaultQ;
  double t_min = kDefaultTmin;

  /// Validates ranges; throws std::invalid_argument.
  void validate() const;
};

class Microring {
 public:
  /// Builds an MR whose resonance order m is chosen so the Eq. 1 resonance
  /// lands nearest to target_nm; the small residual offset is absorbed into
  /// the fabrication-trim bias (real devices are trimmed the same way).
  Microring(const MrGeometry& geometry, double target_nm);

  const MrGeometry& geometry() const { return geometry_; }

  /// Eq. 1 resonance for the chosen order, before trim/tuning [nm].
  double natural_resonance_nm() const { return natural_resonance_nm_; }

  /// Resonance order m selected at construction.
  std::size_t resonance_order() const { return order_; }

  /// Current effective resonance including trim, imprint detuning and
  /// thermal shift [nm].
  double resonance_nm() const;

  /// Free spectral range lambda^2 / (n_g * 2*pi*R) [nm].
  double fsr_nm() const;

  /// Lorentzian full width at half maximum: lambda / Q [nm].
  double fwhm_nm() const;

  /// Through-port transmission in [t_min, 1] at the given wavelength.
  double transmission(double wavelength_nm) const;

  /// Sets the imprint detuning directly [nm] (signal modulation circuit).
  void set_detuning_nm(double detuning_nm);
  double detuning_nm() const { return detuning_nm_; }

  /// Residual fabrication offset after process-variation trimming [nm]
  /// (see photonics/variation.hpp). Adds to the effective resonance.
  void set_fabrication_offset_nm(double offset_nm);
  double fabrication_offset_nm() const { return fab_offset_nm_; }

  /// Applies a temperature delta; resonance shifts per Eq. 2.
  void set_temperature_delta(double delta_kelvin);
  double temperature_delta() const { return delta_kelvin_; }

  /// Eq. 2 shift for a given delta-T [nm].
  double thermal_shift_nm(double delta_kelvin) const;

  /// Imprints a weight magnitude in [t_min, 1]: solves the Lorentzian for
  /// the detuning that makes transmission(carrier) == magnitude.
  /// Throws std::invalid_argument outside the representable range.
  void imprint_weight(double magnitude);

  /// Closed-form detuning required for a target transmission [nm].
  static double detuning_for_transmission(double target, double fwhm_nm,
                                          double t_min);

 private:
  MrGeometry geometry_;
  double carrier_nm_;             // wavelength this MR is assigned to
  std::size_t order_;             // resonance order m
  double natural_resonance_nm_;   // Eq. 1 output
  double trim_nm_;                // fabrication trim to hit the carrier
  double detuning_nm_ = 0.0;      // weight imprint / actuation offset
  double fab_offset_nm_ = 0.0;    // residual process-variation offset
  double delta_kelvin_ = 0.0;     // thermal state
};

}  // namespace safelight::phot
