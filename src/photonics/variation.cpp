#include "photonics/variation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace safelight::phot {

void ProcessVariation::validate() const {
  require(sigma_nm >= 0.0, "ProcessVariation: sigma must be >= 0");
  require(trim_range_nm >= 0.0, "ProcessVariation: trim range must be >= 0");
}

std::vector<double> sample_residual_offsets(std::size_t count,
                                            const ProcessVariation& pv,
                                            Rng& rng) {
  pv.validate();
  std::vector<double> residuals(count, 0.0);
  for (auto& r : residuals) {
    const double raw = rng.gaussian(0.0, pv.sigma_nm);
    // Trimming nulls offsets within range; only the excess survives.
    const double trimmed = std::clamp(raw, -pv.trim_range_nm,
                                      pv.trim_range_nm);
    r = raw - trimmed;
  }
  return residuals;
}

void apply_process_variation(MrBank& bank, const ProcessVariation& pv,
                             Rng& rng) {
  const auto residuals = sample_residual_offsets(bank.size(), pv, rng);
  for (std::size_t i = 0; i < bank.size(); ++i) {
    bank.ring(i).set_fabrication_offset_nm(residuals[i]);
  }
}

}  // namespace safelight::phot
