// MR peripheral tuning-circuit models (paper §II.B).
//
// Two tuning mechanisms bias the MR resonance:
//   * electro-optic (EO, carrier injection): ~ns latency, ~4 uW/nm, small
//     usable range — used for fast signal actuation,
//   * thermo-optic (TO, integrated heater): ~us latency, ~27 mW per FSR of
//     tuning, full-FSR range — used for bias/stabilization.
// These circuits are exactly the attack surfaces of the paper: actuation
// HTs hijack the EO path, hotspot HTs overdrive the TO heater.
#pragma once

#include <string>

namespace safelight::phot {

enum class TuningMethod { kElectroOptic, kThermoOptic };

std::string to_string(TuningMethod method);

struct TuningCircuit {
  TuningMethod method = TuningMethod::kElectroOptic;
  double max_range_nm = 0.0;    // usable tuning span
  double power_per_nm_mw = 0.0; // drive power per nm of shift
  double latency_ns = 0.0;      // settling time

  /// True when `shift_nm` (magnitude) is reachable by this circuit.
  bool can_reach(double shift_nm) const;

  /// Drive power [mW] to hold a shift; throws when out of range.
  double power_mw(double shift_nm) const;

  /// Settling latency [ns] (independent of shift in this model).
  double settle_latency_ns() const { return latency_ns; }
};

/// EO tuning: ~4 uW/nm, ~1 ns, range limited to ~0.8 nm (carrier injection
/// cannot sweep far before free-carrier losses dominate).
TuningCircuit eo_tuning();

/// TO tuning: 27 mW per FSR, ~1 us, full-FSR range. `fsr_nm` converts the
/// per-FSR power figure into per-nm.
TuningCircuit to_tuning(double fsr_nm);

}  // namespace safelight::phot
