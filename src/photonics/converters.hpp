// DAC / ADC quantization models (paper Fig. 2(e)/(f)).
//
// DAC arrays convert buffered digital weights/activations into analog MR
// tuning signals; ADC arrays digitize the PD outputs. Both are uniform
// mid-rise quantizers over a configurable range. The executor uses them to
// bound the numeric fidelity of the unattacked accelerator (integration
// tests assert the pure-NN / accelerator agreement within this resolution).
#pragma once

#include <cstddef>

namespace safelight::phot {

struct QuantizerConfig {
  unsigned bits = 8;
  double min_value = -1.0;
  double max_value = 1.0;

  void validate() const;
  std::size_t levels() const { return std::size_t{1} << bits; }
  double step() const;
};

/// Uniform quantizer; values outside the range clamp to the range edges.
class Quantizer {
 public:
  explicit Quantizer(const QuantizerConfig& config);

  double quantize(double value) const;

  /// Largest possible |x - quantize(x)| for in-range x (half a step).
  double max_error() const;

  const QuantizerConfig& config() const { return config_; }

 private:
  QuantizerConfig config_;
};

/// Semantic aliases: the hardware has distinct DAC and ADC arrays with
/// independent resolutions.
using Dac = Quantizer;
using Adc = Quantizer;

}  // namespace safelight::phot
