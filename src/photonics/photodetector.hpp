// Photodetector model (paper Fig. 2(g)).
//
// The PD sums the optical power across all WDM channels of a bank and
// converts it to a photocurrent; optional Gaussian noise models shot +
// thermal contributions for robustness experiments (deterministic runs keep
// it disabled).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace safelight::phot {

struct PhotodetectorConfig {
  double responsivity_a_per_w = 1.0;  // A/W
  double noise_sigma = 0.0;           // stddev of additive Gaussian noise [mA]
  std::uint64_t seed = 99;
};

class Photodetector {
 public:
  explicit Photodetector(const PhotodetectorConfig& config);

  /// Sums channel powers [mW] into a photocurrent [mA], adding noise when
  /// configured.
  double detect_ma(const std::vector<double>& channel_powers_mw);

  const PhotodetectorConfig& config() const { return config_; }

 private:
  PhotodetectorConfig config_;
  Rng rng_;
};

}  // namespace safelight::phot
