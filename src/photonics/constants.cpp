#include "photonics/constants.hpp"

namespace safelight::phot {

double thermal_shift_per_kelvin_nm(double wavelength_nm, double group_index,
                                   double confinement, double thermo_optic) {
  return confinement * thermo_optic * wavelength_nm / group_index;
}

}  // namespace safelight::phot
