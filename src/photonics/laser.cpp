#include "photonics/laser.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::phot {

double db_to_linear(double db) { return std::pow(10.0, -db / 10.0); }

LaserSource::LaserSource(const WdmGrid& grid, double power_per_channel_mw,
                         double wall_plug_efficiency)
    : powers_mw_(grid.channel_count(), power_per_channel_mw),
      efficiency_(wall_plug_efficiency) {
  require(power_per_channel_mw > 0.0,
          "LaserSource: channel power must be positive");
  require(wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0,
          "LaserSource: efficiency must be in (0,1]");
}

double LaserSource::power_mw(std::size_t channel) const {
  require(channel < powers_mw_.size(),
          "LaserSource::power_mw: channel out of range");
  return powers_mw_[channel];
}

double LaserSource::total_optical_power_mw() const {
  double total = 0.0;
  for (double p : powers_mw_) total += p;
  return total;
}

double LaserSource::electrical_power_mw() const {
  return total_optical_power_mw() / efficiency_;
}

void LaserSource::apply_loss_db(double loss_db) {
  require(loss_db >= 0.0, "LaserSource::apply_loss_db: loss must be >= 0 dB");
  const double factor = db_to_linear(loss_db);
  for (double& p : powers_mw_) p *= factor;
}

}  // namespace safelight::phot
