#include "photonics/microring.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::phot {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

void MrGeometry::validate() const {
  require(radius_um > 0.0, "MrGeometry: radius must be positive");
  require(n_eff > 1.0 && n_eff < 5.0, "MrGeometry: n_eff out of SOI range");
  require(n_g >= n_eff, "MrGeometry: group index must be >= effective index");
  require(q_factor > 100.0, "MrGeometry: Q factor unreasonably low");
  require(t_min >= 0.0 && t_min < 0.5,
          "MrGeometry: extinction floor must be in [0, 0.5)");
}

Microring::Microring(const MrGeometry& geometry, double target_nm)
    : geometry_(geometry), carrier_nm_(target_nm) {
  geometry_.validate();
  require(target_nm > 1000.0 && target_nm < 2000.0,
          "Microring: target wavelength must be in the near-IR band");
  // Eq. 1: lambda = 2*pi*R*n_eff / m  ->  m = round(2*pi*R*n_eff / lambda).
  const double circumference_nm = 2.0 * kPi * geometry_.radius_um * 1000.0;
  const double m_real = circumference_nm * geometry_.n_eff / target_nm;
  order_ = static_cast<std::size_t>(std::llround(m_real));
  SAFELIGHT_ASSERT(order_ > 0, "Microring: resonance order underflow");
  natural_resonance_nm_ =
      circumference_nm * geometry_.n_eff / static_cast<double>(order_);
  // Fabrication trim aligns the device to its WDM carrier.
  trim_nm_ = carrier_nm_ - natural_resonance_nm_;
}

double Microring::resonance_nm() const {
  return natural_resonance_nm_ + trim_nm_ + detuning_nm_ + fab_offset_nm_ +
         thermal_shift_nm(delta_kelvin_);
}

void Microring::set_fabrication_offset_nm(double offset_nm) {
  fab_offset_nm_ = offset_nm;
}

double Microring::fsr_nm() const {
  const double circumference_nm = 2.0 * kPi * geometry_.radius_um * 1000.0;
  return carrier_nm_ * carrier_nm_ / (geometry_.n_g * circumference_nm);
}

double Microring::fwhm_nm() const { return carrier_nm_ / geometry_.q_factor; }

double Microring::transmission(double wavelength_nm) const {
  const double half_width = 0.5 * fwhm_nm();
  const double x = (wavelength_nm - resonance_nm()) / half_width;
  const double notch = (1.0 - geometry_.t_min) / (1.0 + x * x);
  return 1.0 - notch;
}

void Microring::set_detuning_nm(double detuning_nm) {
  detuning_nm_ = detuning_nm;
}

void Microring::set_temperature_delta(double delta_kelvin) {
  delta_kelvin_ = delta_kelvin;
}

double Microring::thermal_shift_nm(double delta_kelvin) const {
  // Eq. 2: dLambda = Gamma_Si * (dn_Si/dT) * lambda / n_g * dT.
  return kConfinementSi * kThermoOpticSi * carrier_nm_ / geometry_.n_g *
         delta_kelvin;
}

double Microring::detuning_for_transmission(double target, double fwhm_nm,
                                            double t_min) {
  require(fwhm_nm > 0.0, "detuning_for_transmission: FWHM must be positive");
  require(target >= t_min && target < 1.0,
          "detuning_for_transmission: target transmission must be in "
          "[t_min, 1)");
  // Invert T = 1 - (1 - t_min) / (1 + x^2):
  //   x = sqrt((target - t_min) / (1 - target)).
  const double x = std::sqrt((target - t_min) / (1.0 - target));
  return 0.5 * fwhm_nm * x;
}

void Microring::imprint_weight(double magnitude) {
  set_detuning_nm(
      detuning_for_transmission(magnitude, fwhm_nm(), geometry_.t_min));
}

}  // namespace safelight::phot
