// Physical constants and default silicon-photonics parameters.
//
// Values follow the literature the paper cites: thermo-optic coefficient and
// group index from [20]/[24], C-band operation at 1550 nm, microring radius
// ~5 um as in CrossLight [7]. Wavelengths are expressed in nanometers and
// temperatures in Kelvin throughout SafeLight.
#pragma once

namespace safelight::phot {

/// Speed of light [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// C-band operating wavelength [nm].
inline constexpr double kDefaultWavelengthNm = 1550.0;

/// Group refractive index of the MR waveguide (paper Eq. 2, n_g).
inline constexpr double kGroupIndex = 4.2;

/// Modal confinement factor of the MR core (paper Eq. 2, Gamma_Si).
inline constexpr double kConfinementSi = 0.8;

/// Thermo-optic coefficient of silicon [1/K] (paper Eq. 2, dn_Si/dT).
inline constexpr double kThermoOpticSi = 1.86e-4;

/// Effective index of the SOI microring mode (used by Eq. 1).
inline constexpr double kEffectiveIndex = 2.36;

/// Default microring radius [um].
inline constexpr double kDefaultRadiusUm = 5.0;

/// Default loaded quality factor of a CONV-block weight MR (20 channels per
/// FSR need FWHM well below the ~0.9 nm channel spacing).
inline constexpr double kDefaultQ = 20'000.0;

/// High-Q MR used by the FC block, whose 150 channels per FSR imply a
/// ~0.12 nm spacing and hence a much narrower linewidth.
inline constexpr double kHighQ = 150'000.0;

/// On-resonance through-port transmission floor (extinction limit).
inline constexpr double kDefaultTmin = 0.02;

/// Thermo-optic resonance shift per Kelvin [nm/K] for the defaults above:
/// Gamma_Si * (dn_Si/dT) * lambda / n_g  (paper Eq. 2).
double thermal_shift_per_kelvin_nm(double wavelength_nm = kDefaultWavelengthNm,
                                   double group_index = kGroupIndex,
                                   double confinement = kConfinementSi,
                                   double thermo_optic = kThermoOpticSi);

}  // namespace safelight::phot
