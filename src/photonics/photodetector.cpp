#include "photonics/photodetector.hpp"

#include "common/error.hpp"

namespace safelight::phot {

Photodetector::Photodetector(const PhotodetectorConfig& config)
    : config_(config), rng_(config.seed) {
  require(config_.responsivity_a_per_w > 0.0,
          "Photodetector: responsivity must be positive");
  require(config_.noise_sigma >= 0.0,
          "Photodetector: noise sigma must be >= 0");
}

double Photodetector::detect_ma(
    const std::vector<double>& channel_powers_mw) {
  double total_mw = 0.0;
  for (double p : channel_powers_mw) {
    require(p >= 0.0, "Photodetector: negative optical power");
    total_mw += p;
  }
  double current_ma = total_mw * config_.responsivity_a_per_w;
  if (config_.noise_sigma > 0.0) {
    current_ma += rng_.gaussian(0.0, config_.noise_sigma);
  }
  return current_ma;
}

}  // namespace safelight::phot
