// Multi-wavelength laser source model.
//
// Supplies the comb of WDM carriers that feeds each VDP waveguide
// (paper Fig. 2(a)). The model tracks per-channel optical power and a
// wall-plug efficiency for the accelerator's energy accounting.
#pragma once

#include <cstddef>
#include <vector>

#include "photonics/wdm.hpp"

namespace safelight::phot {

class LaserSource {
 public:
  /// Uniform power per channel [mW]; efficiency is wall-plug (0,1].
  LaserSource(const WdmGrid& grid, double power_per_channel_mw,
              double wall_plug_efficiency = 0.2);

  std::size_t channel_count() const { return powers_mw_.size(); }
  double power_mw(std::size_t channel) const;
  double total_optical_power_mw() const;

  /// Electrical power drawn to emit the comb [mW].
  double electrical_power_mw() const;

  /// Applies a per-channel attenuation (e.g. coupling/insertion loss, dB > 0
  /// attenuates).
  void apply_loss_db(double loss_db);

 private:
  std::vector<double> powers_mw_;
  double efficiency_;
};

/// Converts dB to a linear power factor (attenuation for dB > 0).
double db_to_linear(double db);

}  // namespace safelight::phot
