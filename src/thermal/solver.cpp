#include "thermal/solver.hpp"

#include <cmath>

#include "common/error.hpp"

namespace safelight::thermal {

void SolverConfig::validate() const {
  require(g_lateral_w_per_k > 0.0, "SolverConfig: g_lateral must be > 0");
  require(g_sink_w_per_k > 0.0, "SolverConfig: g_sink must be > 0");
  require(sor_omega > 0.0 && sor_omega < 2.0,
          "SolverConfig: SOR omega must be in (0,2)");
  require(max_iterations > 0, "SolverConfig: need at least one iteration");
  require(tolerance_k > 0.0, "SolverConfig: tolerance must be positive");
}

double SolverConfig::decay_length_cells() const {
  return std::sqrt(g_lateral_w_per_k / g_sink_w_per_k);
}

SolveResult solve_steady_state(ThermalGrid& grid, const SolverConfig& config) {
  config.validate();
  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  const double ambient = grid.config().ambient_k;
  const double g_lat = config.g_lateral_w_per_k;
  const double g_sink = config.g_sink_w_per_k;

  // Work on a local copy for cache-friendly sweeps.
  std::vector<double> temp(grid.temperatures());
  const std::vector<double>& power = grid.powers();

  SolveResult result;
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    double max_update = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t i = r * cols + c;
        double neighbor_sum = 0.0;
        std::size_t neighbor_count = 0;
        if (r > 0) { neighbor_sum += temp[i - cols]; ++neighbor_count; }
        if (r + 1 < rows) { neighbor_sum += temp[i + cols]; ++neighbor_count; }
        if (c > 0) { neighbor_sum += temp[i - 1]; ++neighbor_count; }
        if (c + 1 < cols) { neighbor_sum += temp[i + 1]; ++neighbor_count; }
        // Power is stored in mW; conductances in W/K -> convert to W.
        const double p_w = power[i] * 1.0e-3;
        const double denom =
            g_sink + g_lat * static_cast<double>(neighbor_count);
        const double gauss_seidel =
            (p_w + g_sink * ambient + g_lat * neighbor_sum) / denom;
        const double updated =
            (1.0 - config.sor_omega) * temp[i] +
            config.sor_omega * gauss_seidel;
        max_update = std::max(max_update, std::abs(updated - temp[i]));
        temp[i] = updated;
      }
    }
    result.iterations = iter + 1;
    result.residual_k = max_update;
    if (max_update < config.tolerance_k) {
      result.converged = true;
      break;
    }
  }

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      grid.set_temperature_k(r, c, temp[r * cols + c]);
    }
  }
  return result;
}

}  // namespace safelight::thermal
