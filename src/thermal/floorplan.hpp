// Floorplan of an accelerator block's MR bank array.
//
// VDP units tile the die in a near-square grid; each unit's banks tile the
// unit. The floorplan maps a (unit, bank) address to a thermal-grid cell so
// hotspot attacks can inject heater power at the right physical location and
// read back per-bank temperature rises.
#pragma once

#include <cstddef>
#include <utility>

#include "thermal/grid.hpp"

namespace safelight::thermal {

class BlockFloorplan {
 public:
  /// `units` VDP units with `banks_per_unit` banks each. The constructor
  /// chooses near-square tilings for both levels.
  BlockFloorplan(std::size_t units, std::size_t banks_per_unit,
                 double bank_pitch_um = 60.0, double ambient_k = 300.0);

  std::size_t units() const { return units_; }
  std::size_t banks_per_unit() const { return banks_per_unit_; }

  std::size_t grid_rows() const { return unit_rows_ * bank_rows_; }
  std::size_t grid_cols() const { return unit_cols_ * bank_cols_; }

  /// Thermal-grid cell of a (unit, bank) pair.
  std::pair<std::size_t, std::size_t> bank_cell(std::size_t unit,
                                                std::size_t bank) const;

  /// Inverse map: grid cell -> (unit, bank).
  std::pair<std::size_t, std::size_t> cell_bank(std::size_t row,
                                                std::size_t col) const;

  /// A grid sized for this floorplan (all cells ambient, no power).
  ThermalGrid make_grid() const;

 private:
  std::size_t units_, banks_per_unit_;
  std::size_t unit_rows_, unit_cols_;
  std::size_t bank_rows_, bank_cols_;
  double bank_pitch_um_;
  double ambient_k_;
};

/// Near-square factorization helper: returns (rows, cols) with
/// rows * cols >= n, rows <= cols, minimizing wasted cells.
std::pair<std::size_t, std::size_t> near_square(std::size_t n);

}  // namespace safelight::thermal
