// Steady-state thermal solver (successive over-relaxation).
//
// Governing balance per cell i (same equation class HotSpot solves):
//   g_lat * sum_nb (T_nb - T_i) + g_sink * (T_amb - T_i) + P_i = 0
// with adiabatic lateral boundaries and a vertical conductance to the heat
// sink. The default conductances are calibrated so a single overdriven
// in-resonator heater (~40 mW) produces a local rise of a few tens of
// Kelvin that decays over 2-3 bank tiles — the bank-level hotspot profile
// the paper's Fig. 6 shows.
#pragma once

#include "thermal/grid.hpp"

namespace safelight::thermal {

struct SolverConfig {
  double g_lateral_w_per_k = 1.0e-3;  // cell-to-cell conductance
  double g_sink_w_per_k = 1.6e-4;     // cell-to-sink conductance
  double sor_omega = 1.8;             // SOR relaxation factor in (0,2)
  std::size_t max_iterations = 50'000;
  double tolerance_k = 1.0e-7;        // max per-sweep update to stop

  void validate() const;

  /// Characteristic lateral decay length in cells: sqrt(g_lat / g_sink).
  double decay_length_cells() const;
};

struct SolveResult {
  std::size_t iterations = 0;
  double residual_k = 0.0;  // last max update
  bool converged = false;
};

/// Solves the steady state in place (writes grid temperatures).
/// Throws std::invalid_argument on bad config.
SolveResult solve_steady_state(ThermalGrid& grid,
                               const SolverConfig& config = {});

}  // namespace safelight::thermal
