#include "thermal/grid.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace safelight::thermal {

void GridConfig::validate() const {
  require(rows > 0 && cols > 0, "GridConfig: grid must be non-empty");
  require(cell_pitch_um > 0.0, "GridConfig: cell pitch must be positive");
  require(ambient_k > 0.0, "GridConfig: ambient must be positive Kelvin");
}

ThermalGrid::ThermalGrid(const GridConfig& config) : config_(config) {
  config_.validate();
  power_mw_.assign(config_.cell_count(), 0.0);
  temp_k_.assign(config_.cell_count(), config_.ambient_k);
}

std::size_t ThermalGrid::index(std::size_t row, std::size_t col) const {
  require(row < config_.rows && col < config_.cols,
          "ThermalGrid: cell (" + std::to_string(row) + "," +
              std::to_string(col) + ") out of range");
  return row * config_.cols + col;
}

void ThermalGrid::add_power_mw(std::size_t row, std::size_t col,
                               double power_mw) {
  require(power_mw >= 0.0, "ThermalGrid: injected power must be >= 0");
  power_mw_[index(row, col)] += power_mw;
}

double ThermalGrid::power_mw(std::size_t row, std::size_t col) const {
  return power_mw_[index(row, col)];
}

void ThermalGrid::clear_power() {
  std::fill(power_mw_.begin(), power_mw_.end(), 0.0);
}

double ThermalGrid::total_power_mw() const {
  double total = 0.0;
  for (double p : power_mw_) total += p;
  return total;
}

double ThermalGrid::temperature_k(std::size_t row, std::size_t col) const {
  return temp_k_[index(row, col)];
}

void ThermalGrid::set_temperature_k(std::size_t row, std::size_t col,
                                    double kelvin) {
  temp_k_[index(row, col)] = kelvin;
}

double ThermalGrid::delta_t(std::size_t row, std::size_t col) const {
  return temperature_k(row, col) - config_.ambient_k;
}

double ThermalGrid::max_temperature_k() const {
  return *std::max_element(temp_k_.begin(), temp_k_.end());
}

}  // namespace safelight::thermal
