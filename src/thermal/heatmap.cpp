#include "thermal/heatmap.hpp"

#include <algorithm>
#include <sstream>

#include "common/csv.hpp"

namespace safelight::thermal {

std::string render_ascii_heatmap(const ThermalGrid& grid) {
  static const std::string ramp = " .:-=+*#%@";
  const double ambient = grid.config().ambient_k;
  const double peak = grid.max_temperature_k();
  const double span = std::max(1e-9, peak - ambient);

  std::ostringstream os;
  os.precision(2);
  os << std::fixed;
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      const double t = grid.temperature_k(r, c);
      const double norm = std::clamp((t - ambient) / span, 0.0, 1.0);
      const auto idx = static_cast<std::size_t>(
          norm * static_cast<double>(ramp.size() - 1));
      os << ramp[idx];
    }
    os << '\n';
  }
  os << "scale: ' '=" << ambient << "K ... '@'=" << peak << "K\n";
  return os.str();
}

void write_heatmap_csv(const ThermalGrid& grid, const std::string& path) {
  std::vector<std::string> header;
  header.reserve(grid.cols());
  for (std::size_t c = 0; c < grid.cols(); ++c) {
    header.push_back("col" + std::to_string(c));
  }
  CsvWriter writer(path, header);
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    std::vector<double> row(grid.cols());
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      row[c] = grid.temperature_k(r, c);
    }
    writer.row_values(row);
  }
}

}  // namespace safelight::thermal
