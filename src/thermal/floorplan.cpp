#include "thermal/floorplan.hpp"

#include <cmath>
#include <tuple>

#include "common/error.hpp"

namespace safelight::thermal {

std::pair<std::size_t, std::size_t> near_square(std::size_t n) {
  require(n > 0, "near_square: n must be positive");
  auto rows = static_cast<std::size_t>(std::floor(std::sqrt(
      static_cast<double>(n))));
  while (rows > 1 && n % rows != 0) --rows;
  // Perfect factorization found; otherwise fall back to ceil grid.
  if (n % rows == 0) return {rows, n / rows};
  rows = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  return {rows, (n + rows - 1) / rows};
}

BlockFloorplan::BlockFloorplan(std::size_t units, std::size_t banks_per_unit,
                               double bank_pitch_um, double ambient_k)
    : units_(units), banks_per_unit_(banks_per_unit),
      bank_pitch_um_(bank_pitch_um), ambient_k_(ambient_k) {
  require(units > 0 && banks_per_unit > 0,
          "BlockFloorplan: units and banks must be positive");
  std::tie(unit_rows_, unit_cols_) = near_square(units_);
  std::tie(bank_rows_, bank_cols_) = near_square(banks_per_unit_);
}

std::pair<std::size_t, std::size_t> BlockFloorplan::bank_cell(
    std::size_t unit, std::size_t bank) const {
  require(unit < units_, "BlockFloorplan::bank_cell: unit out of range");
  require(bank < banks_per_unit_,
          "BlockFloorplan::bank_cell: bank out of range");
  const std::size_t unit_r = unit / unit_cols_;
  const std::size_t unit_c = unit % unit_cols_;
  const std::size_t bank_r = bank / bank_cols_;
  const std::size_t bank_c = bank % bank_cols_;
  return {unit_r * bank_rows_ + bank_r, unit_c * bank_cols_ + bank_c};
}

std::pair<std::size_t, std::size_t> BlockFloorplan::cell_bank(
    std::size_t row, std::size_t col) const {
  require(row < grid_rows() && col < grid_cols(),
          "BlockFloorplan::cell_bank: cell out of range");
  const std::size_t unit_r = row / bank_rows_;
  const std::size_t unit_c = col / bank_cols_;
  const std::size_t unit = unit_r * unit_cols_ + unit_c;
  const std::size_t bank_r = row % bank_rows_;
  const std::size_t bank_c = col % bank_cols_;
  const std::size_t bank = bank_r * bank_cols_ + bank_c;
  return {unit, bank};
}

ThermalGrid BlockFloorplan::make_grid() const {
  GridConfig config;
  config.rows = grid_rows();
  config.cols = grid_cols();
  config.cell_pitch_um = bank_pitch_um_;
  config.ambient_k = ambient_k_;
  return ThermalGrid(config);
}

}  // namespace safelight::thermal
