// Thermal grid: discretized 2-D temperature/power field of the photonic die.
//
// Plays the role of the HotSpot tool [27] used for the paper's Fig. 6: a
// steady-state heat-diffusion substrate at MR-bank granularity. Each cell
// represents one MR bank tile; hotspot HTs inject heater overdrive power
// into victim cells and the solver (thermal/solver.hpp) produces the
// temperature field, which Eq. 2 converts into per-bank resonance shifts.
#pragma once

#include <cstddef>
#include <vector>

namespace safelight::thermal {

struct GridConfig {
  std::size_t rows = 0;
  std::size_t cols = 0;
  double cell_pitch_um = 60.0;  // physical pitch of one bank tile
  double ambient_k = 300.0;     // heat-sink / ambient temperature

  void validate() const;
  std::size_t cell_count() const { return rows * cols; }
};

class ThermalGrid {
 public:
  explicit ThermalGrid(const GridConfig& config);

  const GridConfig& config() const { return config_; }
  std::size_t rows() const { return config_.rows; }
  std::size_t cols() const { return config_.cols; }

  /// Injected power [mW] at a cell (accumulates).
  void add_power_mw(std::size_t row, std::size_t col, double power_mw);
  double power_mw(std::size_t row, std::size_t col) const;
  void clear_power();
  double total_power_mw() const;

  /// Temperature [K]; defaults to ambient until a solver writes the field.
  double temperature_k(std::size_t row, std::size_t col) const;
  void set_temperature_k(std::size_t row, std::size_t col, double kelvin);

  /// Temperature rise over ambient [K].
  double delta_t(std::size_t row, std::size_t col) const;

  double max_temperature_k() const;

  const std::vector<double>& temperatures() const { return temp_k_; }
  const std::vector<double>& powers() const { return power_mw_; }

 private:
  std::size_t index(std::size_t row, std::size_t col) const;

  GridConfig config_;
  std::vector<double> power_mw_;
  std::vector<double> temp_k_;
};

}  // namespace safelight::thermal
