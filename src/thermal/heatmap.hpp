// Heatmap rendering for the Fig. 6 reproduction.
#pragma once

#include <string>

#include "thermal/grid.hpp"

namespace safelight::thermal {

/// Renders the temperature field as an ASCII heatmap (one glyph per cell,
/// ramp ' .:-=+*#%@' from ambient to max). Includes a scale legend.
std::string render_ascii_heatmap(const ThermalGrid& grid);

/// Writes the temperature field to CSV: header row "col0..colN", one data
/// row per grid row. Throws std::runtime_error on I/O failure.
void write_heatmap_csv(const ThermalGrid& grid, const std::string& path);

}  // namespace safelight::thermal
