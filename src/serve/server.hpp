// The `safelight serve` daemon: HTTP front end over the SlotManager.
//
// Endpoint table (docs/architecture.md "Serving" has the full contract):
//
//   POST   /v1/jobs             submit an ExperimentSpec JSON -> 202 + job
//                               id (400 bad spec, 429 queue full, 503
//                               draining)
//   GET    /v1/jobs             queue state: slots, queue, every job
//   GET    /v1/jobs/<id>        one job's status document
//   GET    /v1/jobs/<id>/events NDJSON progress stream until the terminal
//                               event (the "result" event carries the full
//                               result document)
//   GET    /v1/jobs/<id>/result the raw ExperimentResult::to_json() bytes
//                               (409 until the job is done)
//   DELETE /v1/jobs/<id>        cooperative cancel
//   GET    /metrics             safelight.metrics.v1 registry snapshot
//   GET    /healthz             liveness + slot occupancy
//
// Threading: the serve loop accepts on one thread and hands each
// connection to a short-lived handler thread; handler count is tracked so
// drain can wait for them. Shutdown: the CLI's ScopedCancelScope flips the
// stop flag on SIGINT/SIGTERM, the accept loop notices within one poll
// interval, admission stops, running slots are cancelled, stores flush (a
// ResultStore flushes on every put), and serve() returns 130.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/http.hpp"
#include "serve/slot_manager.hpp"

namespace safelight::serve {

struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (tests, CI smoke).
  std::uint16_t port = 8080;
  std::size_t slots = 2;
  std::size_t queue_depth = 4;
  /// Per-slot store root; empty = "<zoo>/serve".
  std::string root_dir;
  /// Shared zoo directory; empty = config::zoo_dir().
  std::string zoo_dir;
  /// Stop flag polled by the serve loop (the CLI wires its SIGINT/SIGTERM
  /// cancellation flag here). nullptr = run until the process dies.
  const std::atomic<bool>* stop = nullptr;
  bool verbose = false;
};

class Server {
 public:
  /// Binds the listener and starts the slot threads; throws
  /// std::runtime_error when the port cannot be bound.
  explicit Server(const ServeOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0).
  std::uint16_t port() const { return listener_.port(); }

  SlotManager& manager() { return manager_; }

  /// Accept loop: serves until the stop flag flips, then drains (stop
  /// admission, cancel running slots, join handlers) and returns 130 —
  /// the same interrupted-run code the CLI uses for SIGINT.
  int serve();

  /// Handles one accepted connection fd (exposed for tests that inject
  /// connections without the accept loop). Blocking; streaming requests
  /// return when the job ends or the peer disconnects.
  void handle_connection(int fd);

 private:
  void handle_request(HttpConnection& connection, const HttpRequest& request);
  void handle_submit(HttpConnection& connection, const HttpRequest& request);
  void handle_jobs_index(HttpConnection& connection);
  void handle_job_status(HttpConnection& connection, const Job& job);
  void handle_events_stream(HttpConnection& connection, const Job& job);
  void handle_result(HttpConnection& connection, const Job& job);
  void handle_cancel(HttpConnection& connection, const std::string& id);
  void handle_metrics(HttpConnection& connection);
  void handle_healthz(HttpConnection& connection);
  bool write_error(HttpConnection& connection, int status,
                   const std::string& message,
                   const std::string& extra_header = "");

  ServeOptions options_;
  SlotManager manager_;
  HttpListener listener_;
  std::atomic<std::size_t> active_handlers_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace safelight::serve
