// Per-job state and per-slot execution of the `safelight serve` daemon.
//
// Modeled on llama.rn's slot architecture (rn-slot.cpp): a Slot owns the
// resources of one concurrent experiment — its result-store directory and
// the job currently bound to it — while the SlotManager schedules jobs onto
// slots. A Job carries everything one submitted experiment accumulates:
// the parsed spec, a monotonically growing NDJSON event log (progress
// streamed to any number of watchers), the cooperative cancel flag wired
// into RunContext, and the final result payload.
//
// Event shapes follow the dist-protocol convention (one compact JSON
// object per line, a "type" discriminator first):
//
//   {"type":"queued","job":"j1","experiment":"susceptibility","position":0}
//   {"type":"running","job":"j1","slot":0}
//   {"type":"progress","job":"j1","stage":"susceptibility: sweep ..."}
//   {"type":"result","job":"j1","wall_seconds":1.5,"result":"<the full
//    ExperimentResult::to_json() document, JSON-escaped>"}
//   {"type":"failed","job":"j1","message":"..."}
//   {"type":"cancelled","job":"j1"}
//
// The "result" field carries the exact bytes `safelight run --json` would
// write for the same spec (byte-identity is a serve ctest assertion); the
// raw document is also served unescaped at GET /v1/jobs/<id>/result.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace safelight::serve {

/// Job lifecycle. Queued and running are live; done/failed/cancelled are
/// terminal (the event stream ends once a terminal event is appended).
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

std::string to_string(JobState state);

/// One submitted experiment. Thread-safe: the slot thread appends events
/// and flips the state, any number of HTTP streaming handlers wait on the
/// condition variable and read events by index.
class Job {
 public:
  Job(std::string id, core::ExperimentSpec spec);

  const std::string& id() const { return id_; }
  const core::ExperimentSpec& spec() const { return spec_; }

  JobState state() const;
  /// Slot index while running (or after completion); -1 while queued.
  int slot() const;
  double wall_seconds() const;
  /// Final ExperimentResult::to_json() bytes; empty until kDone.
  std::string result_json() const;
  /// Failure message; empty unless kFailed.
  std::string error() const;

  /// Cooperative cancellation flag, wired into RunContext.cancel by the
  /// slot thread. Setting it is a request; the terminal state lands when
  /// the sweep actually aborts between work units.
  std::atomic<bool>& cancel_flag() { return cancel_; }
  bool cancel_requested() const { return cancel_.load(); }

  bool terminal() const;

  /// Appends one NDJSON event line (with trailing '\n') and wakes waiters.
  void push_event(const std::string& line);

  /// Events [from, size()): returns the next batch, blocking up to
  /// `timeout_ms` when `from` is at the end and the job is not terminal.
  /// An empty return with terminal() true means the stream is complete.
  std::vector<std::string> wait_events(std::size_t from, int timeout_ms) const;

  /// Slot-thread transitions (each appends the corresponding event).
  void mark_running(int slot);
  void mark_done(double wall_seconds, std::string result_json);
  void mark_failed(const std::string& message);
  void mark_cancelled();

 private:
  void push_event_locked(const std::string& line);

  const std::string id_;
  const core::ExperimentSpec spec_;
  std::atomic<bool> cancel_{false};

  mutable std::mutex mutex_;
  mutable std::condition_variable events_cv_;
  JobState state_ = JobState::kQueued;
  int slot_ = -1;
  double wall_seconds_ = 0.0;
  std::string result_json_;
  std::string error_;
  std::vector<std::string> events_;
};

/// One concurrent experiment slot: a stable index, its own result-store
/// directory (two slots running the same spec must never contend on one
/// store's writer lock), and the run loop body executing a job against the
/// shared zoo.
class Slot {
 public:
  Slot(int index, std::string store_dir);

  int index() const { return index_; }
  const std::string& store_dir() const { return store_dir_; }
  std::size_t jobs_run() const { return jobs_run_.load(); }

  /// Runs `job` to a terminal state: binds the spec to this slot's store
  /// dir, wires progress/cancel into a RunContext over `zoo`, executes
  /// through the global ExperimentRegistry and appends the terminal event.
  /// Never throws — failures land in the job as kFailed.
  void run(Job& job, core::ModelZoo& zoo);

 private:
  const int index_;
  const std::string store_dir_;
  std::atomic<std::size_t> jobs_run_{0};
};

/// Event-line encoders (exposed for tests; all end with '\n').
std::string encode_queued_event(const Job& job, std::size_t position);
std::string encode_running_event(const Job& job, int slot);
std::string encode_progress_event(const Job& job, const std::string& stage);
std::string encode_result_event(const Job& job, double wall_seconds,
                                const std::string& result_json);
std::string encode_failed_event(const Job& job, const std::string& message);
std::string encode_cancelled_event(const Job& job);

}  // namespace safelight::serve
