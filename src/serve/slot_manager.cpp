#include "serve/slot_manager.hpp"

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"

namespace safelight::serve {

namespace {

metrics::Counter& submitted_counter() {
  static metrics::Counter& c = metrics::counter("serve.jobs.submitted");
  return c;
}
metrics::Counter& rejected_counter() {
  static metrics::Counter& c = metrics::counter("serve.jobs.rejected");
  return c;
}
metrics::Gauge& queue_gauge() {
  static metrics::Gauge& g = metrics::gauge("serve.queue.depth");
  return g;
}
metrics::Gauge& busy_gauge() {
  static metrics::Gauge& g = metrics::gauge("serve.slots.busy");
  return g;
}

}  // namespace

SlotManager::SlotManager(const SlotManagerOptions& options)
    : options_(options),
      zoo_(options.zoo_dir.empty() ? config::zoo_dir() : options.zoo_dir) {
  const std::string root =
      options_.root_dir.empty() ? zoo_.directory() + "/serve" :
                                  options_.root_dir;
  const std::size_t slot_count = options_.slots == 0 ? 1 : options_.slots;
  slots_.reserve(slot_count);
  threads_.reserve(slot_count);
  for (std::size_t i = 0; i < slot_count; ++i) {
    slots_.push_back(std::make_unique<Slot>(
        static_cast<int>(i), root + "/slot" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < slot_count; ++i) {
    threads_.emplace_back([this, i] { slot_loop(i); });
  }
}

SlotManager::~SlotManager() { drain(); }

std::shared_ptr<Job> SlotManager::submit(const core::ExperimentSpec& spec) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (draining_.load()) {
    rejected_counter().add();
    throw AdmissionError(503, "serve: draining, no new jobs admitted");
  }
  // Admission: the queue bounds *waiting* jobs only — a job headed straight
  // for a free slot never counts against the depth.
  if (busy_ >= slots_.size() && queue_.size() >= options_.queue_depth) {
    rejected_counter().add();
    throw AdmissionError(
        429, "serve: all " + std::to_string(slots_.size()) +
                 " slot(s) busy and the queue is full (" +
                 std::to_string(options_.queue_depth) +
                 " waiting); retry later");
  }
  std::string id = "j";  // two-step append: GCC 12's -Wrestrict misfires on
  id += std::to_string(next_id_++);  // `"j" + std::to_string(...)` here
  auto job = std::make_shared<Job>(std::move(id), spec);
  job->push_event(encode_queued_event(*job, queue_.size()));
  jobs_.push_back(job);
  queue_.push_back(job);
  submitted_counter().add();
  queue_gauge().set(static_cast<double>(queue_.size()));
  lock.unlock();
  work_cv_.notify_one();
  return job;
}

std::shared_ptr<Job> SlotManager::find(const std::string& id) const {
  std::lock_guard<std::mutex> guard(mutex_);
  for (const auto& job : jobs_) {
    if (job->id() == id) return job;
  }
  return nullptr;
}

std::vector<std::shared_ptr<Job>> SlotManager::jobs() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return jobs_;
}

bool SlotManager::cancel(const std::string& id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto& candidate : jobs_) {
      if (candidate->id() == id) {
        job = candidate;
        break;
      }
    }
    if (job == nullptr) return false;
    // A queued job terminalizes right here — it never reaches a slot.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->id() == id) {
        queue_.erase(it);
        queue_gauge().set(static_cast<double>(queue_.size()));
        job->mark_cancelled();
        static metrics::Counter& cancelled =
            metrics::counter("serve.jobs.cancelled");
        cancelled.add();
        return true;
      }
    }
  }
  // Running (or already terminal): request cooperative cancellation; the
  // slot thread terminalizes the job when the sweep aborts.
  job->cancel_flag().store(true);
  return true;
}

std::size_t SlotManager::busy_slots() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return busy_;
}

std::size_t SlotManager::queued_jobs() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return queue_.size();
}

void SlotManager::slot_loop(std::size_t slot_index) {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
      ++busy_;
      queue_gauge().set(static_cast<double>(queue_.size()));
      busy_gauge().set(static_cast<double>(busy_));
    }
    slots_[slot_index]->run(*job, zoo_);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      --busy_;
      busy_gauge().set(static_cast<double>(busy_));
    }
  }
}

void SlotManager::drain() {
  std::vector<std::shared_ptr<Job>> to_cancel;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (stop_) return;  // second drain (destructor after explicit drain)
    draining_.store(true);
    stop_ = true;
    // Queued jobs terminalize now; running ones get the cooperative flag
    // and finish (cancelled) inside their slot thread before the join.
    while (!queue_.empty()) {
      queue_.front()->mark_cancelled();
      queue_.pop_front();
    }
    queue_gauge().set(0.0);
    for (const auto& job : jobs_) {
      if (!job->terminal()) to_cancel.push_back(job);
    }
  }
  for (const auto& job : to_cancel) job->cancel_flag().store(true);
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  log::info("serve", "drained: %zu job(s) total, %zu slot(s)", jobs().size(),
            slots_.size());
}

}  // namespace safelight::serve
