#include "serve/slot.hpp"

#include <chrono>
#include <filesystem>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace safelight::serve {

std::string to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Event encoders — dist-protocol style: one compact JSON object per line,
// "type" first so a reader can dispatch before decoding the rest.
// ---------------------------------------------------------------------------

namespace {

JsonWriter event_writer(const char* type, const Job& job) {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("type").value(type);
  json.key("job").value(job.id());
  return json;
}

std::string finish(JsonWriter&& json) {
  json.end_object();
  return std::move(json).str();  // str() ends with the NDJSON newline
}

}  // namespace

std::string encode_queued_event(const Job& job, std::size_t position) {
  JsonWriter json = event_writer("queued", job);
  json.key("experiment").value(job.spec().experiment);
  json.key("model").value(nn::to_string(job.spec().model));
  json.key("position").value(static_cast<std::uint64_t>(position));
  return finish(std::move(json));
}

std::string encode_running_event(const Job& job, int slot) {
  JsonWriter json = event_writer("running", job);
  json.key("slot").value(static_cast<std::int64_t>(slot));
  return finish(std::move(json));
}

std::string encode_progress_event(const Job& job, const std::string& stage) {
  JsonWriter json = event_writer("progress", job);
  json.key("stage").value(stage);
  return finish(std::move(json));
}

std::string encode_result_event(const Job& job, double wall_seconds,
                                const std::string& result_json) {
  JsonWriter json = event_writer("result", job);
  json.key("wall_seconds").value(wall_seconds, 3);
  json.key("result").value(result_json);
  return finish(std::move(json));
}

std::string encode_failed_event(const Job& job, const std::string& message) {
  JsonWriter json = event_writer("failed", job);
  json.key("message").value(message);
  return finish(std::move(json));
}

std::string encode_cancelled_event(const Job& job) {
  return finish(event_writer("cancelled", job));
}

// ---------------------------------------------------------------------------
// Job
// ---------------------------------------------------------------------------

Job::Job(std::string id, core::ExperimentSpec spec)
    : id_(std::move(id)), spec_(std::move(spec)) {}

JobState Job::state() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return state_;
}

int Job::slot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return slot_;
}

double Job::wall_seconds() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return wall_seconds_;
}

std::string Job::result_json() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return result_json_;
}

std::string Job::error() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return error_;
}

bool Job::terminal() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return state_ == JobState::kDone || state_ == JobState::kFailed ||
         state_ == JobState::kCancelled;
}

void Job::push_event(const std::string& line) {
  std::lock_guard<std::mutex> guard(mutex_);
  push_event_locked(line);
}

void Job::push_event_locked(const std::string& line) {
  events_.push_back(line);
  events_cv_.notify_all();
}

std::vector<std::string> Job::wait_events(std::size_t from,
                                          int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (from >= events_.size() && state_ != JobState::kDone &&
      state_ != JobState::kFailed && state_ != JobState::kCancelled) {
    events_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return events_.size() > from; });
  }
  std::vector<std::string> batch;
  for (std::size_t i = from; i < events_.size(); ++i) {
    batch.push_back(events_[i]);
  }
  return batch;
}

void Job::mark_running(int slot) {
  std::lock_guard<std::mutex> guard(mutex_);
  state_ = JobState::kRunning;
  slot_ = slot;
  push_event_locked(encode_running_event(*this, slot));
}

void Job::mark_done(double wall_seconds, std::string result_json) {
  std::lock_guard<std::mutex> guard(mutex_);
  state_ = JobState::kDone;
  wall_seconds_ = wall_seconds;
  result_json_ = std::move(result_json);
  push_event_locked(encode_result_event(*this, wall_seconds, result_json_));
}

void Job::mark_failed(const std::string& message) {
  std::lock_guard<std::mutex> guard(mutex_);
  state_ = JobState::kFailed;
  error_ = message;
  push_event_locked(encode_failed_event(*this, message));
}

void Job::mark_cancelled() {
  std::lock_guard<std::mutex> guard(mutex_);
  state_ = JobState::kCancelled;
  push_event_locked(encode_cancelled_event(*this));
}

// ---------------------------------------------------------------------------
// Slot
// ---------------------------------------------------------------------------

Slot::Slot(int index, std::string store_dir)
    : index_(index), store_dir_(std::move(store_dir)) {
  std::filesystem::create_directories(store_dir_);
}

void Slot::run(Job& job, core::ModelZoo& zoo) {
  jobs_run_.fetch_add(1);
  job.mark_running(index_);

  // Per-slot store binding is the multi-tenant isolation seam: the spec's
  // cache_dir points at this slot's directory, so two slots running the
  // same (experiment, scale) never contend on one store's writer lock and
  // can never interleave rows in one file. The zoo stays shared (train-once
  // under ModelZoo's entry locks).
  core::ExperimentSpec spec = job.spec();
  spec.cache_dir = store_dir_;

  core::RunContext context(zoo);
  context.cancel = &job.cancel_flag();
  context.progress = [&job](const std::string& stage) {
    job.push_event(encode_progress_event(job, stage));
  };

  static metrics::Counter& completed = metrics::counter("serve.jobs.completed");
  static metrics::Counter& failed = metrics::counter("serve.jobs.failed");
  static metrics::Counter& cancelled = metrics::counter("serve.jobs.cancelled");
  static metrics::Histogram& wall =
      metrics::histogram("serve.job.wall_seconds");

  trace::Span span("serve", "serve.job");
  span.arg("job", job.id())
      .arg("experiment", spec.experiment)
      .arg("model", nn::to_string(spec.model))
      .arg("slot", static_cast<double>(index_));

  try {
    const core::ExperimentResult result =
        core::ExperimentRegistry::global().run(spec, context);
    span.arg("wall_seconds", result.wall_seconds);
    wall.record(result.wall_seconds);
    completed.add();
    job.mark_done(result.wall_seconds, result.to_json());
  } catch (const core::ExperimentCancelled&) {
    span.arg("outcome", "cancelled");
    cancelled.add();
    job.mark_cancelled();
  } catch (const std::exception& error) {
    span.arg("outcome", "failed");
    failed.add();
    log::warn("serve", "job %s failed: %s", job.id().c_str(), error.what());
    job.mark_failed(error.what());
  }
}

}  // namespace safelight::serve
