#include "serve/http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"

namespace safelight::serve {

namespace {

constexpr std::size_t kMaxHeadBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

std::string lowercase(std::string text) {
  for (char& c : text) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return text;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

std::string HttpRequest::header(const std::string& lower_name) const {
  const auto it = headers.find(lower_name);
  return it == headers.end() ? "" : it->second;
}

std::string status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpRequest parse_request_head(const std::string& head) {
  HttpRequest request;
  std::size_t pos = 0;
  const auto next_line = [&]() -> std::optional<std::string> {
    if (pos >= head.size()) return std::nullopt;
    const std::size_t eol = head.find('\n', pos);
    std::string line = head.substr(pos, eol == std::string::npos
                                            ? std::string::npos
                                            : eol - pos);
    pos = eol == std::string::npos ? head.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  };

  const auto request_line = next_line();
  if (!request_line || request_line->empty()) {
    throw HttpError(400, "empty request line");
  }
  const std::size_t sp1 = request_line->find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line->find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line->find(' ', sp2 + 1) != std::string::npos) {
    throw HttpError(400, "malformed request line '" + *request_line + "'");
  }
  request.method = request_line->substr(0, sp1);
  request.target = request_line->substr(sp1 + 1, sp2 - sp1 - 1);
  request.version = request_line->substr(sp2 + 1);
  if (request.method.empty() || request.target.empty() ||
      request.version.rfind("HTTP/", 0) != 0) {
    throw HttpError(400, "malformed request line '" + *request_line + "'");
  }

  while (const auto line = next_line()) {
    if (line->empty()) break;  // blank line = end of head
    const std::size_t colon = line->find(':');
    if (colon == std::string::npos || colon == 0) {
      throw HttpError(400, "malformed header line '" + *line + "'");
    }
    request.headers[lowercase(trim(line->substr(0, colon)))] =
        trim(line->substr(colon + 1));
  }
  return request;
}

// ---------------------------------------------------------------------------
// HttpConnection
// ---------------------------------------------------------------------------

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

HttpConnection::HttpConnection(HttpConnection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

std::optional<HttpRequest> HttpConnection::read_request() {
  // Accumulate until the head terminator; the buffer may already hold bytes
  // from a previous read on a keep-alive-ish client.
  std::size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (buffer_.size() > kMaxHeadBytes) {
      throw HttpError(431, "request head exceeds " +
                               std::to_string(kMaxHeadBytes) + " bytes");
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      throw HttpError(400, "recv failed: " + std::string(strerror(errno)));
    }
    if (n == 0) {
      if (buffer_.empty()) return std::nullopt;  // clean peer close
      throw HttpError(400, "connection closed mid-request");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }

  HttpRequest request = parse_request_head(buffer_.substr(0, head_end + 2));
  buffer_.erase(0, head_end + 4);

  const std::string length_text = request.header("content-length");
  if (!length_text.empty()) {
    const bool digits_only =
        length_text.find_first_not_of("0123456789") == std::string::npos &&
        length_text.size() <= 9;
    if (!digits_only) {
      throw HttpError(400, "bad Content-Length '" + length_text + "'");
    }
    const std::size_t length = std::stoul(length_text);
    if (length > kMaxBodyBytes) {
      throw HttpError(413, "request body exceeds " +
                               std::to_string(kMaxBodyBytes) + " bytes");
    }
    while (buffer_.size() < length) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) throw HttpError(400, "connection closed mid-body");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    request.body = buffer_.substr(0, length);
    buffer_.erase(0, length);
  }
  return request;
}

bool HttpConnection::send_all(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;  // peer went away; the caller stops streaming
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool HttpConnection::write_response(int status,
                                    const std::string& content_type,
                                    const std::string& body,
                                    const std::string& extra_header) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     status_reason(status) + "\r\n";
  head += "Content-Type: " + content_type + "\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!extra_header.empty()) head += extra_header + "\r\n";
  head += "Connection: close\r\n\r\n";
  return send_all(head.data(), head.size()) &&
         send_all(body.data(), body.size());
}

bool HttpConnection::begin_stream(int status,
                                  const std::string& content_type) {
  const std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                           status_reason(status) +
                           "\r\nContent-Type: " + content_type +
                           "\r\nConnection: close\r\n\r\n";
  return send_all(head.data(), head.size());
}

bool HttpConnection::stream_write(const std::string& chunk) {
  return send_all(chunk.data(), chunk.size());
}

bool HttpConnection::peer_alive() const {
  struct pollfd probe = {fd_, POLLIN, 0};
  if (::poll(&probe, 1, 0) <= 0) return true;  // nothing readable: alive
  if ((probe.revents & (POLLHUP | POLLERR)) != 0) return false;
  // Readable: distinguish pipelined bytes from EOF without consuming.
  char byte;
  const ssize_t n = ::recv(fd_, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  return n != 0;
}

// ---------------------------------------------------------------------------
// HttpListener
// ---------------------------------------------------------------------------

HttpListener::HttpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = "serve: cannot bind 127.0.0.1:" +
                             std::to_string(port) + " (" + strerror(errno) +
                             ")";
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(what);
  }
  if (::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
}

HttpListener::~HttpListener() { close(); }

int HttpListener::accept_once(int timeout_ms) {
  if (fd_ < 0) return -1;
  struct pollfd waiter = {fd_, POLLIN, 0};
  const int ready = ::poll(&waiter, 1, timeout_ms);
  if (ready <= 0) return -1;
  return ::accept(fd_, nullptr, nullptr);
}

void HttpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace safelight::serve
