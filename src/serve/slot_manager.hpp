// Slot-based admission and scheduling of the `safelight serve` daemon.
//
// Modeled on llama.rn's rn-slot-manager.cpp: a fixed pool of N experiment
// slots (each a worker thread bound to one Slot), a FIFO queue with a
// bounded depth in front of them, and a drain path that turns the whole
// thing off without corrupting any tenant's results.
//
// Admission rules (the backpressure contract, tested in serve_test):
//   * a slot is free           -> the job starts immediately;
//   * all slots busy, queue
//     has room                 -> the job waits FIFO;
//   * queue full               -> AdmissionError 429 ("try again later"),
//                                 the job is never created;
//   * draining                 -> AdmissionError 503 (no new work during
//                                 shutdown).
//
// Cancellation is cooperative end to end: DELETE on a queued job removes it
// from the queue and terminalizes it directly; on a running job it sets the
// job's cancel flag, which RunContext polls between coarse work units —
// exactly the seam SIGINT uses in the CLI.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/zoo.hpp"
#include "serve/slot.hpp"

namespace safelight::serve {

/// Thrown by submit(); `status` is the HTTP answer (429 queue full,
/// 503 draining).
class AdmissionError : public std::runtime_error {
 public:
  AdmissionError(int status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  int status() const { return status_; }

 private:
  int status_;
};

struct SlotManagerOptions {
  std::size_t slots = 2;
  /// Jobs allowed to wait beyond the running ones; 0 means "no queue"
  /// (admission only while a slot is free).
  std::size_t queue_depth = 4;
  /// Root of the per-slot result-store directories (<root>/slot<i>).
  std::string root_dir;
  /// Shared model zoo directory (empty = config::zoo_dir()).
  std::string zoo_dir;
};

class SlotManager {
 public:
  explicit SlotManager(const SlotManagerOptions& options);
  ~SlotManager();
  SlotManager(const SlotManager&) = delete;
  SlotManager& operator=(const SlotManager&) = delete;

  /// Admits a validated spec: assigns a job id, appends the queued event
  /// and wakes a slot thread. Throws AdmissionError (429/503) per the
  /// admission rules above. The spec must already be validate()d — the
  /// HTTP layer rejects malformed specs with 400 before admission.
  std::shared_ptr<Job> submit(const core::ExperimentSpec& spec);

  /// Job by id; nullptr when unknown.
  std::shared_ptr<Job> find(const std::string& id) const;

  /// All jobs in submission order (live and terminal).
  std::vector<std::shared_ptr<Job>> jobs() const;

  /// Cancels a job: a queued one terminalizes immediately, a running one
  /// gets its cancel flag set. Returns false for unknown ids; a terminal
  /// job returns true without effect (idempotent DELETE).
  bool cancel(const std::string& id);

  std::size_t slot_count() const { return slots_.size(); }
  std::size_t queue_depth() const { return options_.queue_depth; }
  std::size_t busy_slots() const;
  std::size_t queued_jobs() const;
  bool draining() const { return draining_.load(); }

  core::ModelZoo& zoo() { return zoo_; }

  /// Graceful drain: stops admission (503), cancels every queued job,
  /// requests cancellation of every running job, then joins the slot
  /// threads. Idempotent; called by the server on SIGINT/SIGTERM.
  void drain();

 private:
  void slot_loop(std::size_t slot_index);

  const SlotManagerOptions options_;
  core::ModelZoo zoo_;
  std::vector<std::unique_ptr<Slot>> slots_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> queue_;           // waiting jobs, FIFO
  std::vector<std::shared_ptr<Job>> jobs_;           // all jobs, submit order
  std::size_t busy_ = 0;                             // slots running a job
  std::uint64_t next_id_ = 1;
  std::atomic<bool> draining_{false};
  bool stop_ = false;                                // joins the slot loops

  std::vector<std::thread> threads_;
};

}  // namespace safelight::serve
