// Minimal HTTP/1.1 layer of the `safelight serve` daemon.
//
// The serving front end needs exactly four things from HTTP: parse one
// request (line + headers + Content-Length body), write one complete
// response, write an unbounded NDJSON stream (progress events flushed line
// by line until the job ends), and accept connections until told to drain.
// This module provides those four on raw POSIX sockets — no third-party
// dependency, same policy as the dist layer's hand-rolled NDJSON protocol.
//
// Strictness follows the house rule: a malformed request line, an
// oversized head/body or a bad Content-Length throws HttpError with the
// status code the handler should answer with (400/413/431), never a silent
// best-effort parse. Parsing is exposed as a pure function over the raw
// head bytes (parse_request_head) so tests cover it without sockets.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace safelight::serve {

/// Thrown by request reading/parsing; `status` is the HTTP answer the
/// connection should send (400 malformed, 413 body too large, 431 head too
/// large).
class HttpError : public std::runtime_error {
 public:
  HttpError(int status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  int status() const { return status_; }

 private:
  int status_;
};

/// One parsed request. Header names are lower-cased (HTTP headers are
/// case-insensitive); values keep their bytes with surrounding whitespace
/// trimmed.
struct HttpRequest {
  std::string method;   // "GET", "POST", "DELETE", ...
  std::string target;   // origin-form path, e.g. "/v1/jobs/j1/events"
  std::string version;  // "HTTP/1.1"
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header value, or "" when absent (names are stored lower-cased).
  std::string header(const std::string& lower_name) const;
};

/// Canonical reason phrase of the status codes the daemon emits; "Unknown"
/// otherwise.
std::string status_reason(int status);

/// Parses the request head — everything before the blank line, without the
/// body — into method/target/version/headers. Throws HttpError(400) on a
/// malformed request line or header.
HttpRequest parse_request_head(const std::string& head);

/// One accepted connection; owns the fd and closes it on destruction.
/// Writes use MSG_NOSIGNAL so a client that went away surfaces as a false
/// return, never as SIGPIPE.
class HttpConnection {
 public:
  explicit HttpConnection(int fd) : fd_(fd) {}
  ~HttpConnection();
  HttpConnection(HttpConnection&& other) noexcept;
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Reads one full request (head + Content-Length body). Returns nullopt
  /// when the peer closed before sending anything; throws HttpError on a
  /// malformed or oversized request (caps: 64 KiB head, 1 MiB body).
  std::optional<HttpRequest> read_request();

  /// Writes one complete response with Content-Length and
  /// "Connection: close". Returns false when the peer is gone.
  bool write_response(int status, const std::string& content_type,
                      const std::string& body,
                      const std::string& extra_header = "");

  /// Starts a close-delimited streaming response (no Content-Length; the
  /// stream ends when the connection closes). Follow with stream_write.
  bool begin_stream(int status, const std::string& content_type);

  /// Writes one chunk of an active stream; false when the peer is gone.
  bool stream_write(const std::string& chunk);

  /// True while the peer has not closed its end (poll + MSG_PEEK probe);
  /// lets a streaming handler stop waiting on events nobody will read.
  bool peer_alive() const;

  int fd() const { return fd_; }

 private:
  bool send_all(const char* data, std::size_t size);

  int fd_ = -1;
  std::string buffer_;  // bytes read past the current request
};

/// Listening socket bound to 127.0.0.1. Port 0 binds an ephemeral port;
/// port() reports the actual one. Construction throws std::runtime_error
/// when the bind fails (port taken, privileged port).
class HttpListener {
 public:
  explicit HttpListener(std::uint16_t port);
  ~HttpListener();
  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection; returns the accepted fd or
  /// -1 on timeout (the serve loop's drain-poll cadence).
  int accept_once(int timeout_ms);

  /// Closes the listening socket (no further accepts; in-flight
  /// connections are unaffected).
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace safelight::serve
