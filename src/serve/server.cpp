#include "serve/server.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace safelight::serve {

namespace {

/// Splits "/v1/jobs/j1/events" into path segments without empty entries.
std::vector<std::string> split_path(const std::string& target) {
  std::vector<std::string> segments;
  std::size_t pos = 0;
  // Strip a query string; no endpoint takes one, but a client sending
  // "?pretty" should not 404 on the base route.
  const std::size_t query = target.find('?');
  const std::string path =
      query == std::string::npos ? target : target.substr(0, query);
  while (pos < path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    if (end > pos) segments.push_back(path.substr(pos, end - pos));
    pos = end + 1;
  }
  return segments;
}

std::string job_status_json(const Job& job, bool compact) {
  JsonWriter json(compact);
  json.begin_object();
  json.key("job").value(job.id());
  json.key("experiment").value(job.spec().experiment);
  json.key("model").value(nn::to_string(job.spec().model));
  json.key("scale").value(safelight::to_string(job.spec().scale));
  json.key("state").value(to_string(job.state()));
  json.key("slot").value(static_cast<std::int64_t>(job.slot()));
  if (job.state() == JobState::kDone) {
    json.key("wall_seconds").value(job.wall_seconds(), 3);
  }
  if (job.state() == JobState::kFailed) {
    json.key("error").value(job.error());
  }
  json.key("events").value("/v1/jobs/" + job.id() + "/events");
  json.key("result").value("/v1/jobs/" + job.id() + "/result");
  json.end_object();
  return std::move(json).str();
}

}  // namespace

Server::Server(const ServeOptions& options)
    : options_(options),
      manager_([&] {
        SlotManagerOptions manager_options;
        manager_options.slots = options.slots;
        manager_options.queue_depth = options.queue_depth;
        manager_options.root_dir = options.root_dir;
        manager_options.zoo_dir = options.zoo_dir;
        return manager_options;
      }()),
      listener_(options.port) {}

Server::~Server() {
  stopping_.store(true);
  listener_.close();
  manager_.drain();
  // Handler threads are detached; they hold `this` only while running, so
  // wait for the count to hit zero before the members go away.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (active_handlers_.load() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

int Server::serve() {
  std::printf("[serve] listening on 127.0.0.1:%u (slots=%zu queue=%zu zoo=%s)\n",
              static_cast<unsigned>(port()), manager_.slot_count(),
              manager_.queue_depth(), manager_.zoo().directory().c_str());
  std::fflush(stdout);

  static metrics::Counter& connections =
      metrics::counter("serve.http.connections");
  while (options_.stop == nullptr || !options_.stop->load()) {
    const int fd = listener_.accept_once(/*timeout_ms=*/200);
    if (fd < 0) continue;
    connections.add();
    active_handlers_.fetch_add(1);
    std::thread([this, fd] {
      handle_connection(fd);
      active_handlers_.fetch_sub(1);
    }).detach();
  }

  // Graceful drain: no new connections, no new admissions, running slots
  // cancelled cooperatively; streaming handlers end when their job
  // terminalizes. ResultStore flushes on every put, so nothing is lost.
  stopping_.store(true);
  listener_.close();
  manager_.drain();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (active_handlers_.load() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::printf("[serve] stopped (drained %zu slot(s))\n",
              manager_.slot_count());
  std::fflush(stdout);
  return 130;  // the conventional interrupted-run code, like the CLI
}

void Server::handle_connection(int fd) {
  HttpConnection connection(fd);
  static metrics::Counter& requests = metrics::counter("serve.http.requests");
  try {
    const auto request = connection.read_request();
    if (!request) return;  // peer connected and left
    requests.add();
    trace::Span span("serve", "http." + request->method);
    span.arg("target", request->target);
    handle_request(connection, *request);
  } catch (const HttpError& error) {
    write_error(connection, error.status(), error.what());
  } catch (const std::exception& error) {
    // A handler bug must answer 500, never tear down the daemon.
    log::warn("serve", "request handler failed: %s", error.what());
    write_error(connection, 500, error.what());
  }
}

void Server::handle_request(HttpConnection& connection,
                            const HttpRequest& request) {
  const std::vector<std::string> path = split_path(request.target);

  if (path.size() == 1 && path[0] == "healthz" && request.method == "GET") {
    handle_healthz(connection);
    return;
  }
  if (path.size() == 1 && path[0] == "metrics" && request.method == "GET") {
    handle_metrics(connection);
    return;
  }
  if (path.size() >= 2 && path[0] == "v1" && path[1] == "jobs") {
    if (path.size() == 2) {
      if (request.method == "POST") {
        handle_submit(connection, request);
      } else if (request.method == "GET") {
        handle_jobs_index(connection);
      } else {
        write_error(connection, 405,
                    "use POST (submit) or GET (list) on /v1/jobs");
      }
      return;
    }
    const std::string& id = path[2];
    if (path.size() == 3 && request.method == "DELETE") {
      handle_cancel(connection, id);
      return;
    }
    const std::shared_ptr<Job> job = manager_.find(id);
    if (job == nullptr) {
      write_error(connection, 404, "unknown job '" + id + "'");
      return;
    }
    if (path.size() == 3 && request.method == "GET") {
      handle_job_status(connection, *job);
      return;
    }
    if (path.size() == 4 && path[3] == "events" && request.method == "GET") {
      handle_events_stream(connection, *job);
      return;
    }
    if (path.size() == 4 && path[3] == "result" && request.method == "GET") {
      handle_result(connection, *job);
      return;
    }
  }
  write_error(connection, 404,
              "no route for " + request.method + " " + request.target);
}

void Server::handle_submit(HttpConnection& connection,
                           const HttpRequest& request) {
  core::ExperimentSpec spec;
  try {
    // Strict parse: unknown fields, type mismatches and invalid values all
    // reject here with the actionable message — the HTTP twin of the CLI's
    // exit-2 convention.
    spec = core::spec_from_json(request.body);
  } catch (const std::invalid_argument& error) {
    write_error(connection, 400, error.what());
    return;
  }
  try {
    const std::shared_ptr<Job> job = manager_.submit(spec);
    JsonWriter json;
    json.begin_object();
    json.key("job").value(job->id());
    json.key("status").value(to_string(job->state()));
    json.key("events").value("/v1/jobs/" + job->id() + "/events");
    json.key("result").value("/v1/jobs/" + job->id() + "/result");
    json.end_object();
    connection.write_response(202, "application/json",
                              std::move(json).str());
  } catch (const AdmissionError& error) {
    write_error(connection, error.status(), error.what(),
                error.status() == 429 ? "Retry-After: 1" : "");
  }
}

void Server::handle_jobs_index(HttpConnection& connection) {
  JsonWriter json;
  json.begin_object();
  json.key("slots").value(static_cast<std::uint64_t>(manager_.slot_count()));
  json.key("busy").value(static_cast<std::uint64_t>(manager_.busy_slots()));
  json.key("queue_depth")
      .value(static_cast<std::uint64_t>(manager_.queue_depth()));
  json.key("queued").value(static_cast<std::uint64_t>(manager_.queued_jobs()));
  json.key("draining").value(manager_.draining());
  json.key("jobs").begin_array();
  for (const auto& job : manager_.jobs()) {
    json.begin_object();
    json.key("job").value(job->id());
    json.key("experiment").value(job->spec().experiment);
    json.key("model").value(nn::to_string(job->spec().model));
    json.key("state").value(to_string(job->state()));
    json.key("slot").value(static_cast<std::int64_t>(job->slot()));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  connection.write_response(200, "application/json",
                            std::move(json).str());
}

void Server::handle_job_status(HttpConnection& connection, const Job& job) {
  connection.write_response(200, "application/json",
                            job_status_json(job, /*compact=*/false));
}

void Server::handle_events_stream(HttpConnection& connection, const Job& job) {
  if (!connection.begin_stream(200, "application/x-ndjson")) return;
  std::size_t index = 0;
  while (true) {
    const std::vector<std::string> batch =
        job.wait_events(index, /*timeout_ms=*/200);
    for (const std::string& line : batch) {
      if (!connection.stream_write(line)) return;  // watcher went away
    }
    index += batch.size();
    if (batch.empty()) {
      if (job.terminal()) return;  // every event delivered; stream complete
      if (!connection.peer_alive()) return;
    }
  }
}

void Server::handle_result(HttpConnection& connection, const Job& job) {
  const JobState state = job.state();
  if (state != JobState::kDone) {
    write_error(connection, 409,
                "job '" + job.id() + "' has no result (state: " +
                    to_string(state) + ")");
    return;
  }
  // The raw ExperimentResult::to_json() bytes — byte-identical to the
  // file `safelight run --json` writes for the same spec (ctest-pinned).
  connection.write_response(200, "application/json", job.result_json());
}

void Server::handle_cancel(HttpConnection& connection, const std::string& id) {
  if (!manager_.cancel(id)) {
    write_error(connection, 404, "unknown job '" + id + "'");
    return;
  }
  const std::shared_ptr<Job> job = manager_.find(id);
  JsonWriter json;
  json.begin_object();
  json.key("job").value(id);
  json.key("status").value(job->terminal() ? to_string(job->state())
                                           : "cancelling");
  json.end_object();
  connection.write_response(200, "application/json",
                            std::move(json).str());
}

void Server::handle_metrics(HttpConnection& connection) {
  connection.write_response(200, "application/json", metrics::to_json());
}

void Server::handle_healthz(HttpConnection& connection) {
  JsonWriter json;
  json.begin_object();
  json.key("status").value(manager_.draining() ? "draining" : "ok");
  json.key("slots").value(static_cast<std::uint64_t>(manager_.slot_count()));
  json.key("busy").value(static_cast<std::uint64_t>(manager_.busy_slots()));
  json.key("queued").value(static_cast<std::uint64_t>(manager_.queued_jobs()));
  json.end_object();
  connection.write_response(200, "application/json",
                            std::move(json).str());
}

bool Server::write_error(HttpConnection& connection, int status,
                         const std::string& message,
                         const std::string& extra_header) {
  JsonWriter json;
  json.begin_object();
  json.key("error").value(message);
  json.end_object();
  return connection.write_response(status, "application/json",
                                   std::move(json).str(), extra_header);
}

}  // namespace safelight::serve
