// Runtime attack detection walk-through.
//
// Deploys CNN_1 on the accelerator, calibrates the detector suite (canary
// probes, read-out range monitor, thermal sentinels) on the clean
// deployment, then checks it against a clean re-check and a 10 % hotspot
// attack — and finishes with a miniature detection sweep that reports each
// detector's false-positive rate and AUC.
//
// Usage: attack_detection [cnn1|resnet18|vgg16v] [seeds]
// Defaults: cnn1, 2 seeds, tiny scale (override with SAFELIGHT_SCALE).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "core/detection.hpp"
#include "core/report.hpp"
#include "nn/serialize.hpp"

namespace sl = safelight;

namespace {

void print_results(const std::vector<sl::defense::DetectionResult>& results) {
  sl::core::TextTable table({"detector", "score", "verdict", "latency"});
  for (const auto& r : results) {
    table.add_row({r.detector, sl::fmt_double(r.score, 4),
                   r.flagged ? "FLAGGED" : "clean",
                   r.flagged ? std::to_string(r.first_flag_probe) + "/" +
                                   std::to_string(r.probes) + " probes"
                             : "-"});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "cnn1";
  const std::size_t seeds =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  const sl::nn::ModelId id = sl::nn::model_id_from_string(model_name);
  const sl::Scale scale = sl::config::scale() == sl::Scale::kDefault
                              ? sl::Scale::kTiny  // examples stay fast
                              : sl::config::scale();
  const sl::core::ExperimentSetup setup = sl::core::experiment_setup(id, scale);

  std::printf("SafeLight attack detection: %s at %s scale\n",
              model_name.c_str(), sl::to_string(scale).c_str());

  // Deploy: train/load, condition onto the MR banks, snapshot clean state.
  sl::core::ModelZoo zoo;
  auto model = zoo.get_or_train(setup, sl::core::variant_by_name("Original"),
                                /*verbose=*/true);
  sl::accel::OnnExecutor executor(setup.accelerator);
  executor.condition_weights(*model);
  sl::accel::WeightStationaryMapping mapping(*model, setup.accelerator);
  const auto clean_snapshot = sl::nn::snapshot_state(*model);

  // Calibrate the suite on the known-good deployment.
  sl::defense::DetectorSuite suite(setup);
  suite.calibrate({*model, executor, nullptr, /*probe_seed=*/1});

  std::printf("\n== clean re-check ==\n");
  print_results(suite.check_all({*model, executor, nullptr, 2}));

  // Implant a 10 % hotspot attack and re-check.
  sl::attack::AttackScenario scenario;
  scenario.vector = sl::attack::AttackVector::kHotspot;
  scenario.target = sl::attack::AttackTarget::kBothBlocks;
  scenario.fraction = 0.10;
  scenario.seed = 1234;
  sl::attack::apply_attack(mapping, scenario, {});
  const auto telemetry =
      sl::defense::scenario_telemetry(setup.accelerator, scenario);

  std::printf("== under 10%% hotspot attack (%s) ==\n",
              scenario.id().c_str());
  print_results(suite.check_all({*model, executor, &telemetry, 3}));
  sl::nn::restore_state(*model, clean_snapshot);

  // Miniature detection sweep: clean runs + both vectors at 5 %/10 %.
  std::printf("== detection sweep (%zu placements per cell) ==\n", seeds);
  sl::core::DetectionOptions options;
  options.seed_count = seeds;
  options.clean_runs = 4;
  options.cache_dir = zoo.directory();
  const auto grid = sl::attack::scenario_grid(
      {sl::attack::AttackVector::kActuation,
       sl::attack::AttackVector::kHotspot},
      {sl::attack::AttackTarget::kBothBlocks}, {0.05, 0.10}, seeds);
  const sl::core::DetectionReport report = sl::core::run_detection_sweep(
      setup, zoo, sl::core::variant_by_name("Original"), grid, options);

  sl::core::TextTable table({"detector", "FPR", "TPR", "AUC"});
  for (const std::string& detector : report.detectors) {
    table.add_row({detector,
                   sl::core::pct(report.false_positive_rate(detector)),
                   sl::core::pct(report.true_positive_rate(detector)),
                   sl::fmt_double(report.auc(detector), 3)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
