// Adaptive attack campaign walk-through.
//
// Deploys CNN_1 on the accelerator, builds a two-component composite
// scenario (actuation trojans in the CONV block stacked with a thermal
// hotspot in the FC block, block-disjoint placement) and shows what it
// costs; then runs an evasive ramp campaign — the same composite starting
// far below the detector envelopes and escalating — through the campaign
// sweep, and reports per-detector evasion rate and detection latency.
//
// Usage: adaptive_attack [cnn1|resnet18|vgg16v]
// Defaults: cnn1, tiny scale (override with SAFELIGHT_SCALE).

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "core/campaign_eval.hpp"
#include "core/report.hpp"

namespace sl = safelight;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "cnn1";
  const sl::nn::ModelId id = sl::nn::model_id_from_string(model_name);
  const sl::Scale scale = sl::config::scale() == sl::Scale::kDefault
                              ? sl::Scale::kTiny  // examples stay fast
                              : sl::config::scale();
  const sl::core::ExperimentSetup setup = sl::core::experiment_setup(id, scale);

  std::printf("SafeLight adaptive attack campaign: %s at %s scale\n",
              model_name.c_str(), sl::to_string(scale).c_str());

  // The composite: full-strength actuation in CONV plus a hotspot in FC,
  // placed block-disjoint so no trojan is wasted on a shared victim.
  sl::attack::CompositeScenario composite;
  composite.placement = sl::attack::PlacementPolicy::kDisjointBlocks;
  composite.components.push_back({sl::attack::AttackVector::kActuation,
                                  sl::attack::AttackTarget::kConvBlock, 0.10,
                                  42});
  composite.components.push_back({sl::attack::AttackVector::kHotspot,
                                  sl::attack::AttackTarget::kFcBlock, 0.10,
                                  43});
  composite.validate();
  std::printf("\ncomposite: %s\n", composite.id().c_str());

  // The campaign: three dormant-opening checks, then the composite ramping
  // from 2 %% of its nominal intensity up to full strength.
  sl::attack::CampaignSchedule schedule = sl::attack::ramp_campaign(
      "walkthrough-ramp", composite, {0.02, 0.2, 1.0}, /*checks_per_phase=*/2);
  schedule.phases.insert(schedule.phases.begin(),
                         {"dormant", {}, /*checks=*/3});
  schedule.validate();
  std::printf("campaign:  %s (%zu phases, %zu checks)\n", schedule.id().c_str(),
              schedule.phases.size(), schedule.total_checks());

  sl::core::ModelZoo zoo;
  sl::core::CampaignOptions options;
  options.cache_dir = zoo.directory();
  const sl::core::CampaignSweepReport report = sl::core::run_campaign_sweep(
      setup, zoo, sl::core::variant_by_name("Original"), {schedule}, options);
  const sl::core::CampaignResult& result = report.campaigns.front();

  std::printf("\nbaseline accuracy: %s\n\n",
              sl::core::pct(result.baseline_accuracy).c_str());
  sl::core::TextTable phase_table(
      {"phase", "active", "accuracy", "drop", "flagged by"});
  for (std::size_t pi = 0; pi < result.phases.size(); ++pi) {
    const auto& phase = result.phases[pi];
    std::string flagged_by;
    for (const std::string& detector : result.detectors) {
      if (!result.phase_flagged(pi, detector)) continue;
      if (!flagged_by.empty()) flagged_by += ", ";
      flagged_by += detector;
    }
    phase_table.add_row({phase.name, phase.active ? "yes" : "-",
                         sl::core::pct(phase.accuracy),
                         sl::core::pct(result.accuracy_drop(pi)),
                         flagged_by.empty() ? "(evaded)" : flagged_by});
  }
  std::printf("%s\n", phase_table.render().c_str());

  sl::core::TextTable detector_table(
      {"detector", "evasion rate", "detection latency"});
  const bool has_active = schedule.active_phase_count() > 0;
  for (const std::string& detector : result.detectors) {
    const std::size_t latency = result.detection_latency_checks(detector);
    detector_table.add_row(
        {detector,
         has_active ? sl::core::pct(result.evasion_rate(detector)) : "-",
         latency == 0 ? "never" : std::to_string(latency) + " checks"});
  }
  std::printf("%s", detector_table.render().c_str());
  return 0;
}
