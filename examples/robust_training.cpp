// Mitigation demo (paper §V/§VI): trains the Original model and one
// L2 + noise-aware variant, then compares them under escalating hotspot
// attacks.
//
// Usage: robust_training [cnn1|resnet18|vgg16v] [variant]
// Default: cnn1 l2+n3 (the paper's most robust CNN_1 configuration).

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "core/evaluation.hpp"
#include "core/report.hpp"
#include "core/zoo.hpp"

namespace sl = safelight;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "cnn1";
  const std::string variant_name = argc > 2 ? argv[2] : "l2+n3";

  const sl::nn::ModelId id = sl::nn::model_id_from_string(model_name);
  const sl::Scale scale = sl::config::scale() == sl::Scale::kDefault
                              ? sl::Scale::kTiny
                              : sl::config::scale();
  const sl::core::ExperimentSetup setup = sl::core::experiment_setup(id, scale);

  sl::core::ModelZoo zoo;
  std::printf("SafeLight robust training: %s, variant %s (%s scale)\n",
              model_name.c_str(), variant_name.c_str(),
              sl::to_string(scale).c_str());

  auto original =
      zoo.get_or_train(setup, sl::core::variant_by_name("Original"), true);
  auto robust =
      zoo.get_or_train(setup, sl::core::variant_by_name(variant_name), true);

  sl::core::AttackEvaluator original_eval(setup, *original, "Original",
                                          zoo.directory());
  sl::core::AttackEvaluator robust_eval(setup, *robust, variant_name,
                                        zoo.directory());

  std::printf("\nbaselines: original %.2f%%, %s %.2f%%\n\n",
              original_eval.baseline_accuracy() * 100.0,
              variant_name.c_str(),
              robust_eval.baseline_accuracy() * 100.0);

  sl::core::TextTable table(
      {"attack", "fraction", "original", variant_name, "recovered"});
  for (auto vector : {sl::attack::AttackVector::kActuation,
                      sl::attack::AttackVector::kHotspot}) {
    for (double fraction : {0.01, 0.05, 0.10}) {
      sl::attack::AttackScenario scenario;
      scenario.vector = vector;
      scenario.target = sl::attack::AttackTarget::kBothBlocks;
      scenario.fraction = fraction;
      scenario.seed = 42;
      const double acc_original = original_eval.evaluate_scenario(scenario);
      const double acc_robust = robust_eval.evaluate_scenario(scenario);
      table.add_row({sl::attack::to_string(vector),
                     sl::core::pct(fraction),
                     sl::core::pct(acc_original),
                     sl::core::pct(acc_robust),
                     sl::core::signed_pct(acc_robust - acc_original)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
