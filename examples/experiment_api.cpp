// The unified experiment API (core/experiment.hpp) in ~60 lines:
// look up an experiment in the registry, build a validated spec, run it
// with a progress callback, and serialize the typed result to CSV + JSON.
//
// Usage: experiment_api [experiment] [model]
// Defaults: susceptibility, cnn1, tiny scale (override with SAFELIGHT_SCALE).
// `safelight list` prints the registered experiment names.

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "core/experiment.hpp"

namespace sl = safelight;

int main(int argc, char** argv) {
  const std::string experiment = argc > 1 ? argv[1] : "susceptibility";
  const std::string model_name = argc > 2 ? argv[2] : "cnn1";

  const auto& registry = sl::core::ExperimentRegistry::global();

  // 1. A spec pre-filled with the experiment's paper defaults; unknown
  //    experiment or model names throw with the valid names listed.
  sl::core::ExperimentSpec spec = registry.default_spec(experiment);
  spec.model = sl::nn::model_id_from_string(model_name);
  spec.scale = sl::config::scale() == sl::Scale::kDefault
                   ? sl::Scale::kTiny  // examples stay fast
                   : sl::config::scale();
  spec.seed_count = 2;
  spec.clean_runs = 3;  // detection only; other experiments ignore it

  // 2. A run context: the shared model zoo plus optional progress hook.
  sl::core::ModelZoo zoo;
  spec.cache_dir = zoo.directory();  // reuse results across runs
  sl::core::RunContext context(zoo);
  context.progress = [](const std::string& stage) {
    std::printf("  -> %s\n", stage.c_str());
  };

  // 3. Run. The registry validates the spec, dispatches, and stamps
  //    wall-clock timing; the result owns the typed report.
  std::printf("running '%s' on %s at %s scale...\n", experiment.c_str(),
              model_name.c_str(), sl::to_string(spec.scale).c_str());
  const sl::core::ExperimentResult result = registry.run(spec, context);
  std::printf("done in %.1f s\n\n", result.wall_seconds);

  // 4a. Uniform CSV serialization — the same documents `safelight run`
  //     and the per-figure bench binaries write.
  for (const sl::core::CsvDocument& doc : result.to_csv()) {
    std::printf("%s.csv: %zu column(s), %zu row(s)\n", doc.file_stem.c_str(),
                doc.header.size(), doc.rows.size());
  }

  // 4b. Uniform JSON serialization (deterministic; golden-pinned).
  const std::string json = result.to_json();
  std::printf("JSON document: %zu bytes\n", json.size());

  // 4c. Typed access when you know the experiment you asked for.
  if (experiment == "susceptibility") {
    const auto& report = result.as<sl::core::SusceptibilityReport>();
    std::printf("baseline accuracy: %.1f%%\n",
                report.baseline_accuracy * 100.0);
  }
  return 0;
}
