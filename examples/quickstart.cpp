// SafeLight quickstart: the attack mechanics of paper Figs. 1/4/5 on a
// single MR bank, followed by an end-to-end train -> attack -> measure run
// on a small CNN.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "attacks/corruption.hpp"
#include "core/evaluation.hpp"
#include "core/experiment_scale.hpp"
#include "core/variants.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "photonics/mr_bank.hpp"

namespace sl = safelight;

namespace {

void print_weights(const char* label, const std::vector<double>& w) {
  std::printf("%-28s", label);
  for (double v : w) std::printf(" %+6.3f", v);
  std::printf("\n");
}

/// Paper Fig. 1(c)/4/5: a 3-MR bank multiplying [a1,a2,a3] by [w1,w2,w3].
void bank_demo() {
  std::printf("== MR bank demo (paper Figs. 1(c), 4, 5) ==\n");
  sl::phot::MrGeometry geometry;  // CONV-block design, Q = 20k
  const sl::phot::Microring reference(geometry, 1550.0);
  // A 3-channel grid with the CONV block's per-channel spacing (FSR / 20),
  // the configuration the paper's figures illustrate.
  const sl::phot::WdmGrid grid(3, 1550.0, reference.fsr_nm() * 3.0 / 20.0);
  sl::phot::MrBank bank(geometry, grid);

  const std::vector<double> weights = {0.8, -0.5, 0.3};
  const std::vector<double> activations = {0.9, 0.6, 0.4};
  bank.set_weights(weights);

  print_weights("nominal weights:", bank.nominal_weights());
  print_weights("effective (no attack):", bank.effective_weights());
  std::printf("dot([0.9,0.6,0.4]) = %.4f (ideal %.4f)\n\n",
              bank.dot_product(activations),
              0.8 * 0.9 - 0.5 * 0.6 + 0.3 * 0.4);

  // Actuation attack on MR #2 (paper Fig. 4): ring parks off-resonance and
  // its weight sticks near max magnitude.
  bank.park_off_resonance(1);
  print_weights("after actuation on MR2:", bank.effective_weights());
  std::printf("dot becomes %.4f\n\n", bank.dot_product(activations));

  // Thermal hotspot on the whole bank (paper Fig. 5): ~1 channel spacing of
  // red shift makes each ring modulate its neighbor's wavelength.
  bank.reset_attacks();
  const double shift_per_k = reference.thermal_shift_nm(1.0);
  const double delta_t = grid.spacing_nm() / shift_per_k;
  for (std::size_t i = 0; i < bank.size(); ++i) {
    bank.set_temperature_delta(i, delta_t);
  }
  std::printf("hotspot: +%.1f K shifts every ring by one channel\n", delta_t);
  print_weights("after hotspot:", bank.effective_weights());
  std::printf("dot becomes %.4f\n\n", bank.dot_product(activations));
}

/// End-to-end: train CNN_1 (tiny scale), attack 10%% of all MRs, measure.
void end_to_end_demo() {
  std::printf("== End-to-end attack on CNN_1 (tiny scale) ==\n");
  sl::core::ExperimentSetup setup =
      sl::core::experiment_setup(sl::nn::ModelId::kCnn1, sl::Scale::kTiny);

  auto model = sl::nn::make_model(setup.model, setup.model_config);
  const sl::nn::Dataset train = sl::core::make_train_data(setup);
  const sl::nn::Dataset test = sl::core::make_test_data(setup);
  std::printf("training on %zu synthetic digits ...\n", train.size());
  const auto history =
      sl::nn::train_model(*model, train, test, setup.base_train);
  std::printf("clean test accuracy: %.2f%%\n",
              history.final_test_acc * 100.0);

  sl::core::AttackEvaluator evaluator(setup, *model, "Original",
                                      /*cache_dir=*/"");
  const double baseline = evaluator.baseline_accuracy();
  std::printf("accelerator baseline (DAC-conditioned): %.2f%%\n",
              baseline * 100.0);

  for (auto vector : {sl::attack::AttackVector::kActuation,
                      sl::attack::AttackVector::kHotspot}) {
    sl::attack::AttackScenario scenario;
    scenario.vector = vector;
    scenario.target = sl::attack::AttackTarget::kBothBlocks;
    scenario.fraction = 0.10;
    scenario.seed = 7;
    const double acc = evaluator.evaluate_scenario(scenario);
    std::printf("10%% %-9s attack: accuracy %.2f%% (drop %.2f%%)\n",
                sl::attack::to_string(vector).c_str(), acc * 100.0,
                (baseline - acc) * 100.0);
  }

  // Attack fingerprint: hotspot corruption tends to collapse predictions
  // onto few classes; the confusion matrix makes that visible.
  {
    sl::accel::WeightStationaryMapping mapping(*model, setup.accelerator);
    sl::attack::AttackScenario scenario;
    scenario.vector = sl::attack::AttackVector::kHotspot;
    scenario.target = sl::attack::AttackTarget::kBothBlocks;
    scenario.fraction = 0.10;
    scenario.seed = 7;
    evaluator.restore_clean();
    sl::attack::apply_attack(mapping, scenario);
    const auto matrix = sl::nn::confusion_matrix(
        *model, sl::core::make_test_data(setup).take(setup.eval_count));
    std::printf(
        "hotspot fingerprint: prediction collapse %.2f (1/%zu uniform, 1.0 "
        "fully collapsed), balanced accuracy %.2f%%\n",
        matrix.prediction_collapse(), matrix.num_classes(),
        matrix.balanced_accuracy() * 100.0);
    evaluator.restore_clean();
  }
}

}  // namespace

int main() {
  bank_demo();
  end_to_end_demo();
  return 0;
}
