// Thermal hotspot heatmap demo (paper Fig. 6): two victim MR banks in the
// CONV block with overdriven heaters, solved to steady state and rendered.
//
// Usage: thermal_heatmap [overdrive_mw]

#include <cstdio>
#include <cstdlib>

#include "attacks/hotspot.hpp"
#include "photonics/constants.hpp"
#include "thermal/heatmap.hpp"

namespace sl = safelight;

int main(int argc, char** argv) {
  const double overdrive_mw = argc > 1 ? std::atof(argv[1]) : 45.0;

  const sl::accel::AcceleratorConfig config =
      sl::accel::AcceleratorConfig::crosslight();
  const sl::accel::BlockDims& dims = config.conv;
  const sl::thermal::BlockFloorplan floorplan(dims.units,
                                              dims.banks_per_unit);
  sl::thermal::ThermalGrid grid = floorplan.make_grid();

  // Two attacked banks, as in the paper's Fig. 6: one mid-die, one near the
  // corner, each with multiple compromised heaters.
  const auto [r1, c1] = floorplan.bank_cell(/*unit=*/44, /*bank=*/7);
  const auto [r2, c2] = floorplan.bank_cell(/*unit=*/12, /*bank=*/18);
  grid.add_power_mw(r1, c1, overdrive_mw);
  grid.add_power_mw(r2, c2, overdrive_mw);

  const sl::thermal::SolveResult result = sl::thermal::solve_steady_state(grid);
  std::printf(
      "CONV block (%zux%zu bank tiles), 2 hotspot attacks at %.0f mW\n"
      "solver: %zu iterations, converged=%d\n\n",
      grid.rows(), grid.cols(), overdrive_mw, result.iterations,
      result.converged ? 1 : 0);
  std::printf("%s\n", sl::thermal::render_ascii_heatmap(grid).c_str());

  const double peak_dt = grid.max_temperature_k() - grid.config().ambient_k;
  const double shift = sl::phot::thermal_shift_per_kelvin_nm() * peak_dt;
  const sl::phot::Microring ring(config.conv_mr, config.center_wavelength_nm);
  std::printf(
      "peak rise: %.1f K -> Eq.2 resonance shift %.3f nm (%.1f channel "
      "spacings, FWHM %.3f nm)\n",
      peak_dt, shift, shift / (ring.fsr_nm() / dims.mrs_per_bank),
      ring.fwhm_nm());
  return 0;
}
