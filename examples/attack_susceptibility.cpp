// Susceptibility sweep on one model (paper §IV / Fig. 7, abbreviated).
//
// Usage: attack_susceptibility [cnn1|resnet18|vgg16v] [seeds]
// Defaults: cnn1, 3 seeds, tiny scale (override with SAFELIGHT_SCALE).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.hpp"
#include "core/report.hpp"
#include "core/susceptibility.hpp"

namespace sl = safelight;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "cnn1";
  const std::size_t seeds =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

  const sl::nn::ModelId id = sl::nn::model_id_from_string(model_name);
  const sl::Scale scale = sl::config::scale() == sl::Scale::kDefault
                              ? sl::Scale::kTiny  // examples stay fast
                              : sl::config::scale();
  const sl::core::ExperimentSetup setup = sl::core::experiment_setup(id, scale);

  std::printf("SafeLight susceptibility: %s at %s scale, %zu seeds\n",
              model_name.c_str(), sl::to_string(scale).c_str(), seeds);

  sl::core::ModelZoo zoo;
  sl::core::SusceptibilityOptions options;
  options.seed_count = seeds;
  options.verbose = true;
  options.cache_dir = zoo.directory();

  const sl::core::SusceptibilityReport report =
      sl::core::run_susceptibility(setup, zoo, options);

  std::printf("\nbaseline accuracy: %.2f%%\n\n",
              report.baseline_accuracy * 100.0);
  sl::core::TextTable table(
      {"attack", "target", "fraction", "min", "median", "max", "worst drop"});
  for (const auto& group : report.groups) {
    table.add_row({sl::attack::to_string(group.vector),
                   sl::attack::to_string(group.target),
                   sl::core::pct(group.fraction),
                   sl::core::pct(group.accuracy.min),
                   sl::core::pct(group.accuracy.median),
                   sl::core::pct(group.accuracy.max),
                   sl::core::pct(report.baseline_accuracy -
                                 group.accuracy.min)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
